//! Schedule-exploration models over the real metrics primitives, built
//! only under `--cfg qtag_check`:
//!
//! ```text
//! RUSTFLAGS="--cfg qtag_check" cargo test -p qtag-obs --test check_models
//! ```
//!
//! Every recording path in this crate is deliberately lock-free and
//! `Relaxed` (`saturating_fetch_add`'s CAS loop, gauge `dec`, snapshot
//! loads): nothing is published through a metric, so staleness is fine
//! and synchronization would be pure overhead. Under the happens-before
//! race detector that is exactly the class of conflict that gets
//! flagged, so these models double as the executable justification for
//! the crate's `// ordering: Relaxed` comments: each one allowlists the
//! specific files and asserts the allowlist is *load-bearing*
//! (`report.races > 0`) while the conservation invariants hold in every
//! schedule.
#![cfg(qtag_check)]

use qtag_check::sync::thread;
use qtag_check::Builder;
use qtag_obs::sync::Arc;
use qtag_obs::{Histogram, Registry};

#[test]
fn concurrent_recorders_conserve_histogram_totals() {
    let report = Builder::default()
        // saturating_fetch_add: Relaxed load + CAS from both recorders.
        .allow_race("crates/obs/src/hist.rs")
        .check(|| {
            let hist = Arc::new(Histogram::new());
            let recorders: Vec<_> = [3u64, 90u64]
                .into_iter()
                .map(|v| {
                    let hist = Arc::clone(&hist);
                    thread::spawn(move || hist.record(v))
                })
                .collect();
            for r in recorders {
                r.join().unwrap();
            }
            // Reads below are join-ordered; the races are between the
            // two recorders' CAS loops on count/sum.
            let snap = hist.snapshot();
            assert_eq!(snap.count, 2, "every observation lands exactly once");
            assert_eq!(snap.sum, 93);
            assert_eq!(snap.buckets.iter().sum::<u64>(), 2);
        });
    assert!(report.complete, "schedules: {}", report.schedules);
    assert!(
        report.races > 0,
        "the hist.rs allowlist should be load-bearing (Relaxed CAS loops)"
    );
}

#[test]
fn registry_counters_conserve_under_contention() {
    // Two workers hammer the same counter cell: the CAS loop must not
    // lose an increment in any interleaving (a retried CAS re-reads).
    let report = Builder::default()
        // Counter::add routes through hist.rs's saturating_fetch_add.
        .allow_race("crates/obs/src/hist.rs")
        .check(|| {
            let reg = Registry::new();
            let counter = reg.counter("qtag_model_events_total", "model events");
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let counter = counter.clone();
                    thread::spawn(move || counter.add(2))
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(counter.get(), 4, "no increment lost to the CAS races");
            assert_eq!(reg.get("qtag_model_events_total"), Some(4));
        });
    assert!(report.complete, "schedules: {}", report.schedules);
    assert!(
        report.races > 0,
        "the hist.rs allowlist should be load-bearing"
    );
}

#[test]
fn gauge_inc_dec_pairs_balance_under_contention() {
    // Two workers each inc-then-dec the same gauge: `dec`'s saturating
    // CAS loop in registry.rs must pair every decrement with exactly
    // one increment, landing back at zero in every schedule.
    let report = Builder::default()
        .allow_race("crates/obs/src/hist.rs")
        .allow_race("crates/obs/src/registry.rs")
        .check(|| {
            let reg = Registry::new();
            let gauge = reg.gauge("qtag_model_inflight", "in flight");
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let gauge = gauge.clone();
                    thread::spawn(move || {
                        gauge.inc();
                        gauge.dec();
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(gauge.get(), 0, "every inc matched by its dec");
        });
    assert!(report.complete, "schedules: {}", report.schedules);
    assert!(
        report.races > 0,
        "the registry.rs allowlist should be load-bearing"
    );
}

#[test]
fn mid_flight_snapshot_is_bounded_and_final_snapshot_exact() {
    // A scrape racing a recorder: the in-flight snapshot may see 0 or 1
    // observations (each individual cell is monotone) but never tears
    // past the true totals, and the post-join snapshot is exact.
    let report = Builder::default()
        .allow_race("crates/obs/src/hist.rs")
        .check(|| {
            let hist = Arc::new(Histogram::new());
            let recorder = {
                let hist = Arc::clone(&hist);
                thread::spawn(move || hist.record(7))
            };
            let glimpse = hist.snapshot();
            assert!(glimpse.count <= 1);
            assert!(glimpse.sum <= 7);
            recorder.join().unwrap();
            let fin = hist.snapshot();
            assert_eq!((fin.count, fin.sum), (1, 7));
        });
    assert!(report.complete, "schedules: {}", report.schedules);
    assert!(report.races > 0, "scrape-vs-record is the tolerated race");
}
