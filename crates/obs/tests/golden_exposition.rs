//! Golden-file tests for the two registry sinks: Prometheus text
//! exposition and the JSON snapshot. The rendered output is compared
//! byte-for-byte against files checked in under `tests/golden/`, so
//! any change to ordering, escaping or schema is a reviewed diff, not
//! a silent drift.
//!
//! Regenerate after an intentional format change with
//! `QTAG_UPDATE_GOLDEN=1 cargo test -p qtag-obs --test golden_exposition`.

use qtag_obs::Registry;
use std::path::PathBuf;

/// A deterministic registry exercising every slot kind, plus HELP
/// strings that need escaping in the text exposition.
fn fixture() -> Registry {
    let registry = Registry::new();
    let ops = registry.counter(
        "qtag_demo_ops_total",
        "Operations completed.\nSecond help line with a \\ backslash.",
    );
    ops.add(42);
    let depth = registry.gauge("qtag_demo_queue_depth", "Batches queued, instantaneous.");
    depth.set(7);
    let latency = registry.histogram("qtag_demo_latency_us", "Demo latency, microseconds.");
    for v in [0, 3, 9, 100, 5_000, 5_000] {
        latency.record(v);
    }
    registry.counter_fn("qtag_demo_ticks_total", "Computed monotone value.", || {
        1_234
    });
    registry.gauge_fn("qtag_demo_level", "Computed instantaneous value.", || 11);
    registry
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn assert_matches_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("QTAG_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with QTAG_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, want,
        "{name} drifted from its golden file; regenerate with QTAG_UPDATE_GOLDEN=1 if intended"
    );
}

#[test]
fn prometheus_exposition_matches_golden() {
    assert_matches_golden("exposition.prom", &fixture().render_prometheus());
}

#[test]
fn json_snapshot_matches_golden() {
    assert_matches_golden("snapshot.json", &fixture().render_json());
}

/// The schema gate, in the same spirit as CI's `BENCH_ingest.json`
/// check: parse the JSON sink and require the per-metric contract —
/// every entry carries `type` + `help`, counters/gauges a `value`,
/// histograms `count`/`sum`/`buckets` with `le`-keyed entries.
#[test]
fn json_snapshot_schema_holds() {
    let json = fixture().render_json();
    let value = serde_json::from_str_value(&json).expect("sink emits valid JSON");
    let serde::Value::Map(metrics) = value else {
        panic!("top level must be an object");
    };
    assert!(!metrics.is_empty(), "fixture registered metrics");
    let mut names: Vec<&str> = Vec::new();
    for (name, entry) in &metrics {
        names.push(name);
        let serde::Value::Map(fields) = entry else {
            panic!("{name}: metric entry must be an object");
        };
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("{name}: missing {key:?}"))
        };
        let serde::Value::Str(kind) = get("type") else {
            panic!("{name}: type must be a string");
        };
        assert!(matches!(get("help"), serde::Value::Str(_)));
        match kind.as_str() {
            "counter" | "gauge" => {
                assert!(matches!(get("value"), serde::Value::UInt(_)));
            }
            "histogram" => {
                assert!(matches!(get("count"), serde::Value::UInt(_)));
                assert!(matches!(get("sum"), serde::Value::UInt(_)));
                let serde::Value::Seq(buckets) = get("buckets") else {
                    panic!("{name}: buckets must be an array");
                };
                for b in buckets {
                    let serde::Value::Map(fields) = b else {
                        panic!("{name}: bucket must be an object");
                    };
                    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
                    assert_eq!(keys, ["le", "n"], "{name}: bucket schema");
                }
            }
            other => panic!("{name}: unknown metric type {other:?}"),
        }
    }
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "JSON sink must emit sorted metric names");
}

/// Structural invariants of the text sink that the byte-level golden
/// cannot explain on its own: one HELP/TYPE pair per metric, sorted
/// emission, cumulative histogram buckets ending at +Inf.
#[test]
fn prometheus_exposition_is_sorted_and_cumulative() {
    let text = fixture().render_prometheus();
    let help_names: Vec<&str> = text
        .lines()
        .filter_map(|l| l.strip_prefix("# HELP "))
        .map(|l| l.split_whitespace().next().unwrap())
        .collect();
    let mut sorted = help_names.clone();
    sorted.sort_unstable();
    assert_eq!(help_names, sorted, "exposition must be name-sorted");

    let bucket_counts: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with("qtag_demo_latency_us_bucket"))
        .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
        .collect();
    assert!(
        bucket_counts.windows(2).all(|w| w[0] <= w[1]),
        "histogram buckets must be cumulative: {bucket_counts:?}"
    );
    assert!(text.contains(r#"le="+Inf""#), "+Inf bucket required");
    assert!(
        text.contains("\\n") && text.contains("\\\\"),
        "HELP newline/backslash escaping must survive"
    );
}
