//! Property tests for the log-linear histogram core: bucket geometry,
//! merge algebra, record-then-quantile error bounds, and u64
//! saturation. Everything is value-driven — no clocks — so the suite
//! runs identically under `--cfg qtag_check`.

use proptest::prelude::*;
use qtag_obs::{bucket_index, bucket_lower, bucket_upper, Histogram, HistogramSnapshot, BUCKETS};

/// Builds a snapshot from raw samples through the real recording path.
fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Every value lands in a bucket whose [lower, upper] range
    /// actually contains it — the indexing function and the bound
    /// functions agree.
    #[test]
    fn bucket_bounds_contain_the_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < BUCKETS);
        prop_assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
        prop_assert!(v <= bucket_upper(i), "upper({i}) < {v}");
    }

    /// Bucket index is monotone in the value: a bigger sample never
    /// maps to a smaller bucket.
    #[test]
    fn bucket_index_is_monotone(a in any::<u64>(), b in any::<u64>()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    /// The log-linear design bound: each bucket's width is at most
    /// 1/8 of its lower bound (relative quantile error <= 12.5 %).
    #[test]
    fn bucket_relative_width_is_bounded(v in 8u64..u64::MAX) {
        let i = bucket_index(v);
        let lower = bucket_lower(i);
        let width = bucket_upper(i).saturating_sub(lower);
        prop_assert!(
            width <= lower / 8,
            "bucket {i}: width {width} vs lower {lower}"
        );
    }

    /// Merge is commutative: a ∪ b == b ∪ a, bucket by bucket.
    #[test]
    fn merge_is_commutative(
        xs in prop::collection::vec(any::<u64>(), 0..64),
        ys in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let (a, b) = (snapshot_of(&xs), snapshot_of(&ys));
        prop_assert_eq!(a.merge(&b), b.merge(&a));
    }

    /// Merge is associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
    #[test]
    fn merge_is_associative(
        xs in prop::collection::vec(any::<u64>(), 0..48),
        ys in prop::collection::vec(any::<u64>(), 0..48),
        zs in prop::collection::vec(any::<u64>(), 0..48),
    ) {
        let (a, b, c) = (snapshot_of(&xs), snapshot_of(&ys), snapshot_of(&zs));
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    /// Merging two snapshots is the same as recording the concatenated
    /// sample stream — the histogram is a homomorphism.
    #[test]
    fn merge_equals_concatenated_recording(
        xs in prop::collection::vec(any::<u64>(), 0..64),
        ys in prop::collection::vec(any::<u64>(), 0..64),
    ) {
        let merged = snapshot_of(&xs).merge(&snapshot_of(&ys));
        let mut both = xs.clone();
        both.extend_from_slice(&ys);
        prop_assert_eq!(merged, snapshot_of(&both));
    }

    /// Record-then-quantile bound: every quantile of a recorded stream
    /// overestimates some real sample by at most the bucket's relative
    /// width — never *under* the sample it represents, never beyond
    /// 12.5 % (+1 for integer rounding in the tiny linear buckets)
    /// above the stream maximum.
    #[test]
    fn quantiles_are_bounded_by_bucket_error(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..64),
        q_milli in 0u64..=1000,
    ) {
        let snap = snapshot_of(&samples);
        let q = q_milli as f64 / 1000.0;
        let r = snap.quantile(q).expect("non-empty");
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        prop_assert!(r >= min, "quantile {r} below min sample {min}");
        prop_assert!(
            r <= max + max / 8 + 1,
            "quantile {r} beyond bucket error above max {max}"
        );
    }

    /// count/sum agree with the recorded stream exactly (no sample is
    /// lost or double-counted on the lock-free path).
    #[test]
    fn count_and_sum_are_exact(samples in prop::collection::vec(0u64..1_000_000, 0..128)) {
        let snap = snapshot_of(&samples);
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), samples.len() as u64);
    }

    /// The sum saturates at u64::MAX instead of wrapping, and stays
    /// saturated once there.
    #[test]
    fn sum_saturates_instead_of_wrapping(extra in prop::collection::vec(1u64..u64::MAX, 1..8)) {
        let h = Histogram::new();
        h.record(u64::MAX);
        for &v in &extra {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.sum, u64::MAX);
        prop_assert_eq!(snap.count, 1 + extra.len() as u64);
    }

    /// Merging saturated snapshots stays saturated (merge uses the
    /// same saturating arithmetic as recording).
    #[test]
    fn merge_saturates(samples in prop::collection::vec(1u64..u64::MAX, 1..16)) {
        let merged = snapshot_of(&[u64::MAX]).merge(&snapshot_of(&samples));
        prop_assert_eq!(merged.sum, u64::MAX);
        prop_assert_eq!(merged.count, 1 + samples.len() as u64);
    }
}

/// Deterministic tiling check (not a proptest: exhaustive over bucket
/// indices): consecutive buckets tile the u64 line with no gap and no
/// overlap.
#[test]
fn buckets_tile_the_u64_line() {
    assert_eq!(bucket_lower(0), 0);
    for i in 0..BUCKETS - 1 {
        assert_eq!(
            bucket_upper(i) + 1,
            bucket_lower(i + 1),
            "gap/overlap between buckets {i} and {}",
            i + 1
        );
    }
    assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
}
