//! `qtag-obs`: the unified observability layer for the Q-Tag
//! pipeline.
//!
//! The paper's headline number is a *measured-rate* gap that only
//! holds up if every beacon is accounted for end to end. This crate
//! provides the single surface those accounts live on:
//!
//! * [`Registry`] — named counters, gauges, and log-linear
//!   [`Histogram`]s, exported through two sinks: Prometheus text
//!   exposition ([`Registry::render_prometheus`]) and a JSON snapshot
//!   ([`Registry::render_json`]).
//! * [`counters!`] — declares an atomic stats struct + serializable
//!   snapshot twin + registry hookup in one place, replacing the
//!   divergent hand-rolled `*Stats` pairs.
//! * [`TraceRing`] — a fixed-capacity ring of per-stage spans
//!   (decode → inlet → shard apply → ack).
//!
//! Everything is clock-agnostic: recording APIs take caller-supplied
//! microsecond values, so the whole layer runs unmodified under
//! `qtag-check`'s shimmed time (`RUSTFLAGS="--cfg qtag_check"`).

pub mod hist;
mod macros;
pub mod registry;
pub mod sync;
pub mod trace;

pub use hist::{bucket_index, bucket_lower, bucket_upper, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, MetricValue, Registry, RegistrySnapshot};
pub use trace::{Stage, TraceEvent, TraceRing};
