//! Metric registry: a single named surface over the pipeline's
//! counters, gauges, and histograms, with two exposition sinks
//! (Prometheus text format and a JSON snapshot).
//!
//! Naming scheme (enforced at registration): `[a-zA-Z_][a-zA-Z0-9_]*`,
//! by convention `qtag_<subsystem>_<field>` with counters carrying a
//! `_total` suffix (the `counters!` macro appends it). Registration is
//! idempotent for handle-backed metrics — registering the same name
//! with the same kind returns the existing handle — and panics on a
//! kind mismatch, which is always a programming error.
//!
//! The registry itself is lock-light: one facade mutex guards the
//! name→slot map (touched only at registration and snapshot time);
//! every hot-path update goes straight to an `Arc`'d atomic or
//! histogram without taking the map lock.

use crate::hist::{bucket_upper, Histogram, HistogramSnapshot};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use std::collections::BTreeMap;

/// Monotone counter handle. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        crate::hist::saturating_fetch_add(&self.0, n);
    }

    pub fn get(&self) -> u64 {
        // ordering: Relaxed — statistic read, no synchronization implied.
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// Gauge handle: a settable, up/down u64 (floors at 0, caps at MAX).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: u64) {
        // ordering: Relaxed — statistic write, no synchronization implied.
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        crate::hist::saturating_fetch_add(&self.0, 1);
    }

    #[inline]
    pub fn dec(&self) {
        // ordering: Relaxed — independent statistic; snapshots tolerate
        // staleness, no other memory is published through the gauge.
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(1);
            // ordering: Relaxed — same gauge-only reasoning as the load above.
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> u64 {
        // ordering: Relaxed — statistic read, no synchronization implied.
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

type ReadFn = Arc<dyn Fn() -> u64 + Send + Sync>;

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<Histogram>),
    /// Computed counter: reads an externally-owned monotone value.
    CounterFn(ReadFn),
    /// Computed gauge: reads an externally-owned instantaneous value.
    GaugeFn(ReadFn),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) | Slot::CounterFn(_) => "counter",
            Slot::Gauge(_) | Slot::GaugeFn(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    help: String,
    slot: Slot,
}

/// The registry. Share via `Arc<Registry>`; registration and snapshot
/// take the map lock, metric updates never do.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Entry>>,
}

fn validate_name(name: &str) {
    let mut chars = name.chars();
    let ok_first = matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_');
    let ok_rest = chars.all(|c| c.is_ascii_alphanumeric() || c == '_');
    assert!(
        ok_first && ok_rest && !name.is_empty(),
        "invalid metric name {name:?}: must match [a-zA-Z_][a-zA-Z0-9_]*"
    );
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register_with<T>(
        &self,
        name: &str,
        help: &str,
        make: impl FnOnce() -> (Slot, T),
        reuse: impl FnOnce(&Slot) -> Option<T>,
        kind: &'static str,
    ) -> T {
        validate_name(name);
        let mut map = self.inner.lock();
        if let Some(existing) = map.get(name) {
            match reuse(&existing.slot) {
                Some(handle) => return handle,
                None => panic!(
                    "metric {name:?} already registered as {}, requested {kind}",
                    existing.slot.kind()
                ),
            }
        }
        let (slot, handle) = make();
        map.insert(
            name.to_string(),
            Entry {
                help: help.to_string(),
                slot,
            },
        );
        handle
    }

    /// Register (or fetch) a monotone counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.register_with(
            name,
            help,
            || {
                let cell = Arc::new(AtomicU64::new(0));
                (Slot::Counter(cell.clone()), Counter(cell))
            },
            |slot| match slot {
                Slot::Counter(cell) => Some(Counter(cell.clone())),
                _ => None,
            },
            "counter",
        )
    }

    /// Register (or fetch) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.register_with(
            name,
            help,
            || {
                let cell = Arc::new(AtomicU64::new(0));
                (Slot::Gauge(cell.clone()), Gauge(cell))
            },
            |slot| match slot {
                Slot::Gauge(cell) => Some(Gauge(cell.clone())),
                _ => None,
            },
            "gauge",
        )
    }

    /// Register (or fetch) a log-linear histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.register_with(
            name,
            help,
            || {
                let h = Arc::new(Histogram::new());
                (Slot::Histogram(h.clone()), h.clone())
            },
            |slot| match slot {
                Slot::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            "histogram",
        )
    }

    /// Register a computed counter reading an externally-owned
    /// monotone value (e.g. a field of a legacy stats struct).
    /// Panics if `name` is already registered: closures cannot be
    /// deduplicated, so double registration is a bug.
    pub fn counter_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.register_with(
            name,
            help,
            || (Slot::CounterFn(Arc::new(f)), ()),
            |_| None,
            "counter_fn",
        )
    }

    /// Register a computed gauge. Same double-registration rule as
    /// [`Registry::counter_fn`].
    pub fn gauge_fn(&self, name: &str, help: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.register_with(
            name,
            help,
            || (Slot::GaugeFn(Arc::new(f)), ()),
            |_| None,
            "gauge_fn",
        )
    }

    /// Current value of a counter or gauge by name (`None` for
    /// histograms or unknown names). The conservation test suite
    /// cross-checks legacy stats structs through this.
    pub fn get(&self, name: &str) -> Option<u64> {
        let map = self.inner.lock();
        map.get(name).and_then(|e| match &e.slot {
            // ordering: Relaxed — statistic read, no synchronization implied.
            Slot::Counter(c) | Slot::Gauge(c) => Some(c.load(Ordering::Relaxed)),
            Slot::CounterFn(f) | Slot::GaugeFn(f) => Some(f()),
            Slot::Histogram(_) => None,
        })
    }

    /// Registered metric names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.inner.lock().keys().cloned().collect()
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.inner.lock();
        let metrics = map
            .iter()
            .map(|(name, e)| {
                let value = match &e.slot {
                    Slot::Counter(c) => {
                        // ordering: Relaxed — statistic read only.
                        MetricValue::Counter(c.load(Ordering::Relaxed))
                    }
                    Slot::Gauge(g) => {
                        // ordering: Relaxed — statistic read only.
                        MetricValue::Gauge(g.load(Ordering::Relaxed))
                    }
                    Slot::CounterFn(f) => MetricValue::Counter(f()),
                    Slot::GaugeFn(f) => MetricValue::Gauge(f()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), (e.help.clone(), value))
            })
            .collect();
        RegistrySnapshot { metrics }
    }

    /// Prometheus text exposition (format version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Pretty-printed JSON snapshot.
    pub fn render_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot())
            .expect("registry snapshot contains only finite values")
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.names())
            .finish()
    }
}

/// Snapshot value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(u64),
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// Point-in-time copy of a [`Registry`]: name → (help, value), sorted
/// by name so both exposition formats are byte-stable.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    pub metrics: BTreeMap<String, (String, MetricValue)>,
}

/// Escape a HELP string per the Prometheus text format: backslash and
/// newline only.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

impl RegistrySnapshot {
    /// Counter/gauge value by name (`None` for histograms).
    pub fn value(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name)? {
            (_, MetricValue::Counter(v)) | (_, MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram snapshot by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name)? {
            (_, MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Prometheus text exposition: `# HELP` / `# TYPE` per metric,
    /// histograms expanded to cumulative `_bucket{le=...}` series over
    /// non-empty buckets plus `+Inf`, `_sum`, `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, (help, value)) in &self.metrics {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
            out.push_str(&format!("# TYPE {name} {}\n", value.kind()));
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    let mut cum: u64 = 0;
                    for (i, &n) in h.buckets.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cum = cum.saturating_add(n);
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cum}\n",
                            bucket_upper(i)
                        ));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                }
            }
        }
        out
    }
}

impl serde::Serialize for RegistrySnapshot {
    fn to_value(&self) -> serde::Value {
        let entries = self
            .metrics
            .iter()
            .map(|(name, (help, value))| {
                let mut fields: Vec<(String, serde::Value)> = vec![
                    (
                        "type".to_string(),
                        serde::Value::Str(value.kind().to_string()),
                    ),
                    ("help".to_string(), serde::Value::Str(help.clone())),
                ];
                match value {
                    MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                        fields.push(("value".to_string(), serde::Value::UInt(*v)));
                    }
                    MetricValue::Histogram(h) => {
                        fields.push(("count".to_string(), serde::Value::UInt(h.count)));
                        fields.push(("sum".to_string(), serde::Value::UInt(h.sum)));
                        let buckets = h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter(|(_, &n)| n != 0)
                            .map(|(i, &n)| {
                                serde::Value::Map(vec![
                                    ("le".to_string(), serde::Value::UInt(bucket_upper(i))),
                                    ("n".to_string(), serde::Value::UInt(n)),
                                ])
                            })
                            .collect();
                        fields.push(("buckets".to_string(), serde::Value::Seq(buckets)));
                    }
                }
                (name.clone(), serde::Value::Map(fields))
            })
            .collect();
        serde::Value::Map(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_reuse() {
        let r = Registry::new();
        let c = r.counter("qtag_test_ops_total", "ops");
        c.inc();
        c.add(4);
        assert_eq!(r.get("qtag_test_ops_total"), Some(5));
        let again = r.counter("qtag_test_ops_total", "ops");
        again.inc();
        assert_eq!(c.get(), 6);
    }

    #[test]
    #[should_panic(expected = "already registered as counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("qtag_test_x", "x");
        r.gauge("qtag_test_x", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        Registry::new().counter("qtag test", "x");
    }

    #[test]
    fn gauge_up_down_floors_at_zero() {
        let r = Registry::new();
        let g = r.gauge("qtag_test_depth", "depth");
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.get(), 0);
        g.set(41);
        g.inc();
        assert_eq!(r.get("qtag_test_depth"), Some(42));
    }

    #[test]
    fn fn_metrics_read_external_state() {
        let r = Registry::new();
        let cell = Arc::new(AtomicU64::new(7));
        let read = cell.clone();
        r.counter_fn("qtag_test_ext_total", "ext", move || {
            // ordering: Relaxed — statistic read in a test closure.
            read.load(Ordering::Relaxed)
        });
        assert_eq!(r.get("qtag_test_ext_total"), Some(7));
        // ordering: Relaxed — test-only bump of an independent counter.
        cell.fetch_add(1, Ordering::Relaxed);
        assert_eq!(r.get("qtag_test_ext_total"), Some(8));
    }

    #[test]
    fn exposition_is_sorted_and_escaped() {
        let r = Registry::new();
        r.counter("qtag_b_total", "line1\nline2 \\ slash");
        r.gauge("qtag_a_depth", "a gauge");
        let text = r.render_prometheus();
        let a = text.find("qtag_a_depth").unwrap();
        let b = text.find("qtag_b_total").unwrap();
        assert!(a < b, "names must render sorted");
        assert!(text.contains("line1\\nline2 \\\\ slash"));
    }

    #[test]
    fn histogram_exposition_cumulative() {
        let r = Registry::new();
        let h = r.histogram("qtag_test_lat_us", "latency");
        h.record(3);
        h.record(3);
        h.record(100);
        let text = r.render_prometheus();
        assert!(text.contains("qtag_test_lat_us_bucket{le=\"3\"} 2\n"));
        assert!(text.contains("qtag_test_lat_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("qtag_test_lat_us_count 3\n"));
        let json = r.render_json();
        assert!(json.contains("\"type\": \"histogram\""));
    }
}
