//! Structured trace-event ring buffer with per-stage spans.
//!
//! Every hop a beacon batch takes through the pipeline — decode →
//! inlet → shard apply → ack — can drop a [`TraceEvent`] into a shared
//! fixed-capacity ring. The ring never allocates after construction
//! and overwrites the oldest event when full (total recorded and
//! dropped counts stay exact), so it is safe to leave enabled in
//! production and under `qtag-check` model runs.
//!
//! Like the histogram core, the ring is clock-agnostic: callers supply
//! `start_us` / `dur_us` measured against whatever epoch they own.

use crate::sync::Mutex;

/// Pipeline stage a span was measured in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Wire-frame decode on a collector connection.
    Decode,
    /// Hand-off of a decoded batch into the bounded ingest inlet.
    Inlet,
    /// A shard applier draining one batch into its store.
    ShardApply,
    /// Ack encode + flush back to the sender.
    Ack,
}

impl Stage {
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::Inlet => "inlet",
            Stage::ShardApply => "shard_apply",
            Stage::Ack => "ack",
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    pub stage: Stage,
    /// Stage-specific correlation key: connection id for
    /// decode/inlet/ack spans, shard index for apply spans.
    pub key: u64,
    /// Span start, microseconds since the owner's epoch.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Items the span covered (beacons decoded, batch length, acks
    /// flushed).
    pub items: u64,
}

struct Inner {
    buf: Vec<TraceEvent>,
    /// Next write position once the ring has wrapped.
    next: usize,
    /// Total events ever recorded (monotone).
    recorded: u64,
}

/// Fixed-capacity overwrite-oldest event ring. Share via `Arc`.
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl TraceRing {
    /// `capacity` must be at least 1.
    pub fn new(capacity: usize) -> TraceRing {
        assert!(capacity > 0, "trace ring capacity must be at least 1");
        TraceRing {
            capacity,
            inner: Mutex::new(Inner {
                buf: Vec::with_capacity(capacity),
                next: 0,
                recorded: 0,
            }),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append an event, overwriting the oldest if the ring is full.
    pub fn record(&self, ev: TraceEvent) {
        let mut inner = self.inner.lock();
        if inner.buf.len() < self.capacity {
            inner.buf.push(ev);
        } else {
            let at = inner.next;
            inner.buf[at] = ev;
            inner.next = (at + 1) % self.capacity;
        }
        inner.recorded += 1;
    }

    /// Events currently held, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(inner.buf.len());
        out.extend_from_slice(&inner.buf[inner.next..]);
        out.extend_from_slice(&inner.buf[..inner.next]);
        out
    }

    /// Total events ever recorded.
    pub fn recorded(&self) -> u64 {
        self.inner.lock().recorded
    }

    /// Events lost to overwriting.
    pub fn dropped(&self) -> u64 {
        let inner = self.inner.lock();
        inner.recorded - inner.buf.len() as u64
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity)
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(stage: Stage, key: u64) -> TraceEvent {
        TraceEvent {
            stage,
            key,
            start_us: key * 10,
            dur_us: 5,
            items: 1,
        }
    }

    #[test]
    fn records_in_order_below_capacity() {
        let ring = TraceRing::new(4);
        ring.record(ev(Stage::Decode, 1));
        ring.record(ev(Stage::Inlet, 2));
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].key, 1);
        assert_eq!(snap[1].key, 2);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let ring = TraceRing::new(3);
        for k in 1..=5 {
            ring.record(ev(Stage::ShardApply, k));
        }
        let snap = ring.snapshot();
        assert_eq!(
            snap.iter().map(|e| e.key).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(Stage::Decode.name(), "decode");
        assert_eq!(Stage::Inlet.name(), "inlet");
        assert_eq!(Stage::ShardApply.name(), "shard_apply");
        assert_eq!(Stage::Ack.name(), "ack");
    }
}
