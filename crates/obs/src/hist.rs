//! Log-linear latency histogram with lock-free recording and
//! mergeable snapshots.
//!
//! Values are bucketed on a log-linear grid: each power-of-two range
//! is split into `SUB = 8` linear sub-buckets, so the bucket width is
//! at most 1/8 of the bucket's lower bound (relative quantile error
//! ≤ 12.5%). Values below `SUB` get exact unit buckets. The full u64
//! range maps onto [`BUCKETS`] = 496 buckets, cheap enough to embed
//! one histogram per pipeline stage.
//!
//! Recording is a single index computation plus saturating atomic
//! adds — no locks, no allocation, and no clock reads: callers supply
//! already-measured durations, which keeps the type usable under
//! `qtag-check`'s shimmed time.

use crate::sync::atomic::{AtomicU64, Ordering};

/// Number of linear sub-buckets per power-of-two range (2^SUB_BITS).
pub const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
pub const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = (SUB as usize) * 62;

/// Bucket index for a recorded value. Monotone in `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
        let sub = (v >> (exp - SUB_BITS)) - SUB; // 0..SUB
        ((exp - (SUB_BITS - 1)) as usize) * (SUB as usize) + sub as usize
    }
}

/// Smallest value that maps to bucket `i`.
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    let s = (i as u64) % SUB;
    if i < SUB as usize {
        s
    } else {
        let exp = (i as u32) / (SUB as u32) + (SUB_BITS - 1);
        (SUB + s) << (exp - SUB_BITS)
    }
}

/// Largest value that maps to bucket `i` (inclusive).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    if i + 1 == BUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

/// Add `delta` to an atomic counter, sticking at `u64::MAX` instead of
/// wrapping. Once a counter saturates it never moves again.
#[inline]
pub(crate) fn saturating_fetch_add(counter: &AtomicU64, delta: u64) {
    if delta == 0 {
        return;
    }
    // ordering: Relaxed — independent monotone statistic; no other
    // memory is published through it, snapshots tolerate staleness.
    let mut cur = counter.load(Ordering::Relaxed);
    loop {
        if cur == u64::MAX {
            return;
        }
        let next = cur.saturating_add(delta);
        // ordering: Relaxed — same counter-only reasoning as the load above.
        match counter.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Concurrent log-linear histogram. Shared via `Arc`; `record` is safe
/// from any number of threads.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation of `v` (e.g. a duration in microseconds).
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of `v` at once.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        saturating_fetch_add(&self.buckets[bucket_index(v)], n);
        saturating_fetch_add(&self.count, n);
        saturating_fetch_add(&self.sum, v.saturating_mul(n));
    }

    /// Total observations recorded (saturating).
    pub fn count(&self) -> u64 {
        // ordering: Relaxed — statistic read, no synchronization implied.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        // ordering: Relaxed — statistic read, no synchronization implied.
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the bucket array. Not atomic across
    /// buckets — concurrent recorders may land between loads — but
    /// each individual counter is monotone.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            // ordering: Relaxed — statistic read, no synchronization implied.
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count(),
            sum: self.sum(),
        }
    }

    /// Folds a snapshot back into this live histogram (saturating,
    /// bucket by bucket, plus count and sum verbatim). Recovery in the
    /// durable backend restores persisted rollup histograms into fresh
    /// live instances with this; absorbing a snapshot into an empty
    /// histogram then snapshotting again round-trips exactly.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        for (cell, n) in self.buckets.iter().zip(snap.buckets.iter()) {
            saturating_fetch_add(cell, *n);
        }
        saturating_fetch_add(&self.count, snap.count);
        saturating_fetch_add(&self.sum, snap.sum);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// Immutable copy of a [`Histogram`]: mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts, `BUCKETS` entries.
    pub buckets: Vec<u64>,
    /// Total observations (saturating).
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Element-wise saturating merge. Associative and commutative
    /// (property-tested in `tests/hist_props.rs`).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .zip(other.buckets.iter())
            .map(|(a, b)| a.saturating_add(*b))
            .collect();
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// observation (`q` clamped to `[0, 1]`). `None` when empty. The
    /// returned bound overshoots the true quantile by at most 1/8
    /// relative (one bucket width).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum: u64 = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum = cum.saturating_add(n);
            if cum >= rank {
                return Some(bucket_upper(i));
            }
        }
        // Reachable only if bucket totals saturated below `count`.
        Some(u64::MAX)
    }

    /// Sparse persistence form: the non-zero `(bucket, count)` pairs
    /// in ascending bucket order. Most histograms touch a handful of
    /// the 496 buckets, so snapshots written to disk by the durable
    /// backend store pairs instead of the dense array.
    pub fn sparse(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n != 0)
            .map(|(i, n)| (i as u32, *n))
            .collect()
    }

    /// Rebuilds a snapshot from its sparse form. Out-of-range bucket
    /// indices are ignored (a corrupt pair cannot panic the reader;
    /// the snapshot file's checksum is the real guard). Exact inverse
    /// of [`HistogramSnapshot::sparse`] for any valid input.
    pub fn from_sparse(pairs: &[(u32, u64)], count: u64, sum: u64) -> Self {
        let mut buckets = vec![0u64; BUCKETS];
        for (i, n) in pairs {
            if let Some(slot) = buckets.get_mut(*i as usize) {
                *slot = *n;
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum,
        }
    }

    /// Mean of recorded values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_below_sub() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower(v as usize), v);
            assert_eq!(bucket_upper(v as usize), v);
        }
    }

    #[test]
    fn bounds_bracket_values() {
        for &v in &[8u64, 9, 15, 16, 100, 1_000, 65_535, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_lower(i) <= v, "lower({i}) > {v}");
            assert!(v <= bucket_upper(i), "{v} > upper({i})");
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn buckets_tile_contiguously() {
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_upper(i) + 1,
                bucket_lower(i + 1),
                "gap after bucket {i}"
            );
        }
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn record_and_quantile() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        let p50 = s.quantile(0.5).unwrap();
        assert!((500..=563).contains(&p50), "p50 = {p50}");
        let p100 = s.quantile(1.0).unwrap();
        assert!(
            (1000..=1000 + 1000 / 8 + 1).contains(&p100),
            "p100 = {p100}"
        );
        assert_eq!(s.quantile(0.0).unwrap(), 1);
    }

    #[test]
    fn saturation_sticks_at_max() {
        let h = Histogram::new();
        h.record_n(7, u64::MAX);
        h.record_n(7, 5);
        let s = h.snapshot();
        assert_eq!(s.count, u64::MAX);
        assert_eq!(s.buckets[7], u64::MAX);
        assert_eq!(s.sum, u64::MAX);
    }

    #[test]
    fn sparse_round_trip_and_absorb_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 3, 7, 8, 1_000, 65_535, 1 << 33] {
            h.record_n(v, v + 1);
        }
        let snap = h.snapshot();
        let pairs = snap.sparse();
        assert!(pairs.len() <= 7, "only touched buckets persist");
        assert_eq!(
            HistogramSnapshot::from_sparse(&pairs, snap.count, snap.sum),
            snap
        );
        // Corrupt index is dropped, not a panic.
        let _ = HistogramSnapshot::from_sparse(&[(u32::MAX, 9)], 9, 9);

        let fresh = Histogram::new();
        fresh.absorb(&snap);
        assert_eq!(fresh.snapshot(), snap);
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(10);
        b.record(99);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.buckets[bucket_index(10)], 2);
        assert_eq!(m.buckets[bucket_index(99)], 1);
    }
}
