//! Synchronization facade for `qtag-obs`.
//!
//! Mirrors the facades in `qtag-server` / `qtag-collectd`: a normal
//! build delegates to `parking_lot` (locks) and `std` (atomics), while
//! `RUSTFLAGS="--cfg qtag_check"` swaps in the `qtag-check`
//! model-checker shims so registry updates run under deterministic
//! schedule exploration. The metrics layer is deliberately
//! clock-agnostic — every latency-recording API takes caller-supplied
//! microsecond values — so no `time` module is re-exported here.
//!
//! `qtag-lint` (rule R4) enforces the routing: no file in this crate
//! may name `std::sync`/`parking_lot` primitives outside this module.

#[cfg(qtag_check)]
pub use qtag_check::sync::{atomic, Arc, Mutex, MutexGuard, Weak};

#[cfg(not(qtag_check))]
pub use parking_lot::Mutex;

#[cfg(not(qtag_check))]
pub use std::sync::{Arc, Weak};

/// Guard returned by [`Mutex::lock`] (the vendored `parking_lot`
/// hands out recovered `std` guards).
#[cfg(not(qtag_check))]
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Atomics in the `std::sync::atomic` shape.
#[cfg(not(qtag_check))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}
