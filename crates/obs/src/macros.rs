//! The [`counters!`] macro: one declaration produces an atomic stats
//! struct, its serializable snapshot twin, and a `register` method
//! that exposes every field through a [`Registry`](crate::Registry).
//!
//! This replaces the hand-rolled `*Stats` / `*StatsSnapshot` pairs
//! that had drifted apart across crates (collectd vs server) with a
//! single definition per subsystem. Field order in the declaration is
//! field order in the snapshot, so existing JSON schemas survive the
//! migration unchanged.
//!
//! Each field is declared as `name: counter("help")` or
//! `name: gauge("help")`. Both back onto an `AtomicU64` from the
//! crate's sync facade (model-checkable under `--cfg qtag_check`);
//! the kind only changes how the field is registered — counters are
//! exported as `<prefix>_<name>_total`, gauges as `<prefix>_<name>`.

/// Declare an atomic stats struct plus snapshot twin. See the module
/// docs for the field syntax; `qtag-lint` rule R1 checks that every
/// declared field is read by at least one test.
#[macro_export]
macro_rules! counters {
    (
        $(#[$meta:meta])*
        $vis:vis struct $Name:ident / $Snap:ident {
            $( $field:ident : $kind:ident($help:literal) ),+ $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Default)]
        $vis struct $Name {
            $( #[doc = $help] pub $field: $crate::sync::atomic::AtomicU64, )+
        }

        #[doc = concat!("Point-in-time copy of [`", stringify!($Name), "`].")]
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq, ::serde::Serialize)]
        $vis struct $Snap {
            $( #[doc = $help] pub $field: u64, )+
        }

        impl $Name {
            /// A zeroed stats block.
            $vis fn new() -> Self {
                Self::default()
            }

            /// Point-in-time copy of every field. Not atomic across
            /// fields; each individual load is monotone (counters) or
            /// last-write (gauges).
            $vis fn snapshot(&self) -> $Snap {
                $Snap {
                    $(
                        // ordering: Relaxed — statistic read, no synchronization implied.
                        $field: self.$field.load($crate::sync::atomic::Ordering::Relaxed),
                    )+
                }
            }

            /// Expose every field through `registry` as a computed
            /// metric reading these same atomics: counters as
            /// `<prefix>_<field>_total`, gauges as `<prefix>_<field>`.
            $vis fn register(
                self: &$crate::sync::Arc<Self>,
                registry: &$crate::Registry,
                prefix: &str,
            ) {
                $( $crate::register_counters_field!(self, registry, prefix, $field, $kind, $help); )+
            }
        }
    };
}

/// Implementation detail of [`counters!`]: registers one field,
/// dispatching on the declared kind. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! register_counters_field {
    ($self:ident, $registry:ident, $prefix:ident, $field:ident, counter, $help:literal) => {{
        let cell = $crate::sync::Arc::clone($self);
        $registry.counter_fn(
            &format!("{}_{}_total", $prefix, stringify!($field)),
            $help,
            // ordering: Relaxed — statistic read, no synchronization implied.
            move || cell.$field.load($crate::sync::atomic::Ordering::Relaxed),
        );
    }};
    ($self:ident, $registry:ident, $prefix:ident, $field:ident, gauge, $help:literal) => {{
        let cell = $crate::sync::Arc::clone($self);
        $registry.gauge_fn(
            &format!("{}_{}", $prefix, stringify!($field)),
            $help,
            // ordering: Relaxed — statistic read, no synchronization implied.
            move || cell.$field.load($crate::sync::atomic::Ordering::Relaxed),
        );
    }};
    ($self:ident, $registry:ident, $prefix:ident, $field:ident, $other:ident, $help:literal) => {
        compile_error!(concat!(
            "counters!: field kind must be `counter` or `gauge`, got `",
            stringify!($other),
            "`"
        ));
    };
}

#[cfg(test)]
mod tests {
    use crate::sync::atomic::Ordering;
    use crate::sync::Arc;
    use crate::Registry;

    crate::counters! {
        /// Test stats block.
        pub struct DemoStats / DemoStatsSnapshot {
            ops: counter("Operations performed."),
            depth: gauge("Current queue depth."),
        }
    }

    #[test]
    fn snapshot_and_register_share_cells() {
        let stats = Arc::new(DemoStats::new());
        // ordering: Relaxed — test-only bump of an independent counter.
        stats.ops.fetch_add(3, Ordering::Relaxed);
        // ordering: Relaxed — test-only gauge write.
        stats.depth.store(2, Ordering::Relaxed);

        let snap = stats.snapshot();
        assert_eq!(snap.ops, 3);
        assert_eq!(snap.depth, 2);

        let registry = Registry::new();
        stats.register(&registry, "qtag_demo");
        assert_eq!(registry.get("qtag_demo_ops_total"), Some(3));
        assert_eq!(registry.get("qtag_demo_depth"), Some(2));

        // ordering: Relaxed — test-only bump of an independent counter.
        stats.ops.fetch_add(1, Ordering::Relaxed);
        assert_eq!(registry.get("qtag_demo_ops_total"), Some(4));
    }

    #[test]
    fn snapshot_serializes_in_declaration_order() {
        let snap = DemoStatsSnapshot { ops: 1, depth: 2 };
        let json = serde_json::to_string(&snap).unwrap();
        assert_eq!(json, r#"{"ops":1,"depth":2}"#);
    }
}
