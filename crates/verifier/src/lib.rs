//! # qtag-verifier
//!
//! A behavioural model of the **commercial viewability verifier** the
//! paper compares against (§6; anonymous under NDA — "one of the most
//! widely used in the ad-tech ecosystem").
//!
//! The paper's data shows where such solutions fail: "most of the
//! measurement errors of the commercial solution come from impressions
//! delivered to mobile devices", worst in Android apps (53.4 % measured,
//! Table 2). The mechanism is well understood in the industry and
//! modelled here explicitly: geometry-based verifiers measure by reading
//! layout (bounding rects / `IntersectionObserver`), which requires
//! either a same-origin path to the top window or a modern native
//! viewability API — both routinely missing inside legacy in-app
//! webviews, and partially missing in old desktop browsers.
//!
//! [`VerifierTag`] measures through three strategies, in order:
//!
//! 1. **native API** — when the environment exposes an
//!    `IntersectionObserver`-class API, use the browser-reported
//!    fraction (accurate);
//! 2. **geometry walk** — when the frame chain is same-origin, read the
//!    own rect (accurate on desktop web, rarely possible for DSP-served
//!    double cross-domain iframes);
//! 3. **give up** — the impression is *unmeasured*; the tag still loads
//!    but never produces a verdict. This is the measured-rate gap of
//!    Figure 3a.
//!
//! Like the real SDK, the tag may fail to bootstrap at all in sandboxed
//! webviews ([`qtag_render::ApiCapabilities::verifier_sdk_loads`]).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod tag;

pub use tag::{VerifierConfig, VerifierTag};
