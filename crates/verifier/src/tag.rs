//! The commercial verifier's measurement tag.

use qtag_geometry::Rect;
use qtag_render::{ScriptCtx, SimTime, TagScript};
use qtag_wire::{AdFormat, Beacon, EventKind};

/// Deployment configuration for the verifier tag.
#[derive(Debug, Clone)]
pub struct VerifierConfig {
    /// Impression being verified.
    pub impression_id: u64,
    /// Campaign.
    pub campaign_id: u32,
    /// The creative's box in the tag's own iframe coordinates.
    pub ad_rect: Rect,
    /// Creative format (the verifier is told by the DSP).
    pub ad_format: AdFormat,
    /// Geometry polling rate (Hz). Commercial SDKs poll layout at
    /// 5–10 Hz; 5 Hz keeps the SDK "lightweight".
    pub sample_hz: f64,
}

impl VerifierConfig {
    /// Standard deployment.
    pub fn new(impression_id: u64, campaign_id: u32, ad_rect: Rect, ad_format: AdFormat) -> Self {
        VerifierConfig {
            impression_id,
            campaign_id,
            ad_rect,
            ad_format,
            sample_hz: 5.0,
        }
    }
}

/// How the tag is currently obtaining measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    /// Not yet decided / SDK blocked.
    None,
    /// Browser-native viewability API.
    NativeApi,
    /// Same-origin geometry walk.
    GeometryWalk,
    /// No strategy works in this environment: unmeasured impression.
    Unmeasurable,
}

/// The simulated commercial verifier tag (see the crate docs for the
/// behavioural model and its grounding in the paper's Table 2).
pub struct VerifierTag {
    cfg: VerifierConfig,
    strategy: Strategy,
    bootstrapped: bool,
    seq: u16,
    sent_measurable: bool,
    // inline viewability timer (the SDK's own implementation of the
    // standard; intentionally independent from qtag-core)
    qualifying_since: Option<SimTime>,
    viewed: bool,
    in_view_now: bool,
    last_fraction: f64,
    best_exposure_ms: u32,
}

impl VerifierTag {
    /// Builds the tag.
    pub fn new(cfg: VerifierConfig) -> Self {
        VerifierTag {
            cfg,
            strategy: Strategy::None,
            bootstrapped: false,
            seq: 0,
            sent_measurable: false,
            qualifying_since: None,
            viewed: false,
            in_view_now: false,
            last_fraction: 0.0,
            best_exposure_ms: 0,
        }
    }

    /// `true` when the SDK loaded at all in this environment.
    pub fn bootstrapped(&self) -> bool {
        self.bootstrapped
    }

    /// `true` when the impression could be measured.
    pub fn measurable(&self) -> bool {
        self.sent_measurable
    }

    /// `true` when the criteria were met.
    pub fn viewed(&self) -> bool {
        self.viewed
    }

    fn beacon(&mut self, ctx: &ScriptCtx<'_>, event: EventKind) -> Beacon {
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        let p = ctx.profile();
        Beacon {
            impression_id: self.cfg.impression_id,
            campaign_id: self.cfg.campaign_id,
            event,
            timestamp_us: ctx.now().as_micros(),
            ad_format: self.cfg.ad_format,
            visible_fraction_milli: (self.last_fraction.clamp(0.0, 1.0) * 1000.0).round() as u16,
            exposure_ms: self.best_exposure_ms,
            os: p.os,
            browser: p.browser,
            site_type: p.site_type,
            seq,
        }
    }

    /// One geometry measurement using whatever strategy is available.
    fn measure(&mut self, ctx: &ScriptCtx<'_>) -> Option<f64> {
        match self.strategy {
            Strategy::NativeApi => ctx.native_visible_fraction(self.cfg.ad_rect),
            Strategy::GeometryWalk => {
                let own = ctx.try_own_rect_in_viewport().ok()?;
                let vp = ctx.try_top_viewport_size().ok()?;
                if ctx.document_hidden() {
                    return Some(0.0);
                }
                let vp_rect = Rect::new(0.0, 0.0, vp.width, vp.height);
                // The own rect is the iframe's box; the creative fills it.
                Some(own.visible_fraction(&vp_rect))
            }
            _ => None,
        }
    }

    fn advance_timer(&mut self, now: SimTime, fraction: f64) -> Option<EventKind> {
        let above = fraction >= self.cfg.ad_format.required_fraction();
        let needed_us = u64::from(self.cfg.ad_format.required_exposure_ms()) * 1_000;
        if above {
            let since = *self.qualifying_since.get_or_insert(now);
            let exposure = now.since(since).as_micros();
            self.best_exposure_ms = self.best_exposure_ms.max((exposure / 1_000) as u32);
            if exposure >= needed_us && !self.viewed {
                self.viewed = true;
                self.in_view_now = true;
                return Some(EventKind::InView);
            }
            if self.viewed && !self.in_view_now {
                self.in_view_now = true; // silent re-entry
            }
        } else {
            self.qualifying_since = None;
            if self.viewed && self.in_view_now {
                self.in_view_now = false;
                return Some(EventKind::OutOfView);
            }
        }
        None
    }
}

impl TagScript for VerifierTag {
    fn on_attach(&mut self, ctx: &mut ScriptCtx<'_>) {
        // Sandboxed webviews keep the SDK from loading at all — the
        // dominant failure mode behind Table 2's Android-app column.
        if !ctx.profile().caps.verifier_sdk_loads {
            return;
        }
        self.bootstrapped = true;

        // Pick the measurement strategy once, like real SDKs feature-
        // detect at boot.
        self.strategy = if ctx.native_visible_fraction(self.cfg.ad_rect).is_some() {
            Strategy::NativeApi
        } else if ctx.try_own_rect_in_viewport().is_ok() {
            Strategy::GeometryWalk
        } else {
            Strategy::Unmeasurable
        };

        ctx.set_timer_hz(self.cfg.sample_hz);
        let b = self.beacon(ctx, EventKind::TagLoaded);
        ctx.send_beacon(b);
    }

    fn on_timer(&mut self, ctx: &mut ScriptCtx<'_>) {
        if self.strategy == Strategy::Unmeasurable || self.strategy == Strategy::None {
            return;
        }
        let Some(fraction) = self.measure(ctx) else {
            return;
        };
        self.last_fraction = fraction;
        if !self.sent_measurable {
            self.sent_measurable = true;
            let b = self.beacon(ctx, EventKind::Measurable);
            ctx.send_beacon(b);
        }
        if let Some(event) = self.advance_timer(ctx.now(), fraction) {
            let b = self.beacon(ctx, event);
            ctx.send_beacon(b);
        }
    }

    fn on_click(&mut self, ctx: &mut ScriptCtx<'_>) {
        if !self.bootstrapped {
            return;
        }
        let b = self.beacon(ctx, EventKind::Click);
        ctx.send_beacon(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtag_dom::{Origin, Page, Screen, Tab, TabId, WindowKind};
    use qtag_geometry::{Size, Vector};
    use qtag_render::{
        ApiCapabilities, CpuLoadModel, DeviceProfile, Engine, EngineConfig, RenderMode, SimDuration,
    };
    use qtag_wire::{BrowserKind, OsKind};

    fn scene(ad_y: f64) -> (Page, qtag_dom::FrameId) {
        let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 3000.0));
        let ssp = page.create_frame(Origin::https("ssp.example"), Size::new(300.0, 250.0));
        page.embed_iframe(page.root(), ssp, Rect::new(200.0, ad_y, 300.0, 250.0))
            .unwrap();
        let dsp = page.create_frame(Origin::https("dsp.example"), Size::new(300.0, 250.0));
        page.embed_iframe(ssp, dsp, Rect::new(0.0, 0.0, 300.0, 250.0))
            .unwrap();
        (page, dsp)
    }

    fn engine_with(
        profile: DeviceProfile,
        ad_y: f64,
    ) -> (Engine, qtag_dom::WindowId, qtag_dom::FrameId) {
        let (page, dsp) = scene(ad_y);
        let mut screen = Screen::desktop();
        let w = screen.add_window(
            WindowKind::Browser {
                tabs: vec![Tab::new(page)],
                active: TabId(0),
            },
            Rect::new(0.0, 0.0, 1280.0, 880.0),
            80.0,
        );
        let cfg = EngineConfig {
            profile,
            cpu: CpuLoadModel::idle(),
            seed: 1,
            mode: RenderMode::Indexed,
        };
        (Engine::new(cfg, screen), w, dsp)
    }

    fn cfg() -> VerifierConfig {
        VerifierConfig::new(1, 1, Rect::new(0.0, 0.0, 300.0, 250.0), AdFormat::Display)
    }

    fn events(engine: &mut Engine) -> Vec<EventKind> {
        engine
            .drain_outbox()
            .into_iter()
            .map(|b| b.beacon.event)
            .collect()
    }

    #[test]
    fn modern_browser_measures_via_native_api() {
        let profile = DeviceProfile::desktop(BrowserKind::Chrome, OsKind::Windows10);
        let (mut engine, w, dsp) = engine_with(profile, 100.0);
        engine
            .attach_script(
                w,
                Some(TabId(0)),
                dsp,
                Origin::https("dsp.example"),
                Box::new(VerifierTag::new(cfg())),
            )
            .unwrap();
        engine.run_for(SimDuration::from_secs(2));
        let evs = events(&mut engine);
        assert!(evs.contains(&EventKind::Measurable));
        assert!(evs.contains(&EventKind::InView));
    }

    #[test]
    fn ie11_cross_origin_is_unmeasurable() {
        // No native API + cross-origin chain → TagLoaded only.
        let profile = DeviceProfile::desktop(BrowserKind::Ie11, OsKind::Windows10);
        let (mut engine, w, dsp) = engine_with(profile, 100.0);
        engine
            .attach_script(
                w,
                Some(TabId(0)),
                dsp,
                Origin::https("dsp.example"),
                Box::new(VerifierTag::new(cfg())),
            )
            .unwrap();
        engine.run_for(SimDuration::from_secs(3));
        let evs = events(&mut engine);
        assert!(evs.contains(&EventKind::TagLoaded));
        assert!(!evs.contains(&EventKind::Measurable));
        assert!(!evs.contains(&EventKind::InView));
    }

    #[test]
    fn sandboxed_webview_blocks_sdk_entirely() {
        let profile = DeviceProfile::in_app_webview(OsKind::Android, false);
        let (page, dsp) = scene(100.0);
        let mut screen = Screen::phone();
        let w = screen.add_window(
            WindowKind::AppWebView { page },
            Rect::new(0.0, 0.0, 360.0, 740.0),
            56.0,
        );
        let mut engine = Engine::new(
            EngineConfig {
                profile,
                cpu: CpuLoadModel::idle(),
                seed: 1,
                mode: RenderMode::Indexed,
            },
            screen,
        );
        engine
            .attach_script(
                w,
                None,
                dsp,
                Origin::https("dsp.example"),
                Box::new(VerifierTag::new(cfg())),
            )
            .unwrap();
        engine.run_for(SimDuration::from_secs(2));
        assert!(
            events(&mut engine).is_empty(),
            "blocked SDK must stay silent"
        );
    }

    #[test]
    fn below_fold_measured_but_not_viewed() {
        let profile = DeviceProfile::desktop(BrowserKind::Chrome, OsKind::Windows10);
        let (mut engine, w, dsp) = engine_with(profile, 1500.0);
        engine
            .attach_script(
                w,
                Some(TabId(0)),
                dsp,
                Origin::https("dsp.example"),
                Box::new(VerifierTag::new(cfg())),
            )
            .unwrap();
        engine.run_for(SimDuration::from_secs(2));
        let evs = events(&mut engine);
        assert!(evs.contains(&EventKind::Measurable));
        assert!(!evs.contains(&EventKind::InView));
    }

    #[test]
    fn out_of_view_after_scroll_away() {
        let profile = DeviceProfile::desktop(BrowserKind::Firefox, OsKind::MacOs);
        let (mut engine, w, dsp) = engine_with(profile, 100.0);
        engine
            .attach_script(
                w,
                Some(TabId(0)),
                dsp,
                Origin::https("dsp.example"),
                Box::new(VerifierTag::new(cfg())),
            )
            .unwrap();
        engine.run_for(SimDuration::from_secs(2));
        assert!(events(&mut engine).contains(&EventKind::InView));
        engine
            .scroll_page_to(w, Some(TabId(0)), Vector::new(0.0, 2000.0))
            .unwrap();
        engine.run_for(SimDuration::from_secs(1));
        assert!(events(&mut engine).contains(&EventKind::OutOfView));
    }

    #[test]
    fn same_origin_chain_enables_geometry_walk_without_native_api() {
        // Legacy browser (no native API) but a same-origin chain: the
        // geometry fallback measures fine — matching why commercial
        // solutions do well on plain desktop web.
        let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 3000.0));
        let frame = page.create_frame(Origin::https("pub.example"), Size::new(300.0, 250.0));
        page.embed_iframe(page.root(), frame, Rect::new(200.0, 100.0, 300.0, 250.0))
            .unwrap();
        let mut screen = Screen::desktop();
        let w = screen.add_window(
            WindowKind::Browser {
                tabs: vec![Tab::new(page)],
                active: TabId(0),
            },
            Rect::new(0.0, 0.0, 1280.0, 880.0),
            80.0,
        );
        let mut profile = DeviceProfile::desktop(BrowserKind::Ie11, OsKind::Windows10);
        profile.caps = ApiCapabilities {
            native_viewability_api: false,
            animation_frames: true,
            verifier_sdk_loads: true,
        };
        let mut engine = Engine::new(
            EngineConfig {
                profile,
                cpu: CpuLoadModel::idle(),
                seed: 2,
                mode: RenderMode::Indexed,
            },
            screen,
        );
        engine
            .attach_script(
                w,
                Some(TabId(0)),
                frame,
                Origin::https("pub.example"),
                Box::new(VerifierTag::new(cfg())),
            )
            .unwrap();
        engine.run_for(SimDuration::from_secs(2));
        let evs = events(&mut engine);
        assert!(evs.contains(&EventKind::Measurable));
        assert!(evs.contains(&EventKind::InView));
    }
}
