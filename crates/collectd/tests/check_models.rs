//! Schedule-exploration models over the daemon's decode → batch →
//! inlet → applier path, built only under `--cfg qtag_check`:
//!
//! ```text
//! RUSTFLAGS="--cfg qtag_check" cargo test -p qtag-collectd --test check_models
//! ```
//!
//! The socket itself is replaced by in-memory chunks (the model
//! scheduler cannot preempt an OS `read`); everything downstream —
//! `FrameDecoder`, the per-read batching, `BeaconInlet::offer_batch`,
//! the shard appliers, the ingest shutdown drain — is the real code,
//! routed through the sync facades. Each model asserts the collector's
//! conservation identities in *every* explored interleaving.
#![cfg(qtag_check)]

use qtag_check::sync::atomic::AtomicBool;
use qtag_check::sync::thread;
use qtag_check::Builder;
#[cfg(target_os = "linux")]
use qtag_collectd::reactor_chunks;
use qtag_collectd::{serve_binary_chunks, CollectorConfig, CollectorStats, OpsSnapshot};
use qtag_server::sync::Arc;
use qtag_server::{IngestConfig, IngestService, ServedImpression, ShardedStore};
use qtag_wire::framing::encode_frames;
use qtag_wire::{AdFormat, Beacon, BrowserKind, EventKind, OsKind, SiteType};

fn beacon(id: u64, seq: u16) -> Beacon {
    Beacon {
        impression_id: id,
        campaign_id: 1,
        event: EventKind::InView,
        timestamp_us: 0,
        ad_format: AdFormat::Display,
        visible_fraction_milli: 1000,
        exposure_ms: 1000,
        os: OsKind::Windows10,
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        seq,
    }
}

struct Rig {
    service: IngestService,
    store: ShardedStore,
    stats: Arc<CollectorStats>,
    cfg: Arc<CollectorConfig>,
    shutdown: Arc<AtomicBool>,
}

fn rig() -> Rig {
    let store = ShardedStore::new(1);
    // Serve the ids the models send, so applied beacons count as
    // unique rather than orphans.
    for id in 1..=2u64 {
        store.record_served(ServedImpression {
            impression_id: id,
            campaign_id: 1,
            os: OsKind::Windows10,
            browser: BrowserKind::Chrome,
            site_type: SiteType::Browser,
            ad_format: AdFormat::Display,
        });
    }
    let service = IngestService::start_sharded(
        store.clone(),
        IngestConfig {
            workers: 1,
            batch: 2,
            inlet_capacity: 2,
            metrics: None,
            journal: None,
        },
    );
    Rig {
        service,
        store,
        stats: Arc::new(CollectorStats::default()),
        cfg: Arc::new(CollectorConfig::default()),
        shutdown: Arc::new(AtomicBool::new(false)),
    }
}

/// A connection drains its stream while the daemon's ingest service
/// shuts down concurrently — the shutdown/drain race of PR 2. In every
/// interleaving `sent == applied + corrupt + shed + rejected` must
/// hold, and whatever the inlet accepted must be in the store once
/// `shutdown` returns.
#[test]
fn drain_vs_shutdown_conserves() {
    let report = Builder::bounded(2).check(|| {
        let r = rig();
        let ingest_stats = Arc::clone(r.service.stats_arc());
        let inlet = r.service.inlet();
        let bytes = encode_frames(&[beacon(1, 0), beacon(2, 0)]).unwrap();
        let total_bytes = bytes.len() as u64;
        // Split mid-frame: the second read must resume the partial
        // frame exactly as a socket would.
        let cut = bytes.len() / 2;
        let chunks = vec![bytes[..cut].to_vec(), bytes[cut..].to_vec()];
        let stats = Arc::clone(&r.stats);
        let cfg = Arc::clone(&r.cfg);
        let shutdown = Arc::clone(&r.shutdown);
        let conn = thread::spawn(move || serve_binary_chunks(cfg, stats, inlet, shutdown, &chunks));
        r.service.shutdown();
        conn.join().unwrap();
        let ops = OpsSnapshot {
            collector: r.stats.snapshot(),
            ingest: ingest_stats.snapshot(),
        };
        assert!(ops.conserves(2), "conservation violated: {ops:?}");
        assert!(ops.decode_accounted(), "decode accounting broken: {ops:?}");
        assert_eq!(ops.collector.bytes_read, total_bytes, "{ops:?}");
        assert_eq!(
            r.store.unique_beacons(),
            ops.ingest.beacons,
            "an accepted beacon missed the store: {ops:?}"
        );
    });
    assert!(report.schedules > 1, "schedules: {}", report.schedules);
}

/// Same race with a damaged frame in the stream: the corrupt frame is
/// counted exactly once, never applied, and the identity still
/// balances in every interleaving.
#[test]
fn corrupt_frame_accounting_survives_shutdown_race() {
    let report = Builder::bounded(2).check(|| {
        let r = rig();
        let ingest_stats = Arc::clone(r.service.stats_arc());
        let inlet = r.service.inlet();
        let good = encode_frames(&[beacon(1, 0)]).unwrap();
        let mut bad = encode_frames(&[beacon(1, 1)]).unwrap();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF; // fails the CRC, header stays honest
        let bad_bytes = bad.len() as u64;
        let chunks = vec![good, bad];
        let stats = Arc::clone(&r.stats);
        let cfg = Arc::clone(&r.cfg);
        let shutdown = Arc::clone(&r.shutdown);
        let conn = thread::spawn(move || serve_binary_chunks(cfg, stats, inlet, shutdown, &chunks));
        r.service.shutdown();
        conn.join().unwrap();
        let ops = OpsSnapshot {
            collector: r.stats.snapshot(),
            ingest: ingest_stats.snapshot(),
        };
        assert_eq!(ops.collector.corrupt_frames, 1, "{ops:?}");
        // The damaged frame is discarded whole (honest header), so
        // its bytes land in corrupt_frame_bytes and none are spent
        // resynchronising.
        assert_eq!(ops.collector.corrupt_frame_bytes, bad_bytes, "{ops:?}");
        assert_eq!(ops.collector.resync_bytes, 0, "{ops:?}");
        assert!(ops.conserves(2), "conservation violated: {ops:?}");
        assert!(ops.decode_accounted(), "decode accounting broken: {ops:?}");
    });
    assert!(report.schedules > 1, "schedules: {}", report.schedules);
}

/// Two connections racing each other and the shutdown: per-connection
/// batches land on the same shard applier without losing or double
/// counting anything.
#[test]
fn two_connections_conserve_jointly() {
    // Both connections bump the same monotone `CollectorStats` and
    // `IngestStats` counters with Relaxed RMWs. Exact reads happen
    // only after both joins (the joins supply the happens-before), so
    // the unordered increments the race detector sees are benign —
    // the sites carry matching `// ordering:` justifications.
    let report = Builder::bounded(1)
        .allow_race("crates/collectd/src/connection.rs")
        .allow_race("crates/server/src/ingest.rs")
        .check(|| {
            let r = rig();
            let ingest_stats = Arc::clone(r.service.stats_arc());
            let conns: Vec<_> = (0..2u64)
                .map(|id| {
                    let chunks = vec![encode_frames(&[beacon(id + 1, 0)]).unwrap()];
                    let stats = Arc::clone(&r.stats);
                    let cfg = Arc::clone(&r.cfg);
                    let shutdown = Arc::clone(&r.shutdown);
                    let inlet = r.service.inlet();
                    thread::spawn(move || serve_binary_chunks(cfg, stats, inlet, shutdown, &chunks))
                })
                .collect();
            r.service.shutdown();
            for c in conns {
                c.join().unwrap();
            }
            let ops = OpsSnapshot {
                collector: r.stats.snapshot(),
                ingest: ingest_stats.snapshot(),
            };
            assert!(ops.conserves(2), "conservation violated: {ops:?}");
            assert!(ops.decode_accounted(), "decode accounting broken: {ops:?}");
            assert_eq!(r.store.unique_beacons(), ops.ingest.beacons);
        });
    assert!(report.schedules > 1, "schedules: {}", report.schedules);
    assert!(
        report.races > 0,
        "the allowlist should be load-bearing: the detector must have \
         observed the stats-counter races it tolerates"
    );
}

/// The reactor's non-blocking state machine racing the ingest
/// shutdown — the reactor twin of [`drain_vs_shutdown_conserves`].
/// `reactor_chunks` runs the real `ConnState` read/flush path (scripted
/// IO with partial 4-byte ack writes), so every interleaving of its
/// inlet offers against the applier and the shutdown drain must keep
/// the identity balanced, acked mode included.
#[cfg(target_os = "linux")]
#[test]
fn reactor_drain_vs_shutdown_conserves() {
    // Sleep-set reduction prunes the interleavings that only permute
    // independent ops, so the same wall-clock budget now covers a
    // deeper preemption bound (2 → 3) and a doubled schedule cap.
    let report = Builder {
        max_schedules: 8_192,
        ..Builder::bounded(3)
    }
    .check(|| {
        let r = rig();
        let ingest_stats = Arc::clone(r.service.stats_arc());
        let inlet = r.service.inlet();
        let mut bytes = vec![qtag_wire::sender::ACK_HELLO];
        bytes.extend(encode_frames(&[beacon(1, 0), beacon(2, 0)]).unwrap());
        let cut = bytes.len() / 2;
        let chunks = vec![bytes[..cut].to_vec(), bytes[cut..].to_vec()];
        let stats = Arc::clone(&r.stats);
        let cfg = Arc::clone(&r.cfg);
        let shutdown = Arc::clone(&r.shutdown);
        let conn = thread::spawn(move || reactor_chunks(cfg, stats, inlet, shutdown, &chunks, 4));
        r.service.shutdown();
        let acks = conn.join().unwrap();
        let ops = OpsSnapshot {
            collector: r.stats.snapshot(),
            ingest: ingest_stats.snapshot(),
        };
        assert!(ops.conserves(2), "conservation violated: {ops:?}");
        assert!(ops.decode_accounted(), "decode accounting broken: {ops:?}");
        assert_eq!(ops.collector.acked_connections, 1, "{ops:?}");
        // Every beacon the inlet accepted was acked in full, through
        // the partial-write cursor, in every interleaving.
        assert_eq!(
            acks.len() as u64,
            ops.ingest.beacons * qtag_wire::sender::ACK_LEN as u64,
            "{ops:?}"
        );
        assert_eq!(r.store.unique_beacons(), ops.ingest.beacons, "{ops:?}");
    });
    assert!(report.schedules > 1, "schedules: {}", report.schedules);
}

/// A threaded connection and a reactor connection share one inlet
/// while the service shuts down: the two serving shapes must account
/// jointly — mixed-mode deployments (rolling out `--reactor`) keep
/// exactly-once semantics.
#[cfg(target_os = "linux")]
#[test]
fn mixed_mode_connections_conserve_jointly() {
    // Same benign stats-counter races as `two_connections_conserve_
    // jointly`, from both serving shapes this time (threaded
    // connection.rs + reactor.rs + the shared ingest counters);
    // exact reads only after both joins.
    let report = Builder::bounded(1)
        .allow_race("crates/collectd/src/connection.rs")
        .allow_race("crates/collectd/src/reactor.rs")
        .allow_race("crates/server/src/ingest.rs")
        .check(|| {
            let r = rig();
            let ingest_stats = Arc::clone(r.service.stats_arc());
            let threaded = {
                let chunks = vec![encode_frames(&[beacon(1, 0)]).unwrap()];
                let stats = Arc::clone(&r.stats);
                let cfg = Arc::clone(&r.cfg);
                let shutdown = Arc::clone(&r.shutdown);
                let inlet = r.service.inlet();
                thread::spawn(move || serve_binary_chunks(cfg, stats, inlet, shutdown, &chunks))
            };
            let reactor = {
                let chunks = vec![encode_frames(&[beacon(2, 0)]).unwrap()];
                let stats = Arc::clone(&r.stats);
                let cfg = Arc::clone(&r.cfg);
                let shutdown = Arc::clone(&r.shutdown);
                let inlet = r.service.inlet();
                thread::spawn(move || {
                    reactor_chunks(cfg, stats, inlet, shutdown, &chunks, 4);
                })
            };
            r.service.shutdown();
            threaded.join().unwrap();
            reactor.join().unwrap();
            let ops = OpsSnapshot {
                collector: r.stats.snapshot(),
                ingest: ingest_stats.snapshot(),
            };
            assert!(ops.conserves(2), "conservation violated: {ops:?}");
            assert!(ops.decode_accounted(), "decode accounting broken: {ops:?}");
            assert_eq!(r.store.unique_beacons(), ops.ingest.beacons);
        });
    assert!(report.schedules > 1, "schedules: {}", report.schedules);
}
