//! Reactor-vs-threaded equivalence property: for ANY session byte
//! stream — acked or plain, clean or corrupted, split into arbitrary
//! read-sized chunks — the reactor's non-blocking state machine
//! ([`qtag_collectd::reactor_chunks`]) and the threaded blocking path
//! ([`qtag_collectd::serve_binary_chunks`]) must produce bit-identical
//! accounting: same decode/corrupt/resync counters, same applied
//! beacons, same store contents. This is the contract that makes
//! `--reactor` a pure serving-shape switch rather than a second
//! protocol implementation.
#![cfg(target_os = "linux")]

use proptest::prelude::*;
use qtag_collectd::sync::atomic::AtomicBool;
use qtag_collectd::sync::Arc;
use qtag_collectd::{
    reactor_chunks, serve_binary_chunks, CollectorConfig, CollectorStats, OpsSnapshot,
};
use qtag_server::{IngestConfig, IngestService, ServedImpression, ShardedStore};
use qtag_wire::framing::encode_frames;
use qtag_wire::sender::{ACK_HELLO, ACK_LEN};
use qtag_wire::{AdFormat, Beacon, BrowserKind, EventKind, OsKind, SiteType};

const IDS: u64 = 16;

fn beacon(id: u64, seq: u16, event: EventKind) -> Beacon {
    Beacon {
        impression_id: id,
        campaign_id: 1,
        event,
        timestamp_us: 1_000 * u64::from(seq),
        ad_format: AdFormat::Display,
        visible_fraction_milli: 800,
        exposure_ms: 1100,
        os: OsKind::Windows10,
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        seq,
    }
}

/// One frame of the generated session: a beacon, possibly damaged
/// after encoding (payload bit-flip: honest header, failing CRC).
#[derive(Debug, Clone)]
struct GenFrame {
    id: u64,
    seq: u16,
    in_view: bool,
    corrupt: bool,
}

fn frame_strategy() -> impl Strategy<Value = GenFrame> {
    // ~15% of frames arrive damaged (the vendored proptest shim has
    // no `bool::weighted`, so roll a percentile instead).
    (1..=IDS, 0u16..4, any::<bool>(), 0u32..100).prop_map(|(id, seq, in_view, roll)| GenFrame {
        id,
        seq,
        in_view,
        corrupt: roll < 15,
    })
}

/// Encodes the session and splits it into chunks at the given
/// fractions of its length (deduplicated, sorted).
fn build_chunks(frames: &[GenFrame], acked: bool, cuts: &[usize]) -> (Vec<Vec<u8>>, u64, u64) {
    let mut stream = if acked { vec![ACK_HELLO] } else { Vec::new() };
    let mut sent = 0u64;
    let mut corrupted = 0u64;
    for f in frames {
        let event = if f.in_view {
            EventKind::InView
        } else {
            EventKind::Measurable
        };
        let mut bytes = encode_frames(&[beacon(f.id, f.seq, event)]).unwrap();
        if f.corrupt {
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            corrupted += 1;
        } else {
            sent += 1;
        }
        stream.extend_from_slice(&bytes);
    }
    let mut points: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
    points.push(0);
    points.push(stream.len());
    // The chunk drivers model one read(2) per chunk, so a chunk must
    // fit the readers' scratch buffer; force cut points at least every
    // 96 bytes (scratch is MAX_FRAME_LEN + 64 = 128).
    points.extend((0..stream.len()).step_by(96));
    points.sort_unstable();
    points.dedup();
    let chunks = points
        .windows(2)
        .filter(|w| w[1] > w[0])
        .map(|w| stream[w[0]..w[1]].to_vec())
        .collect();
    (chunks, sent, corrupted)
}

struct Rig {
    service: IngestService,
    store: ShardedStore,
    stats: Arc<CollectorStats>,
    cfg: Arc<CollectorConfig>,
    shutdown: Arc<AtomicBool>,
}

fn rig() -> Rig {
    let store = ShardedStore::new(2);
    for id in 1..=IDS {
        store.record_served(ServedImpression {
            impression_id: id,
            campaign_id: 1,
            os: OsKind::Windows10,
            browser: BrowserKind::Chrome,
            site_type: SiteType::Browser,
            ad_format: AdFormat::Display,
        });
    }
    let service = IngestService::start_sharded(
        store.clone(),
        IngestConfig {
            workers: 1,
            batch: 8,
            // Roomy inlet: shedding depends on applier timing, which
            // would make the two runs incomparable. Equivalence under
            // shedding is covered by the qtag_check models, where the
            // schedule itself is controlled.
            inlet_capacity: 4096,
            metrics: None,
            journal: None,
        },
    );
    Rig {
        service,
        store,
        stats: Arc::new(CollectorStats::default()),
        cfg: Arc::new(CollectorConfig::default()),
        shutdown: Arc::new(AtomicBool::new(false)),
    }
}

impl Rig {
    /// Drains the ingest service and returns the settled ops snapshot
    /// plus the applied store state. Consumes the rig: `shutdown`
    /// takes the service by value.
    fn settle(self) -> (OpsSnapshot, u64) {
        let ingest = Arc::clone(self.service.stats_arc());
        self.service.shutdown();
        let ops = OpsSnapshot {
            collector: self.stats.snapshot(),
            ingest: ingest.snapshot(),
        };
        (ops, self.store.unique_beacons())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any schedule of frames (some corrupt), any chunking, acked or
    /// not, any ack write granularity: both serving paths account
    /// identically and the store converges to the same state.
    #[test]
    fn reactor_matches_threaded_on_any_schedule(
        frames in prop::collection::vec(frame_strategy(), 1..24),
        acked in any::<bool>(),
        cuts in prop::collection::vec(0usize..4096, 0..12),
        write_cap in 1usize..64,
    ) {
        let (chunks, sent, corrupted) = build_chunks(&frames, acked, &cuts);

        let threaded = rig();
        serve_binary_chunks(
            Arc::clone(&threaded.cfg),
            Arc::clone(&threaded.stats),
            threaded.service.inlet(),
            Arc::clone(&threaded.shutdown),
            &chunks,
        );
        let (t, t_unique) = threaded.settle();

        let reactor = rig();
        let ack_bytes = reactor_chunks(
            Arc::clone(&reactor.cfg),
            Arc::clone(&reactor.stats),
            reactor.service.inlet(),
            Arc::clone(&reactor.shutdown),
            &chunks,
            write_cap,
        );
        let (r, r_unique) = reactor.settle();

        // Decode-side accounting: bit-identical.
        prop_assert_eq!(t.collector.frames_decoded, r.collector.frames_decoded);
        prop_assert_eq!(t.collector.corrupt_frames, r.collector.corrupt_frames);
        prop_assert_eq!(t.collector.corrupt_frame_bytes, r.collector.corrupt_frame_bytes);
        prop_assert_eq!(t.collector.resync_bytes, r.collector.resync_bytes);
        prop_assert_eq!(t.collector.bytes_read, r.collector.bytes_read);
        prop_assert_eq!(t.collector.acked_connections, r.collector.acked_connections);

        // Ingest-side accounting and the store itself agree.
        prop_assert_eq!(t.ingest.beacons, r.ingest.beacons);
        prop_assert_eq!(t.ingest.shed_beacons, 0u64);
        prop_assert_eq!(r.ingest.shed_beacons, 0u64);
        prop_assert_eq!(t_unique, r_unique);

        // Both modes conserve the same ground truth.
        prop_assert!(t.conserves(sent + corrupted), "threaded: {:?}", t);
        prop_assert!(r.conserves(sent + corrupted), "reactor: {:?}", r);
        prop_assert_eq!(t.collector.corrupt_frames, corrupted);

        // The reactor must have flushed one ack per accepted frame —
        // through whatever partial-write schedule `write_cap` forced.
        if acked {
            prop_assert_eq!(ack_bytes.len() as u64, r.ingest.beacons * ACK_LEN as u64);
            prop_assert_eq!(r.collector.acks_sent, r.ingest.beacons);
        } else {
            prop_assert_eq!(ack_bytes.len(), 0);
        }
    }
}
