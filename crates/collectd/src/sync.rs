//! Synchronization facade for the daemon — a re-export of
//! [`qtag_server::sync`], so both crates swap to the qtag-check
//! model-checker shims together under `--cfg qtag_check` and a
//! `Collector`'s primitives are always the same types as the embedded
//! `IngestService`'s. `qtag-lint` rule R4 enforces that no other file
//! in this crate names `std::sync`/`parking_lot`/`std::thread`
//! primitives directly.

pub use qtag_server::sync::*;
