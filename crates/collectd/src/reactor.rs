//! Event-driven connection serving: a few epoll worker loops instead
//! of one blocking reader thread per connection.
//!
//! Architecture (`CollectorConfig::reactor = true`):
//!
//! ```text
//!   acceptor thread ──round-robin──▶ worker 0 ─┐ epoll loop over a slab of
//!        (collector.rs accept_loop) ▶ worker 1 ─┤ ConnState machines, one per
//!                                   ▶ worker N ─┘ non-blocking socket
//! ```
//!
//! Each worker owns its connections for life: a slab (`Vec<Option<..>>`
//! plus free list) of [`ConnState`] machines keyed by the epoll token,
//! no migration and no cross-worker locking. The state machine drives
//! the exact same [`ProtoEngine`] as the threaded mode, so the wire
//! protocol, shed accounting and conservation identities are
//! bit-identical between modes — a property the equivalence tests pin.
//!
//! Backpressure rules:
//!
//! - **Reads**: level-triggered readiness with a per-event read budget
//!   ([`MAX_READS_PER_EVENT`]); a firehose connection yields the loop
//!   and its event re-fires, so thousands of peers share one worker
//!   fairly.
//! - **Ack writes**: acks queue in a per-connection buffer flushed
//!   with non-blocking writes; a partial write parks the rest behind
//!   `WRITABLE` interest. When the backlog exceeds
//!   `CollectorConfig::ack_buffer_cap` the connection's *reads* pause
//!   until the client drains its acks — a slow ack reader throttles
//!   its own sender instead of growing daemon memory.
//! - **Idle**: a periodic sweep closes connections whose last byte is
//!   older than `read_timeout`, measured on the facade clock (the
//!   same wall-accurate accounting as the threaded mode).
//!
//! The blocking calls that make sense on a dedicated reader thread
//! (socket timeouts, `write_all`, sleeps) are design bugs on an event
//! loop; `qtag-lint` rule R5 keeps them out of this file.

use crate::config::CollectorConfig;
use crate::connection::{ConnCtx, ProtoEngine};
use crate::stats::CollectorStats;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::time::Instant;
use crate::sync::Arc;
use crossbeam::channel::{Receiver, TryRecvError};
use mio::{Events, Interest, Poll, Token};
use qtag_server::BeaconInlet;
use qtag_wire::sender::ACK_LEN;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Reads one connection may consume per readiness event before
/// yielding the loop. Level-triggered polling re-delivers the event,
/// so the cap trades per-connection syscall batching for cross-
/// connection fairness without losing data.
const MAX_READS_PER_EVENT: usize = 16;

/// A connection handed from the acceptor to a worker. The context
/// already carries the connection's trace correlation id.
pub(crate) struct NewConn {
    pub(crate) stream: TcpStream,
    pub(crate) ctx: ConnCtx,
}

/// Why [`ConnState::on_readable`] wants the connection closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadOutcome {
    /// Keep the connection; nothing more to read right now.
    Open,
    /// Peer closed its write half (orderly EOF) or the socket erred;
    /// either way the stream is over and the engine must be flushed.
    Closed,
}

/// The per-connection non-blocking state machine: the shared
/// [`ProtoEngine`] plus the reactor-only state (pending-ack write
/// buffer with cursor, pause flag, idle clock). Transport-agnostic —
/// the worker drives it with a real socket, the model/equivalence
/// drivers with scripted in-memory IO.
pub(crate) struct ConnState {
    engine: ProtoEngine,
    /// Ack bytes generated but not yet fully written. `cursor` marks
    /// how far non-blocking writes have progressed; the buffer is
    /// cleared (and counted) only when fully drained, so every ack is
    /// counted exactly once.
    acks: Vec<u8>,
    cursor: usize,
    /// Reads paused because the un-drained ack backlog exceeded
    /// `ack_buffer_cap`. Cleared on full drain.
    paused: bool,
    /// Facade-clock instant of the last byte received (idle budget).
    last_data: Instant,
}

impl ConnState {
    pub(crate) fn new() -> ConnState {
        ConnState {
            engine: ProtoEngine::new(),
            acks: Vec::new(),
            cursor: 0,
            paused: false,
            last_data: Instant::now(),
        }
    }

    fn pending(&self) -> usize {
        self.acks.len() - self.cursor
    }

    /// Whether the worker should watch this connection for `WRITABLE`
    /// (a partial ack write is parked).
    pub(crate) fn wants_writable(&self) -> bool {
        self.pending() > 0
    }

    /// How long since the peer last sent a byte.
    pub(crate) fn idle_for(&self) -> Duration {
        self.last_data.elapsed()
    }

    /// Handles a readable event: reads up to `budget` chunks, feeding
    /// the engine and flushing acks opportunistically. `EINTR` retries
    /// the read (the same lifecycle fix as the threaded path);
    /// `WouldBlock` or an exhausted budget returns [`ReadOutcome::Open`]
    /// and waits for the next event.
    pub(crate) fn on_readable(
        &mut self,
        io: &mut (impl Read + Write),
        ctx: &ConnCtx,
        scratch: &mut [u8],
        budget: usize,
    ) -> io::Result<ReadOutcome> {
        if self.paused {
            // Backpressured: the ack backlog must drain (on_writable)
            // before more frames are accepted. Level-triggered polling
            // re-delivers the readable event after resume.
            return Ok(ReadOutcome::Open);
        }
        let mut reads = 0;
        loop {
            match io.read(scratch) {
                Ok(0) => return Ok(ReadOutcome::Closed),
                Ok(n) => {
                    self.last_data = Instant::now();
                    ctx.stats.bytes_read.fetch_add(n as u64, Ordering::Relaxed); // ordering: stat, read after join
                    self.engine.on_bytes(&scratch[..n], ctx, &mut self.acks);
                    if self.pending() > 0 {
                        self.flush(io, ctx)?;
                        if self.pending() > ctx.cfg.ack_buffer_cap {
                            self.paused = true;
                            // ordering: monotone stat; exact reads only after join.
                            ctx.stats
                                .ack_backpressure_pauses
                                .fetch_add(1, Ordering::Relaxed);
                            return Ok(ReadOutcome::Open);
                        }
                    }
                    reads += 1;
                    if reads >= budget {
                        return Ok(ReadOutcome::Open);
                    }
                }
                // A signal landing mid-read says nothing about the
                // connection: retry, don't tear down.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadOutcome::Open),
                Err(e) => return Err(e),
            }
        }
    }

    /// Handles a writable event: resumes the parked ack flush.
    pub(crate) fn on_writable(&mut self, io: &mut impl Write, ctx: &ConnCtx) -> io::Result<()> {
        self.flush(io, ctx)
    }

    /// Non-blocking ack flush. Partial progress advances `cursor`; a
    /// full drain counts the acks (`acks_sent` per record,
    /// `ack_flushes` per drained buffer — the coalescing unit of this
    /// mode), resets the buffer, and lifts a read pause.
    fn flush(&mut self, io: &mut impl Write, ctx: &ConnCtx) -> io::Result<()> {
        while self.cursor < self.acks.len() {
            match io.write(&self.acks[self.cursor..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.cursor += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => return Err(e),
            }
        }
        if self.cursor == self.acks.len() && !self.acks.is_empty() {
            let n = (self.acks.len() / ACK_LEN) as u64;
            ctx.stats.acks_sent.fetch_add(n, Ordering::Relaxed); // ordering: stat, read after join
            ctx.stats.ack_flushes.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
            self.acks.clear();
            self.cursor = 0;
            self.paused = false;
        }
        Ok(())
    }

    /// End-of-stream: flushes the engine (truncated binary tails stay
    /// unsent; an unterminated JSON tail is parsed — the same
    /// lifecycle fix as the threaded path, which shares the engine)
    /// and makes one best-effort non-blocking attempt at the final
    /// acks. A peer that is gone, or whose socket buffer is full while
    /// closing, loses only acks — its retry layer covers them.
    pub(crate) fn finish(&mut self, io: &mut impl Write, ctx: &ConnCtx) {
        self.engine.finish(ctx, &mut self.acks);
        let _ = self.flush(io, ctx);
    }

    /// Clears a backpressure pause (shutdown drain reads regardless:
    /// the daemon is about to close the socket either way, and the
    /// buffered frames must reach the store).
    fn unpause_for_drain(&mut self) {
        self.paused = false;
    }
}

/// One slab slot: the socket, its state machine, its per-connection
/// context (trace id), and the interest set currently registered.
struct Slot {
    stream: TcpStream,
    state: ConnState,
    ctx: ConnCtx,
    interest: Interest,
}

fn desired_interest(state: &ConnState) -> Interest {
    if state.wants_writable() {
        if state.paused {
            // Reads are paused: only the drain matters.
            Interest::WRITABLE
        } else {
            Interest::READABLE | Interest::WRITABLE
        }
    } else {
        Interest::READABLE
    }
}

/// Idle sweep cadence: fine-grained enough to enforce `read_timeout`
/// with useful resolution, coarse enough that sweeping tens of
/// thousands of slots stays off the hot path.
fn sweep_cadence(cfg: &CollectorConfig) -> Duration {
    (cfg.read_timeout / 4)
        .min(Duration::from_secs(1))
        .max(cfg.poll_interval)
}

/// One reactor worker: owns an epoll instance and every connection
/// the acceptor hands it, until shutdown drains them all.
pub(crate) fn run_worker(
    rx: Receiver<NewConn>,
    cfg: Arc<CollectorConfig>,
    shutdown: Arc<AtomicBool>,
) {
    let poll = match Poll::new() {
        Ok(p) => p,
        Err(_) => {
            // No epoll instance (fd exhaustion at startup): refuse
            // every hand-off so the gauge stays honest. A blocking
            // drain is fine here — this worker owns no sockets, so
            // there is nothing a stall could starve (the R5 lint bans
            // blocking waits only because they'd freeze live
            // connections).
            for nc in rx {
                // ordering: admission gauge, see ActiveGuard in collector.rs.
                nc.ctx
                    .stats
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            }
            return;
        }
    };
    let mut events = Events::with_capacity(1024);
    let mut slots: Vec<Option<Slot>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut live = 0usize;
    let mut scratch = vec![0u8; 64 * 1024];
    let sweep_every = sweep_cadence(&cfg);
    let mut last_sweep = Instant::now();
    let mut rx_open = true;

    loop {
        // Admit pending hand-offs (bounded only by what the acceptor
        // queued; each admit is O(1)).
        while rx_open {
            match rx.try_recv() {
                Ok(nc) => admit(nc, &poll, &mut slots, &mut free, &mut live),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => rx_open = false,
            }
        }

        // ordering: Acquire pairs with the Release store in
        // `Collector::stop`; a worker that sees the flag also sees
        // everything published before the stop began.
        if shutdown.load(Ordering::Acquire) {
            // Shutdown drain, mirroring the threaded semantics: each
            // connection is read until quiet (buffered frames reach
            // the store), flushed, and closed. The acceptor may still
            // hand over backlog connections during its drain grace;
            // they get the same treatment until the channel closes.
            for idx in 0..slots.len() {
                drain_slot(idx, &poll, &mut slots, &mut free, &mut live, &mut scratch);
            }
            if !rx_open {
                break;
            }
            // Wait for more backlog hand-offs (or the channel close)
            // without spinning; the slab is quiet so this is a sleep
            // with an epoll spelling.
            let _ = poll.poll(&mut events, Some(cfg.poll_interval));
            continue;
        }
        if !rx_open && live == 0 {
            break;
        }

        match poll.poll(&mut events, Some(cfg.poll_interval)) {
            // EINTR: the wait was interrupted, nothing was lost.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // A broken epoll fd is unrecoverable; teardown below
            // closes the remaining connections.
            Err(_) => break,
            Ok(_) => {}
        }

        for ev in events.iter() {
            let idx = ev.token().0;
            let Some(slot) = slots.get_mut(idx).and_then(Option::as_mut) else {
                continue; // already closed this iteration
            };
            let mut close = false;
            // Drain writes first: a full ack flush can lift a read
            // pause, letting the read below make progress immediately.
            if ev.is_writable() && slot.state.wants_writable() {
                close |= slot.state.on_writable(&mut slot.stream, &slot.ctx).is_err();
            }
            if !close && ev.is_readable() {
                close |= !matches!(
                    slot.state.on_readable(
                        &mut slot.stream,
                        &slot.ctx,
                        &mut scratch,
                        MAX_READS_PER_EVENT
                    ),
                    Ok(ReadOutcome::Open)
                );
            }
            if close {
                close_slot(idx, &poll, &mut slots, &mut free, &mut live);
            } else {
                let want = desired_interest(&slot.state);
                if want != slot.interest {
                    if poll.reregister(&slot.stream, Token(idx), want).is_ok() {
                        slot.interest = want;
                    } else {
                        close_slot(idx, &poll, &mut slots, &mut free, &mut live);
                    }
                }
            }
        }

        if last_sweep.elapsed() >= sweep_every {
            last_sweep = Instant::now();
            for idx in 0..slots.len() {
                let timed_out = slots[idx]
                    .as_ref()
                    .is_some_and(|s| s.state.idle_for() >= s.ctx.cfg.read_timeout);
                if timed_out {
                    let slot = slots[idx].as_ref().unwrap();
                    // ordering: monotone stat; exact reads only after join.
                    slot.ctx
                        .stats
                        .connections_timed_out
                        .fetch_add(1, Ordering::Relaxed);
                    close_slot(idx, &poll, &mut slots, &mut free, &mut live);
                }
            }
        }
    }

    // Teardown: close whatever survived (epoll failure path).
    for idx in 0..slots.len() {
        if slots[idx].is_some() {
            close_slot(idx, &poll, &mut slots, &mut free, &mut live);
        }
    }
}

fn admit(
    nc: NewConn,
    poll: &Poll,
    slots: &mut Vec<Option<Slot>>,
    free: &mut Vec<usize>,
    live: &mut usize,
) {
    let NewConn { stream, ctx } = nc;
    let ready = stream
        .set_nonblocking(true)
        .and_then(|()| {
            let idx = free.last().copied().unwrap_or(slots.len());
            poll.register(&stream, Token(idx), Interest::READABLE)
        })
        .is_ok();
    if !ready {
        // Registration failed (fd pressure): shed the connection whole
        // rather than serving it half-registered.
        ctx.stats.accept_errors.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
        ctx.stats.connections_active.fetch_sub(1, Ordering::Relaxed); // ordering: admission gauge, see ActiveGuard
        return;
    }
    let idx = match free.pop() {
        Some(idx) => idx,
        None => {
            slots.push(None);
            slots.len() - 1
        }
    };
    slots[idx] = Some(Slot {
        stream,
        state: ConnState::new(),
        ctx,
        interest: Interest::READABLE,
    });
    *live += 1;
}

/// Closes slot `idx`: flushes the engine into the store, releases the
/// epoll registration, restores the admission gauge, and returns the
/// slot to the free list.
fn close_slot(
    idx: usize,
    poll: &Poll,
    slots: &mut [Option<Slot>],
    free: &mut Vec<usize>,
    live: &mut usize,
) {
    let Some(mut slot) = slots[idx].take() else {
        return;
    };
    let _ = poll.deregister(&slot.stream);
    slot.state.finish(&mut slot.stream, &slot.ctx);
    // ordering: admission gauge, see ActiveGuard in collector.rs.
    slot.ctx
        .stats
        .connections_active
        .fetch_sub(1, Ordering::Relaxed);
    free.push(idx);
    *live -= 1;
}

/// Shutdown-drain for one slot: read until the socket is quiet
/// (unbudgeted — buffered frames must not be truncated), then close.
fn drain_slot(
    idx: usize,
    poll: &Poll,
    slots: &mut [Option<Slot>],
    free: &mut Vec<usize>,
    live: &mut usize,
    scratch: &mut [u8],
) {
    let Some(slot) = slots.get_mut(idx).and_then(Option::as_mut) else {
        return;
    };
    slot.state.unpause_for_drain();
    let _ = slot
        .state
        .on_readable(&mut slot.stream, &slot.ctx, scratch, usize::MAX);
    close_slot(idx, poll, slots, free, live);
}

// ---------------------------------------------------------------------------
// Socket-free drivers (model checking and equivalence testing)
// ---------------------------------------------------------------------------

/// Scripted non-blocking IO for the socket-free driver: reads serve
/// one chunk per call then EOF; writes accept at most `write_cap`
/// bytes per call and return `WouldBlock` on every other attempt,
/// exercising the partial-write cursor and the read-pause
/// backpressure path deterministically.
struct ScriptedIo<'a> {
    chunks: &'a [Vec<u8>],
    next: usize,
    write_cap: usize,
    stall_next_write: bool,
    written: Vec<u8>,
}

impl<'a> ScriptedIo<'a> {
    fn new(chunks: &'a [Vec<u8>], write_cap: usize) -> Self {
        ScriptedIo {
            chunks,
            next: 0,
            write_cap: write_cap.max(1),
            stall_next_write: false,
            written: Vec::new(),
        }
    }
}

impl Read for ScriptedIo<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.chunks.get(self.next) {
            Some(chunk) => {
                assert!(
                    chunk.len() <= buf.len(),
                    "driver chunks must fit one read buffer"
                );
                buf[..chunk.len()].copy_from_slice(chunk);
                self.next += 1;
                Ok(chunk.len())
            }
            None => Ok(0), // peer closed after the last chunk
        }
    }
}

impl Write for ScriptedIo<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.stall_next_write {
            self.stall_next_write = false;
            return Err(io::ErrorKind::WouldBlock.into());
        }
        self.stall_next_write = true;
        let n = buf.len().min(self.write_cap);
        self.written.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Drives one session through the reactor's [`ConnState`] machine over
/// in-memory chunks — the exact non-blocking read/flush/backpressure
/// path of a worker, minus the epoll instance. The counterpart of
/// [`crate::serve_binary_chunks`] (threaded seam): running both over
/// the same schedule and comparing accounting is the
/// reactor-vs-threaded equivalence property, and the qtag-check models
/// interleave this driver against the shard appliers.
///
/// `write_cap` bounds each scripted ack write (small values force
/// partial flushes and read pauses). Returns the ack bytes the client
/// would have received.
#[doc(hidden)]
pub fn reactor_chunks(
    cfg: Arc<CollectorConfig>,
    stats: Arc<CollectorStats>,
    inlet: BeaconInlet,
    shutdown: Arc<AtomicBool>,
    chunks: &[Vec<u8>],
    write_cap: usize,
) -> Vec<u8> {
    let ctx = ConnCtx {
        cfg,
        stats,
        inlet,
        shutdown,
        obs: crate::connection::ConnObs::disabled(),
    };
    let mut io = ScriptedIo::new(chunks, write_cap);
    let mut state = ConnState::new();
    let mut scratch = vec![0u8; qtag_wire::framing::MAX_FRAME_LEN + 64];
    // One "readable event" per iteration: budget 1 read, like a worker
    // seeing one level-triggered wakeup per scripted chunk.
    while let Ok(ReadOutcome::Open) = state.on_readable(&mut io, &ctx, &mut scratch, 1) {
        // One "writable event" whenever a flush is parked; the
        // scripted writer guarantees progress every other call, so
        // the pause always lifts.
        while state.wants_writable() {
            if state.on_writable(&mut io, &ctx).is_err() {
                break;
            }
        }
    }
    state.finish(&mut io, &ctx);
    io.written
}

/// Drives `sessions` resident [`ConnState`] machines over a shared
/// chunk schedule, round-robin one read event per connection per round
/// — a reactor worker's interleaving at connection counts real sockets
/// cannot reach under the process fd limit (each loopback connection
/// burns two fds in a single-process harness). Every state machine is
/// live for the whole run, so per-connection memory and per-event cost
/// are measured at full fleet size; only the epoll syscalls are
/// elided. Returns the total ack bytes the fleet's clients would have
/// received.
#[doc(hidden)]
pub fn reactor_virtual_fleet(
    cfg: Arc<CollectorConfig>,
    stats: Arc<CollectorStats>,
    inlet: BeaconInlet,
    shutdown: Arc<AtomicBool>,
    sessions: usize,
    chunks: &[Vec<u8>],
    write_cap: usize,
) -> u64 {
    let ctx = ConnCtx {
        cfg,
        stats,
        inlet,
        shutdown,
        obs: crate::connection::ConnObs::disabled(),
    };
    let mut scratch = vec![0u8; qtag_wire::framing::MAX_FRAME_LEN + 64];
    let mut fleet: Vec<(ScriptedIo<'_>, ConnState, bool)> = (0..sessions)
        .map(|_| (ScriptedIo::new(chunks, write_cap), ConnState::new(), true))
        .collect();
    let mut open = sessions;
    while open > 0 {
        for (io, state, alive) in fleet.iter_mut() {
            if !*alive {
                continue;
            }
            let closed = match state.on_readable(io, &ctx, &mut scratch, 1) {
                Ok(ReadOutcome::Open) => false,
                Ok(ReadOutcome::Closed) | Err(_) => true,
            };
            while state.wants_writable() {
                if state.on_writable(io, &ctx).is_err() {
                    break;
                }
            }
            if closed {
                state.finish(io, &ctx);
                *alive = false;
                open -= 1;
            }
        }
    }
    fleet.iter().map(|(io, _, _)| io.written.len() as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::serve_binary_chunks;
    use crate::sync::Mutex;
    use qtag_server::{
        ImpressionStore, IngestConfig, IngestService, ServedImpression, ShardedStore,
    };
    use qtag_wire::framing::encode_frames;
    use qtag_wire::sender::ACK_HELLO;
    use qtag_wire::{AdFormat, Beacon, BrowserKind, EventKind, OsKind, SiteType};

    fn beacon(id: u64, seq: u16) -> Beacon {
        Beacon {
            impression_id: id,
            campaign_id: 1,
            event: EventKind::InView,
            timestamp_us: 0,
            ad_format: AdFormat::Display,
            visible_fraction_milli: 900,
            exposure_ms: 1500,
            os: OsKind::Windows10,
            browser: BrowserKind::Chrome,
            site_type: SiteType::Browser,
            seq,
        }
    }

    struct Rig {
        service: IngestService,
        store: ShardedStore,
        stats: Arc<CollectorStats>,
        cfg: Arc<CollectorConfig>,
        shutdown: Arc<AtomicBool>,
    }

    fn rig() -> Rig {
        let store = ShardedStore::from_single(Arc::new(Mutex::new(ImpressionStore::new())));
        for id in 1..=64u64 {
            store.record_served(ServedImpression {
                impression_id: id,
                campaign_id: 1,
                os: OsKind::Windows10,
                browser: BrowserKind::Chrome,
                site_type: SiteType::Browser,
                ad_format: AdFormat::Display,
            });
        }
        let service = IngestService::start_sharded(
            store.clone(),
            IngestConfig {
                workers: 1,
                batch: 16,
                inlet_capacity: 1024, // roomy: no nondeterministic shedding
                metrics: None,
                journal: None,
            },
        );
        Rig {
            service,
            store,
            stats: Arc::new(CollectorStats::default()),
            cfg: Arc::new(CollectorConfig::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        }
    }

    fn acked_stream(ids: &[u64]) -> Vec<u8> {
        let beacons: Vec<Beacon> = ids.iter().map(|&id| beacon(id, 0)).collect();
        let mut bytes = vec![ACK_HELLO];
        bytes.extend_from_slice(&encode_frames(&beacons).unwrap());
        bytes
    }

    /// The reactor state machine over scripted chunks produces the
    /// same accounting as the threaded seam over the same schedule.
    #[test]
    fn chunk_driver_matches_threaded_seam() {
        let stream = acked_stream(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let chunks: Vec<Vec<u8>> = stream.chunks(7).map(|c| c.to_vec()).collect();

        let threaded = rig();
        serve_binary_chunks(
            Arc::clone(&threaded.cfg),
            Arc::clone(&threaded.stats),
            threaded.service.inlet(),
            Arc::clone(&threaded.shutdown),
            &chunks,
        );
        threaded.service.shutdown();

        let reactor = rig();
        let acks = reactor_chunks(
            Arc::clone(&reactor.cfg),
            Arc::clone(&reactor.stats),
            reactor.service.inlet(),
            Arc::clone(&reactor.shutdown),
            &chunks,
            4, // partial writes every flush
        );
        reactor.service.shutdown();

        let t = threaded.stats.snapshot();
        let r = reactor.stats.snapshot();
        assert_eq!(t.frames_decoded, r.frames_decoded);
        assert_eq!(t.corrupt_frames, r.corrupt_frames);
        assert_eq!(t.bytes_read, r.bytes_read);
        assert_eq!(t.acked_connections, r.acked_connections);
        assert_eq!(t.resync_bytes, r.resync_bytes);
        assert_eq!(t.corrupt_frame_bytes, r.corrupt_frame_bytes);
        assert_eq!(
            threaded.store.unique_beacons(),
            reactor.store.unique_beacons()
        );
        // The threaded seam never flushes (no socket); the reactor
        // driver must have acked every accepted frame.
        assert_eq!(acks.len(), 8 * ACK_LEN);
        assert_eq!(r.acks_sent, 8);
    }

    /// A tiny write cap plus a tiny ack buffer forces the
    /// backpressure path: reads pause, the pause is counted, and —
    /// because the flush eventually drains — every ack still arrives.
    #[test]
    fn slow_ack_reader_pauses_reads_then_recovers() {
        let stream = acked_stream(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        let chunks: Vec<Vec<u8>> = stream.chunks(64).map(|c| c.to_vec()).collect();
        let r = rig();
        let cfg = CollectorConfig {
            ack_buffer_cap: ACK_LEN, // more than one pending ack pauses reads
            ..CollectorConfig::default()
        };
        let acks = reactor_chunks(
            Arc::new(cfg),
            Arc::clone(&r.stats),
            r.service.inlet(),
            Arc::clone(&r.shutdown),
            &chunks,
            3, // never a full ack per write
        );
        r.service.shutdown();
        let snap = r.stats.snapshot();
        assert_eq!(acks.len(), 12 * ACK_LEN, "{snap:?}");
        assert_eq!(snap.acks_sent, 12, "{snap:?}");
        assert!(
            snap.ack_backpressure_pauses >= 1,
            "the capped writer must have paused reads at least once: {snap:?}"
        );
        assert_eq!(r.store.unique_beacons(), 12);
    }

    /// An unacked binary session through the reactor machine: no ack
    /// bytes, full conservation.
    #[test]
    fn plain_binary_session_conserves() {
        let beacons: Vec<Beacon> = (1..=20).map(|id| beacon(id, 0)).collect();
        let stream = encode_frames(&beacons).unwrap();
        let chunks: Vec<Vec<u8>> = stream.chunks(13).map(|c| c.to_vec()).collect();
        let r = rig();
        let acks = reactor_chunks(
            Arc::clone(&r.cfg),
            Arc::clone(&r.stats),
            r.service.inlet(),
            Arc::clone(&r.shutdown),
            &chunks,
            64,
        );
        let ingest = r.service.stats_arc().snapshot();
        r.service.shutdown();
        assert!(acks.is_empty());
        let snap = r.stats.snapshot();
        assert_eq!(snap.frames_decoded, 20, "{snap:?}");
        assert_eq!(snap.acked_connections, 0);
        assert_eq!(ingest.beacons + ingest.shed_beacons, 20);
        assert_eq!(r.store.unique_beacons(), 20);
    }

    /// The idle clock starts at admission and refreshes on data.
    #[test]
    fn conn_state_idle_clock_tracks_last_data() {
        let r = rig();
        let ctx = ConnCtx {
            cfg: Arc::clone(&r.cfg),
            stats: Arc::clone(&r.stats),
            inlet: r.service.inlet(),
            shutdown: Arc::clone(&r.shutdown),
            obs: crate::connection::ConnObs::disabled(),
        };
        let chunks = vec![encode_frames(&[beacon(1, 0)]).unwrap()];
        let mut io = ScriptedIo::new(&chunks, 64);
        let mut state = ConnState::new();
        std::thread::sleep(Duration::from_millis(15));
        assert!(state.idle_for() >= Duration::from_millis(10));
        let mut scratch = vec![0u8; 4096];
        assert_eq!(
            state.on_readable(&mut io, &ctx, &mut scratch, 1).unwrap(),
            ReadOutcome::Open
        );
        assert!(
            state.idle_for() < Duration::from_millis(10),
            "receiving a chunk must reset the idle clock"
        );
        state.finish(&mut io, &ctx);
        r.service.shutdown();
    }

    #[test]
    fn sweep_cadence_is_bounded() {
        let cfg = CollectorConfig::default(); // 30s timeout, 10ms poll
        assert_eq!(sweep_cadence(&cfg), Duration::from_secs(1));
        let quick = CollectorConfig {
            read_timeout: Duration::from_millis(20),
            poll_interval: Duration::from_millis(10),
            ..CollectorConfig::default()
        };
        assert_eq!(sweep_cadence(&quick), Duration::from_millis(10));
    }
}
