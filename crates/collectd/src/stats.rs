//! Ops counters for the daemon, exposed uniformly with the ingestion
//! service's [`qtag_server::IngestStats`].
//!
//! Both stats blocks are declared through `qtag_obs::counters!`, so
//! the atomic struct, its serializable snapshot twin, and the registry
//! hookup come from one definition each — the collector's here, the
//! ingest service's in `qtag-server` (re-exported below so callers
//! keep a single import surface).

use qtag_server::IngestStatsSnapshot;
use serde::Serialize;

pub use qtag_server::{IngestMetrics, IngestStats};

qtag_obs::counters! {
    /// Live counters maintained by the acceptor and connection
    /// threads. All counters are monotone except `connections_active`
    /// (a gauge). Exported through a registry under the
    /// `qtag_collectd` prefix via [`CollectorStats::register`].
    pub struct CollectorStats / CollectorStatsSnapshot {
        connections_accepted: counter("Connections accepted and handed to a reader thread."),
        connections_active: gauge("Currently served connections."),
        connections_rejected: counter("Connections refused because max_connections was reached."),
        connections_timed_out: counter("Connections dropped after exhausting their read-timeout budget."),
        bytes_read: counter("Raw bytes read off all sockets."),
        frames_decoded: counter("Beacons successfully decoded off sockets (binary frames plus JSON lines), before the inlet accept/shed decision."),
        corrupt_frames: counter("Frames that failed verification: binary frames with an honest header but a bad payload, undecodable JSON lines, and JSON lines over the length cap. Exactly one count per damaged frame."),
        resync_bytes: counter("Noise bytes discarded while resynchronising binary streams (single-byte skips only; corrupt frames are accounted in corrupt_frame_bytes)."),
        corrupt_frame_bytes: counter("Bytes discarded as whole corrupt binary frames (header plus payload of each frame counted in corrupt_frames)."),
        acked_connections: counter("Connections that opted into the acked binary protocol by leading with the ACK_HELLO byte."),
        acks_sent: counter("Per-frame acknowledgements written back to acked clients (one per inlet-accepted frame, including re-acked duplicates)."),
        ack_flushes: counter("Coalesced ack writes: each is one write_all carrying every ack generated during one read iteration. The amortisation ratio is acks_sent / ack_flushes."),
        accept_errors: counter("accept(2) failures other than an empty backlog (EMFILE/ENFILE fd exhaustion, ECONNABORTED, ...). Each earns a backoff sleep instead of a hot respin; sustained growth means the daemon is shedding accepts under fd pressure."),
        ack_backpressure_pauses: counter("Reactor connections whose reads were paused because the pending-ack write buffer exceeded ack_buffer_cap (a client reading its acks too slowly); each pause-resume cycle counts once."),
    }
}

/// The daemon's full ops surface: its own counters plus the embedded
/// ingestion service's, in one serializable value. This is what the
/// `collectd` binary prints and what the conservation check consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct OpsSnapshot {
    /// Daemon-side counters (sockets, framing).
    pub collector: CollectorStatsSnapshot,
    /// Ingestion-side counters (applied beacons, shed beacons).
    pub ingest: IngestStatsSnapshot,
}

impl OpsSnapshot {
    /// The conservation identity the load generator verifies: every
    /// beacon fully written by clients is either applied, counted
    /// corrupt, counted shed, or (only when a hand-off races the
    /// daemon's shutdown) counted rejected — nothing vanishes. In a
    /// graceful run `rejected_after_shutdown` is zero.
    pub fn conserves(&self, beacons_sent: u64) -> bool {
        beacons_sent
            == self.ingest.beacons
                + self.collector.corrupt_frames
                + self.ingest.shed_beacons
                + self.ingest.rejected_after_shutdown
    }

    /// Internal consistency: every decoded frame was either accepted
    /// by the inlet, shed at it, or rejected after shutdown.
    pub fn decode_accounted(&self) -> bool {
        self.collector.frames_decoded
            == self.ingest.beacons + self.ingest.shed_beacons + self.ingest.rejected_after_shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::Ordering;

    #[test]
    fn snapshot_serializes_with_both_layers() {
        let stats = CollectorStats::default();
        stats.frames_decoded.fetch_add(3, Ordering::Relaxed);
        let ops = OpsSnapshot {
            collector: stats.snapshot(),
            ingest: qtag_server::IngestStats::default().snapshot(),
        };
        let json = serde_json::to_string(&ops).unwrap();
        assert!(json.contains("\"collector\":{"), "{json}");
        assert!(json.contains("\"frames_decoded\":3"), "{json}");
        assert!(json.contains("\"ingest\":{"), "{json}");
        assert!(json.contains("\"shed_beacons\":0"), "{json}");
    }

    #[test]
    fn conservation_identity() {
        let mut ops = OpsSnapshot {
            collector: CollectorStats::default().snapshot(),
            ingest: qtag_server::IngestStats::default().snapshot(),
        };
        ops.ingest.beacons = 90;
        ops.collector.corrupt_frames = 7;
        ops.ingest.shed_beacons = 3;
        ops.collector.frames_decoded = 93;
        assert!(ops.conserves(100));
        assert!(!ops.conserves(99));
        assert!(ops.decode_accounted());
    }

    /// A hand-off racing shutdown is accounted distinctly from
    /// overload shedding, and the identities still balance.
    #[test]
    fn conservation_covers_shutdown_rejections() {
        let mut ops = OpsSnapshot {
            collector: CollectorStats::default().snapshot(),
            ingest: qtag_server::IngestStats::default().snapshot(),
        };
        ops.ingest.beacons = 90;
        ops.collector.corrupt_frames = 5;
        ops.ingest.shed_beacons = 3;
        ops.ingest.rejected_after_shutdown = 2;
        ops.collector.frames_decoded = 95;
        assert!(ops.conserves(100));
        assert!(ops.decode_accounted());
        // A rejection is NOT a shed: moving the count breaks nothing
        // only if both terms are present in the identity.
        ops.ingest.rejected_after_shutdown = 0;
        assert!(!ops.conserves(100));
        assert!(!ops.decode_accounted());
    }

    /// Both stats blocks register under their prefixes and read the
    /// same cells the legacy snapshots read.
    #[test]
    fn registry_mirrors_snapshots() {
        use crate::sync::Arc;
        let registry = qtag_obs::Registry::new();
        let collector = Arc::new(CollectorStats::default());
        let ingest = Arc::new(IngestStats::default());
        collector.frames_decoded.fetch_add(9, Ordering::Relaxed);
        collector.connections_active.fetch_add(2, Ordering::Relaxed);
        ingest.beacons.fetch_add(8, Ordering::Relaxed);
        collector.register(&registry, "qtag_collectd");
        ingest.register(&registry, "qtag_ingest");
        assert_eq!(registry.get("qtag_collectd_frames_decoded_total"), Some(9));
        assert_eq!(registry.get("qtag_collectd_connections_active"), Some(2));
        assert_eq!(registry.get("qtag_ingest_beacons_total"), Some(8));
        assert_eq!(
            registry.get("qtag_collectd_frames_decoded_total"),
            Some(collector.snapshot().frames_decoded)
        );
    }
}
