//! Ops counters for the daemon, exposed uniformly with the ingestion
//! service's [`qtag_server::IngestStats`].

use crate::sync::atomic::{AtomicU64, Ordering};
use qtag_server::IngestStatsSnapshot;
use serde::Serialize;

/// Live counters maintained by the acceptor and connection threads.
/// All counters are monotone except `connections_active` (a gauge).
#[derive(Debug, Default)]
pub struct CollectorStats {
    /// Connections accepted and handed to a reader thread.
    pub connections_accepted: AtomicU64,
    /// Currently served connections (gauge).
    pub connections_active: AtomicU64,
    /// Connections refused because `max_connections` was reached.
    pub connections_rejected: AtomicU64,
    /// Connections dropped after exhausting their read-timeout budget.
    pub connections_timed_out: AtomicU64,
    /// Raw bytes read off all sockets.
    pub bytes_read: AtomicU64,
    /// Beacons successfully decoded off sockets (binary frames plus
    /// JSON lines), before the inlet accept/shed decision.
    pub frames_decoded: AtomicU64,
    /// Frames that failed verification: binary frames with an honest
    /// header but a bad payload, undecodable JSON lines, and JSON
    /// lines over the length cap. Exactly one count per damaged frame.
    pub corrupt_frames: AtomicU64,
    /// Noise bytes discarded while resynchronising binary streams
    /// (single-byte skips only; corrupt frames are accounted in
    /// `corrupt_frame_bytes`).
    pub resync_bytes: AtomicU64,
    /// Bytes discarded as whole corrupt binary frames (header plus
    /// payload of each frame counted in `corrupt_frames`).
    pub corrupt_frame_bytes: AtomicU64,
    /// Connections that opted into the acked binary protocol by
    /// leading with the `ACK_HELLO` byte.
    pub acked_connections: AtomicU64,
    /// Per-frame acknowledgements written back to acked clients (one
    /// per inlet-accepted frame, including re-acked duplicates).
    pub acks_sent: AtomicU64,
    /// Coalesced ack writes: each is one `write_all` carrying every
    /// ack generated during one read iteration. The amortisation
    /// ratio is `acks_sent / ack_flushes`.
    pub ack_flushes: AtomicU64,
}

impl CollectorStats {
    /// Point-in-time copy (each counter atomic; the set is not a
    /// transaction).
    pub fn snapshot(&self) -> CollectorStatsSnapshot {
        CollectorStatsSnapshot {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            connections_timed_out: self.connections_timed_out.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            frames_decoded: self.frames_decoded.load(Ordering::Relaxed),
            corrupt_frames: self.corrupt_frames.load(Ordering::Relaxed),
            resync_bytes: self.resync_bytes.load(Ordering::Relaxed),
            corrupt_frame_bytes: self.corrupt_frame_bytes.load(Ordering::Relaxed),
            acked_connections: self.acked_connections.load(Ordering::Relaxed),
            acks_sent: self.acks_sent.load(Ordering::Relaxed),
            ack_flushes: self.ack_flushes.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value form of [`CollectorStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CollectorStatsSnapshot {
    /// Connections accepted and handed to a reader thread.
    pub connections_accepted: u64,
    /// Currently served connections at snapshot time.
    pub connections_active: u64,
    /// Connections refused because `max_connections` was reached.
    pub connections_rejected: u64,
    /// Connections dropped after exhausting their read-timeout budget.
    pub connections_timed_out: u64,
    /// Raw bytes read off all sockets.
    pub bytes_read: u64,
    /// Beacons successfully decoded off sockets.
    pub frames_decoded: u64,
    /// Damaged frames (one count each).
    pub corrupt_frames: u64,
    /// Noise bytes discarded during binary resynchronisation
    /// (excludes corrupt-frame bytes).
    pub resync_bytes: u64,
    /// Bytes discarded as whole corrupt binary frames.
    pub corrupt_frame_bytes: u64,
    /// Connections that opted into the acked binary protocol.
    pub acked_connections: u64,
    /// Per-frame acknowledgements written back to acked clients.
    pub acks_sent: u64,
    /// Coalesced ack writes (one `write_all` per read iteration).
    pub ack_flushes: u64,
}

/// The daemon's full ops surface: its own counters plus the embedded
/// ingestion service's, in one serializable value. This is what the
/// `collectd` binary prints and what the conservation check consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct OpsSnapshot {
    /// Daemon-side counters (sockets, framing).
    pub collector: CollectorStatsSnapshot,
    /// Ingestion-side counters (applied beacons, shed beacons).
    pub ingest: IngestStatsSnapshot,
}

impl OpsSnapshot {
    /// The conservation identity the load generator verifies: every
    /// beacon fully written by clients is either applied, counted
    /// corrupt, counted shed, or (only when a hand-off races the
    /// daemon's shutdown) counted rejected — nothing vanishes. In a
    /// graceful run `rejected_after_shutdown` is zero.
    pub fn conserves(&self, beacons_sent: u64) -> bool {
        beacons_sent
            == self.ingest.beacons
                + self.collector.corrupt_frames
                + self.ingest.shed_beacons
                + self.ingest.rejected_after_shutdown
    }

    /// Internal consistency: every decoded frame was either accepted
    /// by the inlet, shed at it, or rejected after shutdown.
    pub fn decode_accounted(&self) -> bool {
        self.collector.frames_decoded
            == self.ingest.beacons + self.ingest.shed_beacons + self.ingest.rejected_after_shutdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_serializes_with_both_layers() {
        let stats = CollectorStats::default();
        stats.frames_decoded.fetch_add(3, Ordering::Relaxed);
        let ops = OpsSnapshot {
            collector: stats.snapshot(),
            ingest: qtag_server::IngestStats::default().snapshot(),
        };
        let json = serde_json::to_string(&ops).unwrap();
        assert!(json.contains("\"collector\":{"), "{json}");
        assert!(json.contains("\"frames_decoded\":3"), "{json}");
        assert!(json.contains("\"ingest\":{"), "{json}");
        assert!(json.contains("\"shed_beacons\":0"), "{json}");
    }

    #[test]
    fn conservation_identity() {
        let mut ops = OpsSnapshot {
            collector: CollectorStats::default().snapshot(),
            ingest: qtag_server::IngestStats::default().snapshot(),
        };
        ops.ingest.beacons = 90;
        ops.collector.corrupt_frames = 7;
        ops.ingest.shed_beacons = 3;
        ops.collector.frames_decoded = 93;
        assert!(ops.conserves(100));
        assert!(!ops.conserves(99));
        assert!(ops.decode_accounted());
    }

    /// A hand-off racing shutdown is accounted distinctly from
    /// overload shedding, and the identities still balance.
    #[test]
    fn conservation_covers_shutdown_rejections() {
        let mut ops = OpsSnapshot {
            collector: CollectorStats::default().snapshot(),
            ingest: qtag_server::IngestStats::default().snapshot(),
        };
        ops.ingest.beacons = 90;
        ops.collector.corrupt_frames = 5;
        ops.ingest.shed_beacons = 3;
        ops.ingest.rejected_after_shutdown = 2;
        ops.collector.frames_decoded = 95;
        assert!(ops.conserves(100));
        assert!(ops.decode_accounted());
        // A rejection is NOT a shed: moving the count breaks nothing
        // only if both terms are present in the identity.
        ops.ingest.rejected_after_shutdown = 0;
        assert!(!ops.conserves(100));
        assert!(!ops.decode_accounted());
    }
}
