//! Per-connection protocol engine: sniffing, decoding, batching,
//! ack generation — shared verbatim by the thread-per-connection
//! reader ([`serve`]) and the reactor's connection state machines
//! (`crate::reactor`), so both modes produce bit-identical accounting
//! from the same byte schedules.

use crate::config::CollectorConfig;
use crate::stats::CollectorStats;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::time::Instant;
use crate::sync::Arc;
use qtag_obs::{Stage, TraceEvent, TraceRing};
use qtag_server::BeaconInlet;
use qtag_wire::framing::FrameEvent;
use qtag_wire::sender::{encode_ack, AckKey, ACK_HELLO};
use qtag_wire::{json, Beacon, FrameDecoder};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-connection observability: the shared trace ring, the daemon's
/// span epoch, and this connection's correlation id. When `trace` is
/// `None` the span helpers never read the clock, so the socket-free
/// model driver stays deterministic.
#[derive(Clone)]
pub(crate) struct ConnObs {
    pub(crate) trace: Option<Arc<TraceRing>>,
    pub(crate) epoch: Instant,
    pub(crate) conn_id: u64,
}

impl ConnObs {
    /// An observability context that records nothing.
    pub(crate) fn disabled() -> ConnObs {
        ConnObs {
            trace: None,
            epoch: Instant::now(),
            conn_id: 0,
        }
    }

    /// Span-start timestamp (µs since the daemon's epoch), or 0 when
    /// tracing is off.
    fn now_us(&self) -> u64 {
        if self.trace.is_some() {
            self.epoch.elapsed().as_micros() as u64
        } else {
            0
        }
    }

    /// Records a completed span covering `items` items.
    fn span(&self, stage: Stage, start_us: u64, items: u64) {
        if let Some(ring) = &self.trace {
            let end_us = self.epoch.elapsed().as_micros() as u64;
            ring.record(TraceEvent {
                stage,
                key: self.conn_id,
                start_us,
                dur_us: end_us.saturating_sub(start_us),
                items,
            });
        }
    }
}

/// Everything a connection (thread or reactor slot) needs; one clone
/// per connection.
#[derive(Clone)]
pub(crate) struct ConnCtx {
    pub(crate) cfg: Arc<CollectorConfig>,
    pub(crate) stats: Arc<CollectorStats>,
    pub(crate) inlet: BeaconInlet,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) obs: ConnObs,
}

/// Wire protocol of one connection, fixed by its first byte.
enum Protocol {
    /// `qtag-wire` length-prefixed binary frames.
    Binary(FrameDecoder),
    /// Binary frames with per-frame acknowledgements written back
    /// (opted in by a leading [`ACK_HELLO`] byte). Only frames the
    /// inlet *accepts* are acked — a shed frame earns no ack, turning
    /// server backpressure into client retry pressure. Duplicates are
    /// re-acked: the store already holds the beacon, so the honest
    /// answer to "did you get it?" is yes.
    BinaryAcked(FrameDecoder),
    /// Newline-delimited JSON beacons.
    Json(JsonLines),
}

/// Accumulates JSON lines with a length cap.
struct JsonLines {
    line: Vec<u8>,
    /// The current line blew the cap; swallow until its newline and
    /// count the line corrupt once.
    overflowing: bool,
}

impl JsonLines {
    fn new() -> Self {
        JsonLines {
            line: Vec::new(),
            overflowing: false,
        }
    }

    fn feed(&mut self, bytes: &[u8], ctx: &ConnCtx, batch: &mut Vec<Beacon>) {
        for &b in bytes {
            if b == b'\n' {
                if self.overflowing {
                    ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
                    self.overflowing = false;
                } else {
                    self.finish_line(ctx, batch);
                }
                self.line.clear();
            } else if self.overflowing {
                // discard until newline
            } else if self.line.len() >= ctx.cfg.max_line_len {
                self.overflowing = true;
                self.line.clear();
            } else {
                self.line.push(b);
            }
        }
    }

    fn finish_line(&mut self, ctx: &ConnCtx, batch: &mut Vec<Beacon>) {
        let trimmed: &[u8] = {
            let mut s = self.line.as_slice();
            while let [b' ' | b'\t' | b'\r', rest @ ..] = s {
                s = rest;
            }
            while let [rest @ .., b' ' | b'\t' | b'\r'] = s {
                s = rest;
            }
            s
        };
        if trimmed.is_empty() {
            return; // blank keep-alive line, not a frame
        }
        let parsed = std::str::from_utf8(trimmed)
            .ok()
            .and_then(|s| json::decode(s).ok());
        match parsed {
            Some(beacon) => {
                ctx.stats.frames_decoded.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
                batch.push(beacon);
            }
            None => {
                ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
            }
        }
    }

    /// End-of-stream tail handling: a complete JSON beacon whose peer
    /// closed without a trailing `\n` is still a fully-sent beacon —
    /// parse and account it exactly like a newline-terminated line
    /// (applied if valid, corrupt if garbage), instead of silently
    /// dropping it and breaking conservation for JSON peers.
    fn finish(&mut self, ctx: &ConnCtx, batch: &mut Vec<Beacon>) {
        if self.overflowing {
            // The overlong line was already a damaged frame; EOF just
            // ends it without its newline.
            ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
            self.overflowing = false;
        } else {
            self.finish_line(ctx, batch);
        }
        self.line.clear();
    }
}

/// Drains decoded events into `batch` (corrupt frames are counted and
/// dropped here). The caller hands the whole batch to the inlet once
/// per read iteration — one channel operation per shard touched,
/// instead of one per frame.
fn drain_binary(dec: &mut FrameDecoder, ctx: &ConnCtx, batch: &mut Vec<Beacon>) {
    while let Some(ev) = dec.next_event() {
        match ev {
            FrameEvent::Beacon(b) => {
                ctx.stats.frames_decoded.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
                batch.push(b);
            }
            FrameEvent::Corrupt(_) => {
                ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
            }
        }
    }
}

/// Offers one read iteration's decoded beacons to the inlet as a
/// batch. When `acks` is `Some`, each inlet-*accepted* beacon appends
/// one encoded ack record; shed frames append nothing (the client
/// will retry them). The batch buffer is cleared for reuse.
fn offer_collected(ctx: &ConnCtx, batch: &mut Vec<Beacon>, acks: Option<&mut Vec<u8>>) {
    if batch.is_empty() {
        return;
    }
    let items = batch.len() as u64;
    let start_us = ctx.obs.now_us();
    match acks {
        Some(out) => {
            ctx.inlet
                .offer_batch(batch, |b| encode_ack(AckKey::from(b), out));
        }
        None => {
            ctx.inlet.offer_batch(batch, |_| {});
        }
    }
    batch.clear();
    ctx.obs.span(Stage::Inlet, start_us, items);
}

/// End-of-stream decoder accounting shared by every driver: flushes
/// the decoder's remaining complete frames into `batch` and accounts
/// resync/corrupt byte totals.
fn finish_binary(dec: &mut FrameDecoder, ctx: &ConnCtx, batch: &mut Vec<Beacon>) {
    for ev in dec.finish() {
        match ev {
            FrameEvent::Beacon(b) => {
                ctx.stats.frames_decoded.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
                batch.push(b);
            }
            FrameEvent::Corrupt(_) => {
                ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
            }
        }
    }
    // ordering: monotone stats; exact reads only after join.
    ctx.stats
        .resync_bytes
        .fetch_add(dec.skipped_bytes(), Ordering::Relaxed);
    // ordering: monotone stat; exact reads only after join.
    ctx.stats
        .corrupt_frame_bytes
        .fetch_add(dec.corrupt_bytes(), Ordering::Relaxed);
}

/// The transport-agnostic half of a connection: protocol sniffing,
/// decoding, per-read batched inlet hand-off and ack generation. The
/// threaded reader wraps one in a blocking loop; the reactor holds one
/// per slab slot and feeds it whatever the readiness loop reads. Both
/// paths therefore account byte-identically — the equivalence the
/// `reactor_equivalence` property test pins.
pub(crate) struct ProtoEngine {
    proto: Option<Protocol>,
    batch: Vec<Beacon>,
}

impl ProtoEngine {
    pub(crate) fn new() -> ProtoEngine {
        ProtoEngine {
            proto: None,
            batch: Vec::new(),
        }
    }

    /// Whether the connection opted into the acked binary protocol
    /// (decided by its first byte; `false` until sniffed).
    pub(crate) fn acked(&self) -> bool {
        matches!(self.proto, Some(Protocol::BinaryAcked(_)))
    }

    /// Feeds one read's worth of bytes: sniffs the protocol on the
    /// first byte, decodes, counts corrupt frames, and offers every
    /// decoded beacon to the inlet in one batch. Ack records for
    /// inlet-accepted frames append to `acks` (acked protocol only);
    /// flushing them is the caller's transport-specific job.
    pub(crate) fn on_bytes(&mut self, bytes: &[u8], ctx: &ConnCtx, acks: &mut Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        // First byte fixes the protocol; the acked-binary hello byte
        // is consumed here, not fed to the decoder.
        let mut start = 0;
        let p = match self.proto.as_mut() {
            Some(p) => p,
            None => {
                let chosen = if bytes[0] == b'{' {
                    Protocol::Json(JsonLines::new())
                } else if bytes[0] == ACK_HELLO {
                    start = 1;
                    ctx.stats.acked_connections.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
                    Protocol::BinaryAcked(FrameDecoder::new())
                } else {
                    Protocol::Binary(FrameDecoder::new())
                };
                self.proto.insert(chosen)
            }
        };
        let decode_start_us = ctx.obs.now_us();
        match p {
            Protocol::Binary(dec) => {
                dec.extend(&bytes[start..]);
                drain_binary(dec, ctx, &mut self.batch);
                ctx.obs
                    .span(Stage::Decode, decode_start_us, self.batch.len() as u64);
                offer_collected(ctx, &mut self.batch, None);
            }
            Protocol::BinaryAcked(dec) => {
                dec.extend(&bytes[start..]);
                drain_binary(dec, ctx, &mut self.batch);
                ctx.obs
                    .span(Stage::Decode, decode_start_us, self.batch.len() as u64);
                offer_collected(ctx, &mut self.batch, Some(acks));
            }
            Protocol::Json(lines) => {
                lines.feed(&bytes[start..], ctx, &mut self.batch);
                ctx.obs
                    .span(Stage::Decode, decode_start_us, self.batch.len() as u64);
                offer_collected(ctx, &mut self.batch, None);
            }
        }
    }

    /// End-of-stream flush: a truncated binary tail frame stays
    /// buffered in the decoder (the sender never completed it — not
    /// corrupt, not applied); a JSON tail missing only its newline is
    /// parsed and accounted (see [`JsonLines::finish`]). Idempotent —
    /// a second call observes an empty engine and does nothing.
    pub(crate) fn finish(&mut self, ctx: &ConnCtx, acks: &mut Vec<u8>) {
        match self.proto.take() {
            Some(Protocol::Binary(mut dec)) => {
                finish_binary(&mut dec, ctx, &mut self.batch);
                offer_collected(ctx, &mut self.batch, None);
            }
            Some(Protocol::BinaryAcked(mut dec)) => {
                finish_binary(&mut dec, ctx, &mut self.batch);
                offer_collected(ctx, &mut self.batch, Some(acks));
            }
            Some(Protocol::Json(mut lines)) => {
                lines.finish(ctx, &mut self.batch);
                offer_collected(ctx, &mut self.batch, None);
            }
            None => {}
        }
    }
}

/// Writes pending ack records back to the client in a single
/// `write_all` — one syscall for every ack generated during one read
/// iteration. Returns `false` if the write fails — the connection is
/// then torn down; the client's ack timeouts will drive
/// retransmission over a fresh connection.
fn flush_acks(stream: &mut impl Write, acks: &mut Vec<u8>, ctx: &ConnCtx) -> bool {
    if acks.is_empty() {
        return true;
    }
    let n = (acks.len() / qtag_wire::sender::ACK_LEN) as u64;
    let start_us = ctx.obs.now_us();
    match stream.write_all(acks) {
        Ok(()) => {
            ctx.stats.acks_sent.fetch_add(n, Ordering::Relaxed); // ordering: stat, read after join
            ctx.stats.ack_flushes.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
            acks.clear();
            ctx.obs.span(Stage::Ack, start_us, n);
            true
        }
        Err(_) => false,
    }
}

/// The blocking-socket surface [`serve_stream`] needs, implemented by
/// `TcpStream` and by the test shims that inject `EINTR` and early
/// `WouldBlock` wakeups (the connection-lifecycle regression suite).
pub(crate) trait ConnStream: Read + Write {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()>;
}

impl ConnStream for TcpStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, dur)
    }
}

/// Serves one connection to completion over a blocking socket.
/// Returns when the peer closes, the read-timeout budget is
/// exhausted, or the daemon is shutting down and the socket has gone
/// quiet — always flushing whatever the decoder still holds so
/// in-flight frames are never dropped.
pub(crate) fn serve(stream: TcpStream, ctx: ConnCtx) {
    serve_stream(stream, ctx);
}

pub(crate) fn serve_stream(mut stream: impl ConnStream, ctx: ConnCtx) {
    // Poll-interval read timeout: bounds both idle detection
    // granularity and shutdown latency.
    let _ = stream.set_read_timeout(Some(ctx.cfg.poll_interval));
    let mut engine = ProtoEngine::new();
    let mut buf = vec![0u8; 16 * 1024];
    let mut acks: Vec<u8> = Vec::new();
    let mut write_timeout_set = false;
    // Idle budget measured against the facade clock from the last
    // byte received — NOT accumulated in poll_interval steps, which
    // over-counted whenever a timed read woke early (signal, spurious
    // wakeup) and skewed `connections_timed_out`.
    let mut last_data = Instant::now();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break, // orderly close: socket fully drained
            Ok(n) => {
                last_data = Instant::now();
                ctx.stats.bytes_read.fetch_add(n as u64, Ordering::Relaxed); // ordering: stat, read after join
                engine.on_bytes(&buf[..n], &ctx, &mut acks);
                if engine.acked() {
                    if !write_timeout_set {
                        // Bound ack writes to a stalled client so the
                        // reader thread cannot hang forever.
                        let _ = stream.set_write_timeout(Some(ctx.cfg.read_timeout));
                        write_timeout_set = true;
                    }
                    if !flush_acks(&mut stream, &mut acks, &ctx) {
                        break; // ack channel gone: force a retry cycle
                    }
                }
            }
            // A signal landing mid-read (EINTR) says nothing about
            // the connection — retry instead of tearing down a
            // healthy peer and forcing a full client retry cycle.
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // ordering: Acquire pairs with the Release store in
                // `Collector::stop` — reader threads that see the flag
                // also see everything the stopping thread published
                // before flipping it.
                if ctx.shutdown.load(Ordering::Acquire) {
                    // Draining for shutdown and the socket is quiet:
                    // nothing more will be waited for.
                    break;
                }
                if last_data.elapsed() >= ctx.cfg.read_timeout {
                    // ordering: monotone stat; exact reads only after join.
                    ctx.stats
                        .connections_timed_out
                        .fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            // Abrupt disconnect (reset mid-stream): everything already
            // read still gets flushed below.
            Err(_) => break,
        }
    }
    // End-of-stream flush, all protocols.
    let acked = engine.acked();
    engine.finish(&ctx, &mut acks);
    if acked {
        // Best-effort: the peer may already be gone; its ack timeouts
        // cover the loss.
        let _ = flush_acks(&mut stream, &mut acks, &ctx);
    }
}

/// Drives one binary-protocol session over in-memory byte chunks —
/// the real decode → drain → batched-inlet-offer → finish path of
/// [`serve`], minus the socket (whose blocking reads the qtag-check
/// scheduler cannot preempt). Each chunk plays one socket read.
/// Returns once the stream is fully drained and flushed, exactly like
/// a connection whose peer closed.
///
/// This exists solely as a model seam for `tests/check_models.rs` and
/// the reactor-equivalence property suite; it is not part of the
/// supported API.
#[doc(hidden)]
pub fn serve_binary_chunks(
    cfg: Arc<CollectorConfig>,
    stats: Arc<CollectorStats>,
    inlet: BeaconInlet,
    shutdown: Arc<AtomicBool>,
    chunks: &[Vec<u8>],
) {
    let ctx = ConnCtx {
        cfg,
        stats,
        inlet,
        shutdown,
        obs: ConnObs::disabled(),
    };
    let mut engine = ProtoEngine::new();
    let mut acks = Vec::new();
    for chunk in chunks {
        ctx.stats
            .bytes_read
            // ordering: monotone stat; exact reads only after join.
            .fetch_add(chunk.len() as u64, Ordering::Relaxed);
        engine.on_bytes(chunk, &ctx, &mut acks);
    }
    engine.finish(&ctx, &mut acks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Mutex;
    use qtag_server::{ImpressionStore, IngestConfig, IngestService, ShardedStore};
    use qtag_wire::framing::encode_frames;
    use qtag_wire::{AdFormat, BrowserKind, EventKind, OsKind, SiteType};
    use std::collections::VecDeque;

    fn beacon(id: u64, seq: u16) -> Beacon {
        Beacon {
            impression_id: id,
            campaign_id: 1,
            event: EventKind::InView,
            timestamp_us: 0,
            ad_format: AdFormat::Display,
            visible_fraction_milli: 1000,
            exposure_ms: 1000,
            os: OsKind::Windows10,
            browser: BrowserKind::Chrome,
            site_type: SiteType::Browser,
            seq,
        }
    }

    struct Rig {
        service: IngestService,
        store: ShardedStore,
        ctx: ConnCtx,
    }

    fn rig(cfg: CollectorConfig) -> Rig {
        let store = ShardedStore::from_single(Arc::new(Mutex::new(ImpressionStore::new())));
        for id in 1..=8u64 {
            store.record_served(qtag_server::ServedImpression {
                impression_id: id,
                campaign_id: 1,
                os: OsKind::Windows10,
                browser: BrowserKind::Chrome,
                site_type: SiteType::Browser,
                ad_format: AdFormat::Display,
            });
        }
        let service = IngestService::start_sharded(
            store.clone(),
            IngestConfig {
                workers: 1,
                batch: 8,
                inlet_capacity: 64,
                metrics: None,
                journal: None,
            },
        );
        let ctx = ConnCtx {
            cfg: Arc::new(cfg),
            stats: Arc::new(CollectorStats::default()),
            inlet: service.inlet(),
            shutdown: Arc::new(AtomicBool::new(false)),
            obs: ConnObs::disabled(),
        };
        Rig {
            service,
            store,
            ctx,
        }
    }

    /// One scripted read result for the shim stream.
    enum Step {
        Data(Vec<u8>),
        Err(io::ErrorKind),
        Eof,
    }

    /// A scripted [`ConnStream`]: each `read` plays the next step,
    /// writes are swallowed. Lets the regression tests inject `EINTR`
    /// and early `WouldBlock` wakeups that a real socket cannot
    /// produce deterministically.
    struct ShimStream {
        steps: VecDeque<Step>,
    }

    impl ShimStream {
        fn new(steps: Vec<Step>) -> Self {
            ShimStream {
                steps: steps.into(),
            }
        }
    }

    impl Read for ShimStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.steps.pop_front() {
                Some(Step::Data(bytes)) => {
                    assert!(bytes.len() <= buf.len(), "script chunk fits the read buf");
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Some(Step::Err(kind)) => Err(io::Error::from(kind)),
                Some(Step::Eof) | None => Ok(0),
            }
        }
    }

    impl Write for ShimStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    impl ConnStream for ShimStream {
        fn set_read_timeout(&self, _dur: Option<Duration>) -> io::Result<()> {
            Ok(())
        }

        fn set_write_timeout(&self, _dur: Option<Duration>) -> io::Result<()> {
            Ok(())
        }
    }

    /// Regression (EINTR teardown): an `Interrupted` read used to hit
    /// the catch-all `Err(_) => break` and tear down a healthy
    /// connection, losing everything the peer sent afterwards. The
    /// read must be retried: every beacon around the signal is
    /// applied.
    #[test]
    fn eintr_mid_stream_is_retried_not_fatal() {
        let r = rig(CollectorConfig::default());
        let first = encode_frames(&[beacon(1, 0)]).unwrap();
        let second = encode_frames(&[beacon(2, 0)]).unwrap();
        let stream = ShimStream::new(vec![
            Step::Data(first),
            Step::Err(io::ErrorKind::Interrupted),
            Step::Err(io::ErrorKind::Interrupted),
            Step::Data(second),
            Step::Eof,
        ]);
        serve_stream(stream, r.ctx.clone());
        r.service.shutdown();
        let snap = r.ctx.stats.snapshot();
        assert_eq!(
            snap.frames_decoded, 2,
            "the beacon after the EINTR must not be lost: {snap:?}"
        );
        assert_eq!(snap.connections_timed_out, 0);
        assert_eq!(r.store.unique_beacons(), 2);
    }

    /// Regression (idle-clock drift): the idle budget used to be
    /// accumulated as `poll_interval` per `WouldBlock` wakeup, so a
    /// storm of early wakeups (here: 500 back-to-back, far more than
    /// read_timeout / poll_interval) timed out a connection that had
    /// been idle for almost no wall time. Measured against the facade
    /// clock, the connection survives and its final beacon lands.
    #[test]
    fn early_wakeups_do_not_exhaust_the_idle_budget() {
        let cfg = CollectorConfig {
            read_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(100),
            ..CollectorConfig::default()
        };
        let r = rig(cfg);
        let mut steps = vec![Step::Data(encode_frames(&[beacon(1, 0)]).unwrap())];
        for _ in 0..500 {
            steps.push(Step::Err(io::ErrorKind::WouldBlock));
        }
        steps.push(Step::Data(encode_frames(&[beacon(2, 0)]).unwrap()));
        steps.push(Step::Eof);
        let stream = ShimStream::new(steps);
        serve_stream(stream, r.ctx.clone());
        r.service.shutdown();
        let snap = r.ctx.stats.snapshot();
        assert_eq!(
            snap.connections_timed_out, 0,
            "early wakeups must not count as idle time: {snap:?}"
        );
        assert_eq!(snap.frames_decoded, 2, "{snap:?}");
        assert_eq!(r.store.unique_beacons(), 2);
    }

    /// A genuinely idle shim stream still times out: the wall-accurate
    /// clock keeps the timeout working, it only stops over-counting.
    #[test]
    fn genuine_idle_still_times_out() {
        let cfg = CollectorConfig {
            read_timeout: Duration::from_millis(20),
            poll_interval: Duration::from_millis(1),
            ..CollectorConfig::default()
        };
        let r = rig(cfg);
        /// A stream that sleeps `poll_interval`-ish per read and
        /// returns `WouldBlock`, like a real timed-out socket read.
        struct IdleStream;
        impl Read for IdleStream {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                std::thread::sleep(Duration::from_millis(2));
                Err(io::Error::from(io::ErrorKind::WouldBlock))
            }
        }
        impl Write for IdleStream {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        impl ConnStream for IdleStream {
            fn set_read_timeout(&self, _d: Option<Duration>) -> io::Result<()> {
                Ok(())
            }
            fn set_write_timeout(&self, _d: Option<Duration>) -> io::Result<()> {
                Ok(())
            }
        }
        serve_stream(IdleStream, r.ctx.clone());
        r.service.shutdown();
        let snap = r.ctx.stats.snapshot();
        assert_eq!(snap.connections_timed_out, 1, "{snap:?}");
    }

    /// Regression (unterminated JSON tail): a complete, valid JSON
    /// beacon whose stream ends without a trailing newline used to be
    /// dropped with no accounting — the sender counted it sent, the
    /// daemon counted nothing, and conservation broke for JSON peers.
    /// It must be applied; a garbage tail must count corrupt.
    #[test]
    fn json_tail_without_newline_is_applied() {
        let r = rig(CollectorConfig::default());
        let mut payload = json::encode(&beacon(1, 0)).unwrap();
        payload.push('\n');
        payload.push_str(&json::encode(&beacon(2, 0)).unwrap());
        // No trailing newline: the peer closed right after the body.
        let stream = ShimStream::new(vec![Step::Data(payload.into_bytes()), Step::Eof]);
        serve_stream(stream, r.ctx.clone());
        r.service.shutdown();
        let snap = r.ctx.stats.snapshot();
        assert_eq!(
            snap.frames_decoded, 2,
            "the unterminated tail beacon must be applied: {snap:?}"
        );
        assert_eq!(snap.corrupt_frames, 0);
        assert_eq!(r.store.unique_beacons(), 2);
    }

    #[test]
    fn json_garbage_tail_counts_corrupt() {
        let r = rig(CollectorConfig::default());
        let mut payload = json::encode(&beacon(1, 0)).unwrap();
        payload.push('\n');
        payload.push_str("{\"truncated\": tra"); // cut mid-token, no newline
        let stream = ShimStream::new(vec![Step::Data(payload.into_bytes()), Step::Eof]);
        serve_stream(stream, r.ctx.clone());
        r.service.shutdown();
        let snap = r.ctx.stats.snapshot();
        assert_eq!(snap.frames_decoded, 1, "{snap:?}");
        assert_eq!(
            snap.corrupt_frames, 1,
            "a garbage tail is a damaged frame, not a silent drop: {snap:?}"
        );
    }

    /// Whitespace-only and empty tails stay non-frames (keep-alive
    /// padding), exactly like their newline-terminated form.
    #[test]
    fn json_blank_tail_is_not_a_frame() {
        let r = rig(CollectorConfig::default());
        let mut payload = json::encode(&beacon(1, 0)).unwrap();
        payload.push('\n');
        payload.push_str("  \t ");
        let stream = ShimStream::new(vec![Step::Data(payload.into_bytes()), Step::Eof]);
        serve_stream(stream, r.ctx.clone());
        r.service.shutdown();
        let snap = r.ctx.stats.snapshot();
        assert_eq!(snap.frames_decoded, 1, "{snap:?}");
        assert_eq!(snap.corrupt_frames, 0, "{snap:?}");
    }

    /// An overlong JSON line cut off by EOF (cap blown, newline never
    /// arrived) is still exactly one corrupt frame.
    #[test]
    fn json_overflowing_tail_counts_corrupt_once() {
        let r = rig(CollectorConfig {
            max_line_len: 16,
            ..CollectorConfig::default()
        });
        let payload = b"{\"way\": \"over the sixteen byte cap".to_vec();
        let stream = ShimStream::new(vec![Step::Data(payload), Step::Eof]);
        serve_stream(stream, r.ctx.clone());
        r.service.shutdown();
        let snap = r.ctx.stats.snapshot();
        assert_eq!(snap.corrupt_frames, 1, "{snap:?}");
        assert_eq!(snap.frames_decoded, 0, "{snap:?}");
    }
}
