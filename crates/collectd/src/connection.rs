//! Per-connection reader: protocol sniffing, decoding, hand-off.

use crate::config::CollectorConfig;
use crate::stats::CollectorStats;
use qtag_server::BeaconInlet;
use qtag_wire::framing::FrameEvent;
use qtag_wire::{json, FrameDecoder};
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Everything a connection thread needs; one clone per connection.
#[derive(Clone)]
pub(crate) struct ConnCtx {
    pub(crate) cfg: Arc<CollectorConfig>,
    pub(crate) stats: Arc<CollectorStats>,
    pub(crate) inlet: BeaconInlet,
    pub(crate) shutdown: Arc<AtomicBool>,
}

/// Wire protocol of one connection, fixed by its first byte.
enum Protocol {
    /// `qtag-wire` length-prefixed binary frames.
    Binary(FrameDecoder),
    /// Newline-delimited JSON beacons.
    Json(JsonLines),
}

/// Accumulates JSON lines with a length cap.
struct JsonLines {
    line: Vec<u8>,
    /// The current line blew the cap; swallow until its newline and
    /// count the line corrupt once.
    overflowing: bool,
}

impl JsonLines {
    fn new() -> Self {
        JsonLines {
            line: Vec::new(),
            overflowing: false,
        }
    }

    fn feed(&mut self, bytes: &[u8], ctx: &ConnCtx) {
        for &b in bytes {
            if b == b'\n' {
                if self.overflowing {
                    ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    self.overflowing = false;
                } else {
                    self.finish_line(ctx);
                }
                self.line.clear();
            } else if self.overflowing {
                // discard until newline
            } else if self.line.len() >= ctx.cfg.max_line_len {
                self.overflowing = true;
                self.line.clear();
            } else {
                self.line.push(b);
            }
        }
    }

    fn finish_line(&mut self, ctx: &ConnCtx) {
        let trimmed: &[u8] = {
            let mut s = self.line.as_slice();
            while let [b' ' | b'\t' | b'\r', rest @ ..] = s {
                s = rest;
            }
            while let [rest @ .., b' ' | b'\t' | b'\r'] = s {
                s = rest;
            }
            s
        };
        if trimmed.is_empty() {
            return; // blank keep-alive line, not a frame
        }
        let parsed = std::str::from_utf8(trimmed)
            .ok()
            .and_then(|s| json::decode(s).ok());
        match parsed {
            Some(beacon) => {
                ctx.stats.frames_decoded.fetch_add(1, Ordering::Relaxed);
                ctx.inlet.offer(beacon);
            }
            None => {
                ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn drain_binary(dec: &mut FrameDecoder, ctx: &ConnCtx) {
    while let Some(ev) = dec.next_event() {
        match ev {
            FrameEvent::Beacon(b) => {
                ctx.stats.frames_decoded.fetch_add(1, Ordering::Relaxed);
                ctx.inlet.offer(b);
            }
            FrameEvent::Corrupt(_) => {
                ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Serves one connection to completion. Returns when the peer closes,
/// the read-timeout budget is exhausted, or the daemon is shutting
/// down and the socket has gone quiet — always flushing whatever the
/// decoder still holds so in-flight frames are never dropped.
pub(crate) fn serve(stream: TcpStream, ctx: ConnCtx) {
    // Poll-interval read timeout: bounds both idle detection
    // granularity and shutdown latency.
    let _ = stream.set_read_timeout(Some(ctx.cfg.poll_interval));
    let mut stream = stream;
    let mut proto: Option<Protocol> = None;
    let mut buf = vec![0u8; 16 * 1024];
    let mut idle = Duration::ZERO;
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break, // orderly close: socket fully drained
            Ok(n) => {
                idle = Duration::ZERO;
                ctx.stats.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                let p = proto.get_or_insert_with(|| {
                    if buf[0] == b'{' {
                        Protocol::Json(JsonLines::new())
                    } else {
                        Protocol::Binary(FrameDecoder::new())
                    }
                });
                match p {
                    Protocol::Binary(dec) => {
                        dec.extend(&buf[..n]);
                        drain_binary(dec, &ctx);
                    }
                    Protocol::Json(lines) => lines.feed(&buf[..n], &ctx),
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if ctx.shutdown.load(Ordering::Relaxed) {
                    // Draining for shutdown and the socket is quiet:
                    // nothing more will be waited for.
                    break;
                }
                idle += ctx.cfg.poll_interval;
                if idle >= ctx.cfg.read_timeout {
                    ctx.stats
                        .connections_timed_out
                        .fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            // Abrupt disconnect (reset mid-stream): everything already
            // read still gets flushed below.
            Err(_) => break,
        }
    }
    // End-of-stream flush. A truncated binary tail frame stays
    // buffered in the decoder (the sender never completed it — not
    // corrupt, not applied); a partial JSON line is likewise dropped.
    if let Some(Protocol::Binary(mut dec)) = proto.take() {
        for ev in dec.finish() {
            match ev {
                FrameEvent::Beacon(b) => {
                    ctx.stats.frames_decoded.fetch_add(1, Ordering::Relaxed);
                    ctx.inlet.offer(b);
                }
                FrameEvent::Corrupt(_) => {
                    ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        ctx.stats
            .resync_bytes
            .fetch_add(dec.skipped_bytes(), Ordering::Relaxed);
        ctx.stats
            .corrupt_frame_bytes
            .fetch_add(dec.corrupt_bytes(), Ordering::Relaxed);
    }
}
