//! Per-connection reader: protocol sniffing, decoding, hand-off.

use crate::config::CollectorConfig;
use crate::stats::CollectorStats;
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::time::Instant;
use crate::sync::Arc;
use qtag_obs::{Stage, TraceEvent, TraceRing};
use qtag_server::BeaconInlet;
use qtag_wire::framing::FrameEvent;
use qtag_wire::sender::{encode_ack, AckKey, ACK_HELLO};
use qtag_wire::{json, Beacon, FrameDecoder};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Per-connection observability: the shared trace ring, the daemon's
/// span epoch, and this connection's correlation id. When `trace` is
/// `None` the span helpers never read the clock, so the socket-free
/// model driver stays deterministic.
#[derive(Clone)]
pub(crate) struct ConnObs {
    pub(crate) trace: Option<Arc<TraceRing>>,
    pub(crate) epoch: Instant,
    pub(crate) conn_id: u64,
}

impl ConnObs {
    /// An observability context that records nothing.
    pub(crate) fn disabled() -> ConnObs {
        ConnObs {
            trace: None,
            epoch: Instant::now(),
            conn_id: 0,
        }
    }

    /// Span-start timestamp (µs since the daemon's epoch), or 0 when
    /// tracing is off.
    fn now_us(&self) -> u64 {
        if self.trace.is_some() {
            self.epoch.elapsed().as_micros() as u64
        } else {
            0
        }
    }

    /// Records a completed span covering `items` items.
    fn span(&self, stage: Stage, start_us: u64, items: u64) {
        if let Some(ring) = &self.trace {
            let end_us = self.epoch.elapsed().as_micros() as u64;
            ring.record(TraceEvent {
                stage,
                key: self.conn_id,
                start_us,
                dur_us: end_us.saturating_sub(start_us),
                items,
            });
        }
    }
}

/// Everything a connection thread needs; one clone per connection.
#[derive(Clone)]
pub(crate) struct ConnCtx {
    pub(crate) cfg: Arc<CollectorConfig>,
    pub(crate) stats: Arc<CollectorStats>,
    pub(crate) inlet: BeaconInlet,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) obs: ConnObs,
}

/// Wire protocol of one connection, fixed by its first byte.
enum Protocol {
    /// `qtag-wire` length-prefixed binary frames.
    Binary(FrameDecoder),
    /// Binary frames with per-frame acknowledgements written back
    /// (opted in by a leading [`ACK_HELLO`] byte). Only frames the
    /// inlet *accepts* are acked — a shed frame earns no ack, turning
    /// server backpressure into client retry pressure. Duplicates are
    /// re-acked: the store already holds the beacon, so the honest
    /// answer to "did you get it?" is yes.
    BinaryAcked(FrameDecoder),
    /// Newline-delimited JSON beacons.
    Json(JsonLines),
}

/// Accumulates JSON lines with a length cap.
struct JsonLines {
    line: Vec<u8>,
    /// The current line blew the cap; swallow until its newline and
    /// count the line corrupt once.
    overflowing: bool,
}

impl JsonLines {
    fn new() -> Self {
        JsonLines {
            line: Vec::new(),
            overflowing: false,
        }
    }

    fn feed(&mut self, bytes: &[u8], ctx: &ConnCtx, batch: &mut Vec<Beacon>) {
        for &b in bytes {
            if b == b'\n' {
                if self.overflowing {
                    ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
                    self.overflowing = false;
                } else {
                    self.finish_line(ctx, batch);
                }
                self.line.clear();
            } else if self.overflowing {
                // discard until newline
            } else if self.line.len() >= ctx.cfg.max_line_len {
                self.overflowing = true;
                self.line.clear();
            } else {
                self.line.push(b);
            }
        }
    }

    fn finish_line(&mut self, ctx: &ConnCtx, batch: &mut Vec<Beacon>) {
        let trimmed: &[u8] = {
            let mut s = self.line.as_slice();
            while let [b' ' | b'\t' | b'\r', rest @ ..] = s {
                s = rest;
            }
            while let [rest @ .., b' ' | b'\t' | b'\r'] = s {
                s = rest;
            }
            s
        };
        if trimmed.is_empty() {
            return; // blank keep-alive line, not a frame
        }
        let parsed = std::str::from_utf8(trimmed)
            .ok()
            .and_then(|s| json::decode(s).ok());
        match parsed {
            Some(beacon) => {
                ctx.stats.frames_decoded.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
                batch.push(beacon);
            }
            None => {
                ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
            }
        }
    }
}

/// Drains decoded events into `batch` (corrupt frames are counted and
/// dropped here). The caller hands the whole batch to the inlet once
/// per read iteration — one channel operation per shard touched,
/// instead of one per frame.
fn drain_binary(dec: &mut FrameDecoder, ctx: &ConnCtx, batch: &mut Vec<Beacon>) {
    while let Some(ev) = dec.next_event() {
        match ev {
            FrameEvent::Beacon(b) => {
                ctx.stats.frames_decoded.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
                batch.push(b);
            }
            FrameEvent::Corrupt(_) => {
                ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
            }
        }
    }
}

/// Offers one read iteration's decoded beacons to the inlet as a
/// batch. When `acks` is `Some`, each inlet-*accepted* beacon appends
/// one encoded ack record; shed frames append nothing (the client
/// will retry them). The batch buffer is cleared for reuse.
fn offer_collected(ctx: &ConnCtx, batch: &mut Vec<Beacon>, acks: Option<&mut Vec<u8>>) {
    if batch.is_empty() {
        return;
    }
    let items = batch.len() as u64;
    let start_us = ctx.obs.now_us();
    match acks {
        Some(out) => {
            ctx.inlet
                .offer_batch(batch, |b| encode_ack(AckKey::from(b), out));
        }
        None => {
            ctx.inlet.offer_batch(batch, |_| {});
        }
    }
    batch.clear();
    ctx.obs.span(Stage::Inlet, start_us, items);
}

/// Writes pending ack records back to the client in a single
/// `write_all` — one syscall for every ack generated during one read
/// iteration. Returns `false` if the write fails — the connection is
/// then torn down; the client's ack timeouts will drive
/// retransmission over a fresh connection.
fn flush_acks(stream: &mut TcpStream, acks: &mut Vec<u8>, ctx: &ConnCtx) -> bool {
    if acks.is_empty() {
        return true;
    }
    let n = (acks.len() / qtag_wire::sender::ACK_LEN) as u64;
    let start_us = ctx.obs.now_us();
    match stream.write_all(acks) {
        Ok(()) => {
            ctx.stats.acks_sent.fetch_add(n, Ordering::Relaxed); // ordering: stat, read after join
            ctx.stats.ack_flushes.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
            acks.clear();
            ctx.obs.span(Stage::Ack, start_us, n);
            true
        }
        Err(_) => false,
    }
}

/// Serves one connection to completion. Returns when the peer closes,
/// the read-timeout budget is exhausted, or the daemon is shutting
/// down and the socket has gone quiet — always flushing whatever the
/// decoder still holds so in-flight frames are never dropped.
pub(crate) fn serve(stream: TcpStream, ctx: ConnCtx) {
    // Poll-interval read timeout: bounds both idle detection
    // granularity and shutdown latency.
    let _ = stream.set_read_timeout(Some(ctx.cfg.poll_interval));
    let mut stream = stream;
    let mut proto: Option<Protocol> = None;
    let mut buf = vec![0u8; 16 * 1024];
    let mut acks: Vec<u8> = Vec::new();
    // Reusable per-iteration batch: every beacon decoded from one
    // socket read is offered to the inlet in one batched hand-off.
    let mut batch: Vec<Beacon> = Vec::new();
    let mut idle = Duration::ZERO;
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break, // orderly close: socket fully drained
            Ok(n) => {
                idle = Duration::ZERO;
                ctx.stats.bytes_read.fetch_add(n as u64, Ordering::Relaxed); // ordering: stat, read after join
                                                                             // First chunk fixes the protocol; the acked-binary
                                                                             // hello byte is consumed here, not fed to the decoder.
                let mut start = 0;
                let p = match proto.as_mut() {
                    Some(p) => p,
                    None => {
                        let chosen = if buf[0] == b'{' {
                            Protocol::Json(JsonLines::new())
                        } else if buf[0] == ACK_HELLO {
                            start = 1;
                            ctx.stats.acked_connections.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
                                                                                         // Bound ack writes to a stalled client so
                                                                                         // the reader thread cannot hang forever.
                            let _ = stream.set_write_timeout(Some(ctx.cfg.read_timeout));
                            Protocol::BinaryAcked(FrameDecoder::new())
                        } else {
                            Protocol::Binary(FrameDecoder::new())
                        };
                        proto.insert(chosen)
                    }
                };
                let decode_start_us = ctx.obs.now_us();
                match p {
                    Protocol::Binary(dec) => {
                        dec.extend(&buf[start..n]);
                        drain_binary(dec, &ctx, &mut batch);
                        ctx.obs
                            .span(Stage::Decode, decode_start_us, batch.len() as u64);
                        offer_collected(&ctx, &mut batch, None);
                    }
                    Protocol::BinaryAcked(dec) => {
                        dec.extend(&buf[start..n]);
                        drain_binary(dec, &ctx, &mut batch);
                        ctx.obs
                            .span(Stage::Decode, decode_start_us, batch.len() as u64);
                        offer_collected(&ctx, &mut batch, Some(&mut acks));
                        if !flush_acks(&mut stream, &mut acks, &ctx) {
                            break; // ack channel gone: force a retry cycle
                        }
                    }
                    Protocol::Json(lines) => {
                        lines.feed(&buf[start..n], &ctx, &mut batch);
                        ctx.obs
                            .span(Stage::Decode, decode_start_us, batch.len() as u64);
                        offer_collected(&ctx, &mut batch, None);
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // ordering: Acquire pairs with the Release store in
                // `Collector::stop` — reader threads that see the flag
                // also see everything the stopping thread published
                // before flipping it.
                if ctx.shutdown.load(Ordering::Acquire) {
                    // Draining for shutdown and the socket is quiet:
                    // nothing more will be waited for.
                    break;
                }
                idle += ctx.cfg.poll_interval;
                if idle >= ctx.cfg.read_timeout {
                    // ordering: monotone stat; exact reads only after join.
                    ctx.stats
                        .connections_timed_out
                        .fetch_add(1, Ordering::Relaxed);
                    break;
                }
            }
            // Abrupt disconnect (reset mid-stream): everything already
            // read still gets flushed below.
            Err(_) => break,
        }
    }
    // End-of-stream flush. A truncated binary tail frame stays
    // buffered in the decoder (the sender never completed it — not
    // corrupt, not applied); a partial JSON line is likewise dropped.
    let (mut dec, acked) = match proto.take() {
        Some(Protocol::Binary(dec)) => (dec, false),
        Some(Protocol::BinaryAcked(dec)) => (dec, true),
        _ => return,
    };
    finish_binary(&mut dec, &ctx, &mut batch);
    offer_collected(&ctx, &mut batch, if acked { Some(&mut acks) } else { None });
    if acked {
        // Best-effort: the peer may already be gone; its ack timeouts
        // cover the loss.
        let _ = flush_acks(&mut stream, &mut acks, &ctx);
    }
}

/// End-of-stream decoder accounting shared by the socket path and the
/// socket-free model driver: flushes the decoder's remaining complete
/// frames into `batch` and accounts resync/corrupt byte totals.
fn finish_binary(dec: &mut FrameDecoder, ctx: &ConnCtx, batch: &mut Vec<Beacon>) {
    for ev in dec.finish() {
        match ev {
            FrameEvent::Beacon(b) => {
                ctx.stats.frames_decoded.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
                batch.push(b);
            }
            FrameEvent::Corrupt(_) => {
                ctx.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
            }
        }
    }
    // ordering: monotone stats; exact reads only after join.
    ctx.stats
        .resync_bytes
        .fetch_add(dec.skipped_bytes(), Ordering::Relaxed);
    // ordering: monotone stat; exact reads only after join.
    ctx.stats
        .corrupt_frame_bytes
        .fetch_add(dec.corrupt_bytes(), Ordering::Relaxed);
}

/// Drives one binary-protocol session over in-memory byte chunks —
/// the real decode → drain → batched-inlet-offer → finish path of
/// [`serve`], minus the socket (whose blocking reads the qtag-check
/// scheduler cannot preempt). Each chunk plays one socket read.
/// Returns once the stream is fully drained and flushed, exactly like
/// a connection whose peer closed.
///
/// This exists solely as a model seam for `tests/check_models.rs`;
/// it is not part of the supported API.
#[doc(hidden)]
pub fn serve_binary_chunks(
    cfg: Arc<CollectorConfig>,
    stats: Arc<CollectorStats>,
    inlet: BeaconInlet,
    shutdown: Arc<AtomicBool>,
    chunks: &[Vec<u8>],
) {
    let ctx = ConnCtx {
        cfg,
        stats,
        inlet,
        shutdown,
        obs: ConnObs::disabled(),
    };
    let mut dec = FrameDecoder::new();
    let mut batch: Vec<Beacon> = Vec::new();
    for chunk in chunks {
        ctx.stats
            .bytes_read
            // ordering: monotone stat; exact reads only after join.
            .fetch_add(chunk.len() as u64, Ordering::Relaxed);
        dec.extend(chunk);
        drain_binary(&mut dec, &ctx, &mut batch);
        offer_collected(&ctx, &mut batch, None);
    }
    finish_binary(&mut dec, &ctx, &mut batch);
    offer_collected(&ctx, &mut batch, None);
}
