//! Daemon tunables.

use std::time::Duration;

/// Configuration for [`crate::Collector`].
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Listen address, e.g. `127.0.0.1:4050`. Use port `0` to let the
    /// OS pick (tests do; read it back via
    /// [`crate::Collector::local_addr`]).
    pub bind: String,
    /// Hard cap on concurrently served connections; connections beyond
    /// it are accepted, counted as rejected, and immediately closed.
    pub max_connections: usize,
    /// How long a connection may stay silent before the daemon drops
    /// it. This is the per-connection read *budget*, enforced in
    /// [`CollectorConfig::poll_interval`] steps so shutdown stays
    /// responsive.
    pub read_timeout: Duration,
    /// Granularity of blocking waits (socket read timeout and the
    /// acceptor's idle sleep). Bounds shutdown latency per thread.
    pub poll_interval: Duration,
    /// Longest accepted JSON line (bytes, newline excluded). Overlong
    /// lines are discarded and counted as one corrupt frame each; the
    /// binary path is already bounded by the wire format's
    /// [`qtag_wire::framing::MAX_FRAME_LEN`].
    pub max_line_len: usize,
    /// Parser workers inside the embedded [`qtag_server::IngestService`]
    /// (they serve the chunk path; connection threads decode in-line
    /// and use the inlet, so 1 is normally enough).
    pub ingest_workers: usize,
    /// Capacity of each store shard's bounded batch channel between
    /// connection threads and that shard's applier, counted in
    /// *batches*. When full, beacons are shed and counted rather than
    /// stalling connection reads.
    pub inlet_capacity: usize,
    /// Maximum beacons per batch handed to a shard applier by the
    /// embedded ingestion service's parser workers (connection threads
    /// batch naturally — one hand-off per socket read).
    pub batch: usize,
    /// How long graceful shutdown keeps accepting from the OS backlog
    /// before closing the listener. Connections already queued when
    /// the shutdown flag flips are still served (so their buffered
    /// beacons are not stranded), but clients that keep connecting
    /// during shutdown cannot delay it past this grace window.
    pub drain_grace: Duration,
    /// Capacity of the daemon's trace-event ring (per-stage spans:
    /// decode → inlet → shard apply → ack). The ring overwrites its
    /// oldest events when full; it never blocks or allocates on the
    /// hot path.
    pub trace_capacity: usize,
    /// Serve connections on an epoll reactor (a few worker event
    /// loops, one non-blocking state machine per connection) instead
    /// of one blocking reader thread per connection. Identical wire
    /// protocol and accounting; the reactor is what lets one daemon
    /// hold tens of thousands of mostly-idle sockets.
    pub reactor: bool,
    /// Reactor event-loop threads. Connections are spread
    /// round-robin at accept time; each worker owns its connections
    /// for life (no migration, no cross-worker locking).
    pub reactor_workers: usize,
    /// Per-connection cap, in bytes, on acks buffered towards a slow
    /// acked client (reactor mode). Above the cap the connection's
    /// *reads* are paused until the client drains its ack backlog —
    /// backpressure flows to the sender instead of into daemon
    /// memory.
    pub ack_buffer_cap: usize,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            bind: "127.0.0.1:0".to_string(),
            max_connections: 256,
            read_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_millis(10),
            max_line_len: 1024,
            ingest_workers: 1,
            inlet_capacity: qtag_server::DEFAULT_INLET_CAPACITY,
            batch: qtag_server::DEFAULT_BATCH,
            drain_grace: Duration::from_millis(250),
            trace_capacity: 4096,
            reactor: false,
            reactor_workers: 2,
            ack_buffer_cap: 64 * 1024,
        }
    }
}
