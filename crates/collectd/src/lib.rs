//! `qtag-collectd`: the beacon-collector daemon.
//!
//! The paper's measurement pipeline ends at a collector that tags POST
//! their beacons to (§4). This crate is that collector as a real
//! network daemon: a TCP listener accepting the `qtag-wire`
//! length-prefixed binary protocol and the newline-delimited JSON
//! protocol on the same port, feeding decoded beacons into
//! [`qtag_server::IngestService`] through its bounded inlet.
//!
//! Two serving shapes share one protocol engine and one acceptor:
//!
//! - **Threaded** (default): the acceptor supervises one OS thread per
//!   connection with blocking reads-with-timeout — the simplest
//!   correct shape while connection counts are modest (no async
//!   runtime in the dependency tree).
//! - **Reactor** ([`CollectorConfig::reactor`]): a few epoll worker
//!   loops drive non-blocking per-connection state machines
//!   (`reactor.rs`), which is what lets one daemon hold tens of
//!   thousands of mostly-idle sockets without ten thousand stacks.
//!
//! Both modes decode through the same engine and account identically.
//! Every hand-off is a crossbeam channel; overload is shed at the
//! bounded inlet and *counted*, never silently dropped, so the
//! end-to-end conservation identity
//!
//! ```text
//! beacons sent == beacons applied + corrupt frames + shed beacons
//! ```
//!
//! is exact and checkable by the load generator in `qtag-bench`.
//!
//! Protocol sniffing: the first byte of a connection decides its
//! protocol for the whole connection — `{` means JSON lines, anything
//! else is treated as binary framing (a well-formed binary frame always
//! starts with `0x00`, the high byte of a length that fits in
//! [`qtag_wire::framing::MAX_FRAME_LEN`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod config;
mod connection;
#[cfg(target_os = "linux")]
mod reactor;
mod stats;
pub mod sync;

pub use collector::Collector;
pub use config::CollectorConfig;
pub use stats::{CollectorStats, CollectorStatsSnapshot, IngestMetrics, IngestStats, OpsSnapshot};

// Socket-free session drivers for the qtag_check schedule-exploration
// models (`tests/check_models.rs`) and the reactor-vs-threaded
// equivalence suite; not part of the supported API.
#[doc(hidden)]
pub use connection::serve_binary_chunks;
#[doc(hidden)]
#[cfg(target_os = "linux")]
pub use reactor::{reactor_chunks, reactor_virtual_fleet};
