//! `qtag-collectd`: the beacon-collector daemon.
//!
//! The paper's measurement pipeline ends at a collector that tags POST
//! their beacons to (§4). This crate is that collector as a real
//! network daemon: a TCP listener accepting the `qtag-wire`
//! length-prefixed binary protocol and the newline-delimited JSON
//! protocol on the same port, feeding decoded beacons into
//! [`qtag_server::IngestService`] through its bounded inlet.
//!
//! Shape: a non-blocking acceptor thread supervises one OS thread per
//! connection (ingestion is parse-bound, not IO-bound, so
//! thread-per-connection with blocking reads-with-timeout is the
//! simplest correct shape — no async runtime in the dependency tree).
//! Every hand-off is a crossbeam channel; overload is shed at the
//! bounded inlet and *counted*, never silently dropped, so the
//! end-to-end conservation identity
//!
//! ```text
//! beacons sent == beacons applied + corrupt frames + shed beacons
//! ```
//!
//! is exact and checkable by the load generator in `qtag-bench`.
//!
//! Protocol sniffing: the first byte of a connection decides its
//! protocol for the whole connection — `{` means JSON lines, anything
//! else is treated as binary framing (a well-formed binary frame always
//! starts with `0x00`, the high byte of a length that fits in
//! [`qtag_wire::framing::MAX_FRAME_LEN`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod collector;
mod config;
mod connection;
mod stats;
pub mod sync;

pub use collector::Collector;
pub use config::CollectorConfig;
pub use stats::{CollectorStats, CollectorStatsSnapshot, IngestMetrics, IngestStats, OpsSnapshot};

// Socket-free session driver for the qtag_check schedule-exploration
// models (`tests/check_models.rs`); not part of the supported API.
#[doc(hidden)]
pub use connection::serve_binary_chunks;
