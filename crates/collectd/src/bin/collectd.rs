//! `collectd` — run the beacon collector as a foreground daemon.
//!
//! ```text
//! collectd [--bind ADDR] [--max-conns N] [--read-timeout-ms MS]
//!          [--workers N] [--capacity N] [--shards N] [--batch N]
//!          [--reactor] [--reactor-workers N] [--ack-buffer-cap BYTES]
//!          [--duration-secs S] [--metrics PATH] [--metrics-json PATH]
//!          [--wal-dir DIR] [--sync none|batch|record]
//! ```
//!
//! Listens for binary and JSON beacon streams on `ADDR` (default
//! `127.0.0.1:4050`). Runs for `--duration-secs` if given, otherwise
//! until stdin closes or a line containing `quit` arrives. On exit it
//! shuts down gracefully — draining in-flight frames into the store —
//! and prints the final ops snapshot as JSON on stdout.
//!
//! With `--wal-dir DIR` the daemon runs on the durable backend from
//! `qtag-store`: state recovered from `DIR` on start (snapshot + WAL
//! replay; the recovery report prints on stderr), every beacon batch
//! journaled ahead of apply under the `--sync` policy (default
//! `batch`), and the logs fsynced and compacted into fresh snapshots
//! on graceful exit.
//!
//! `--reactor` serves connections on a few epoll event loops instead
//! of one thread per connection (`--reactor-workers`, default 2) —
//! the mode for tens of thousands of concurrent sockets.
//! `--ack-buffer-cap` bounds the per-connection ack backlog towards a
//! slow acked client before its reads are paused.
//!
//! The ops path doubles as the metrics endpoint: while running, a
//! `metrics` line on stdin prints the live registry as Prometheus text
//! exposition, `metrics-json` prints the same registry as a JSON
//! snapshot, and `ops` prints the legacy ops snapshot (all three read
//! the same atomic cells). `--metrics PATH` / `--metrics-json PATH`
//! additionally dump the final exposition on exit.

use qtag_collectd::{Collector, CollectorConfig};
use qtag_server::ShardedStore;
use qtag_store::{DurableBackend, DurableConfig, StorageBackend, SyncPolicy};
use std::io::BufRead;
use std::time::Duration;

struct BinArgs {
    cfg: CollectorConfig,
    shards: usize,
    duration: Option<Duration>,
    metrics: Option<String>,
    metrics_json: Option<String>,
    wal_dir: Option<String>,
    sync: SyncPolicy,
}

fn parse_args() -> BinArgs {
    let mut out = BinArgs {
        cfg: CollectorConfig {
            bind: "127.0.0.1:4050".to_string(),
            ..CollectorConfig::default()
        },
        shards: 1,
        duration: None,
        metrics: None,
        metrics_json: None,
        wal_dir: None,
        sync: SyncPolicy::Batch,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag {
            "--bind" => out.cfg.bind = value(i).to_string(),
            "--max-conns" => {
                out.cfg.max_connections = value(i).parse().expect("--max-conns: usize")
            }
            "--read-timeout-ms" => {
                out.cfg.read_timeout =
                    Duration::from_millis(value(i).parse().expect("--read-timeout-ms: u64"))
            }
            "--workers" => out.cfg.ingest_workers = value(i).parse().expect("--workers: usize"),
            "--capacity" => out.cfg.inlet_capacity = value(i).parse().expect("--capacity: usize"),
            "--shards" => out.shards = value(i).parse().expect("--shards: usize"),
            "--batch" => out.cfg.batch = value(i).parse().expect("--batch: usize"),
            "--reactor" => {
                out.cfg.reactor = true;
                i += 1; // boolean flag, no value
                continue;
            }
            "--reactor-workers" => {
                out.cfg.reactor_workers = value(i).parse().expect("--reactor-workers: usize")
            }
            "--ack-buffer-cap" => {
                out.cfg.ack_buffer_cap = value(i).parse().expect("--ack-buffer-cap: usize")
            }
            "--duration-secs" => {
                out.duration = Some(Duration::from_secs(
                    value(i).parse().expect("--duration-secs: u64"),
                ))
            }
            "--metrics" => out.metrics = Some(value(i).to_string()),
            "--metrics-json" => out.metrics_json = Some(value(i).to_string()),
            "--wal-dir" => out.wal_dir = Some(value(i).to_string()),
            "--sync" => out.sync = value(i).parse().expect("--sync: none|batch|record"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: collectd [--bind ADDR] [--max-conns N] [--read-timeout-ms MS] \
                     [--workers N] [--capacity N] [--shards N] [--batch N] \
                     [--reactor] [--reactor-workers N] [--ack-buffer-cap BYTES] \
                     [--duration-secs S] [--metrics PATH] [--metrics-json PATH] \
                     [--wal-dir DIR] [--sync none|batch|record]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    out
}

fn main() {
    let args = parse_args();
    let backend: Option<DurableBackend> = args.wal_dir.as_ref().map(|dir| {
        let (backend, report) = DurableBackend::open(DurableConfig {
            dir: dir.into(),
            shards: args.shards,
            sync: args.sync,
        })
        .unwrap_or_else(|e| panic!("open WAL dir {dir}: {e}"));
        eprintln!("collectd: recovered from {dir}: {report:?}");
        backend
    });
    let (store, journal) = match &backend {
        Some(b) => (b.store().clone(), b.journal()),
        None => (ShardedStore::new(args.shards), None),
    };
    let collector =
        Collector::start_sharded_journaled(args.cfg, store, journal).expect("bind listener");
    if let Some(b) = &backend {
        b.stats().register(collector.registry(), "qtag_store");
    }
    eprintln!("collectd: listening on {}", collector.local_addr());

    match args.duration {
        Some(d) => std::thread::sleep(d),
        None => {
            eprintln!(
                "collectd: running until stdin closes (or a `quit` line; \
                 `metrics`, `metrics-json` and `ops` print live snapshots)"
            );
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) if l.trim() == "quit" => break,
                    Ok(l) if l.trim() == "metrics" => print!("{}", collector.metrics_text()),
                    Ok(l) if l.trim() == "metrics-json" => {
                        println!("{}", collector.metrics_json())
                    }
                    Ok(l) if l.trim() == "ops" => println!(
                        "{}",
                        serde_json::to_string_pretty(&collector.ops_snapshot())
                            .expect("ops snapshot serializes")
                    ),
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
        }
    }

    // The registry outlives the collector handle, so the final dumps
    // see the fully drained counters.
    let registry = std::sync::Arc::clone(collector.registry());
    let ops = collector.shutdown();
    if let Some(b) = &backend {
        // Every drained beacon is journaled; make it stable, then fold
        // the log into a snapshot so the next start replays nothing.
        b.flush().expect("flush WAL");
        b.compact().expect("compact WAL");
        eprintln!("collectd: WAL flushed and compacted");
    }
    if let Some(path) = &args.metrics {
        std::fs::write(path, registry.render_prometheus())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("collectd: wrote {path}");
    }
    if let Some(path) = &args.metrics_json {
        std::fs::write(path, registry.render_json())
            .unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("collectd: wrote {path}");
    }
    println!(
        "{}",
        serde_json::to_string_pretty(&ops).expect("ops snapshot serializes")
    );
}
