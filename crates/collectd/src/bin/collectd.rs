//! `collectd` — run the beacon collector as a foreground daemon.
//!
//! ```text
//! collectd [--bind ADDR] [--max-conns N] [--read-timeout-ms MS]
//!          [--workers N] [--capacity N] [--shards N] [--batch N]
//!          [--duration-secs S]
//! ```
//!
//! Listens for binary and JSON beacon streams on `ADDR` (default
//! `127.0.0.1:4050`). Runs for `--duration-secs` if given, otherwise
//! until stdin closes or a line containing `quit` arrives. On exit it
//! shuts down gracefully — draining in-flight frames into the store —
//! and prints the final ops snapshot as JSON on stdout.

use qtag_collectd::{Collector, CollectorConfig};
use qtag_server::ShardedStore;
use std::io::BufRead;
use std::time::Duration;

fn parse_args() -> (CollectorConfig, usize, Option<Duration>) {
    let mut cfg = CollectorConfig {
        bind: "127.0.0.1:4050".to_string(),
        ..CollectorConfig::default()
    };
    let mut shards = 1usize;
    let mut duration = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> &str {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag {
            "--bind" => cfg.bind = value(i).to_string(),
            "--max-conns" => cfg.max_connections = value(i).parse().expect("--max-conns: usize"),
            "--read-timeout-ms" => {
                cfg.read_timeout =
                    Duration::from_millis(value(i).parse().expect("--read-timeout-ms: u64"))
            }
            "--workers" => cfg.ingest_workers = value(i).parse().expect("--workers: usize"),
            "--capacity" => cfg.inlet_capacity = value(i).parse().expect("--capacity: usize"),
            "--shards" => shards = value(i).parse().expect("--shards: usize"),
            "--batch" => cfg.batch = value(i).parse().expect("--batch: usize"),
            "--duration-secs" => {
                duration = Some(Duration::from_secs(
                    value(i).parse().expect("--duration-secs: u64"),
                ))
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: collectd [--bind ADDR] [--max-conns N] [--read-timeout-ms MS] \
                     [--workers N] [--capacity N] [--shards N] [--batch N] [--duration-secs S]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
        i += 2;
    }
    (cfg, shards, duration)
}

fn main() {
    let (cfg, shards, duration) = parse_args();
    let store = ShardedStore::new(shards);
    let collector = Collector::start_sharded(cfg, store).expect("bind listener");
    eprintln!("collectd: listening on {}", collector.local_addr());

    match duration {
        Some(d) => std::thread::sleep(d),
        None => {
            eprintln!("collectd: running until stdin closes (or a `quit` line)");
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) if l.trim() == "quit" => break,
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
        }
    }

    let ops = collector.shutdown();
    println!(
        "{}",
        serde_json::to_string_pretty(&ops).expect("ops snapshot serializes")
    );
}
