//! The daemon: listener, acceptor thread, connection supervision,
//! graceful shutdown.

use crate::config::CollectorConfig;
use crate::connection::{self, ConnCtx, ConnObs};
#[cfg(target_os = "linux")]
use crate::reactor::{self, NewConn};
use crate::stats::{CollectorStats, OpsSnapshot};
use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::thread::JoinHandle;
use crate::sync::time::Instant;
use crate::sync::{thread, Arc, Mutex};
#[cfg(target_os = "linux")]
use crossbeam::channel::{unbounded, Sender};
use qtag_obs::{Registry, TraceRing};
use qtag_server::{
    ImpressionStore, IngestConfig, IngestMetrics, IngestService, IngestStats, ShardJournal,
    ShardedStore,
};
use std::io;
use std::net::{SocketAddr, TcpListener};

/// A running collector daemon. Start with [`Collector::start`], stop
/// with [`Collector::shutdown`] (graceful: drains in-flight frames
/// into the store before returning).
pub struct Collector {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    ingest: Option<IngestService>,
    ingest_stats: Arc<IngestStats>,
    stats: Arc<CollectorStats>,
    store: ShardedStore,
    registry: Arc<Registry>,
    trace: Arc<TraceRing>,
}

impl Collector {
    /// Binds the listener and spawns the acceptor over a single shared
    /// store. Beacons land in `store`; share the `Arc` to read
    /// verdicts while the daemon runs. For multi-shard aggregation use
    /// [`Collector::start_sharded`].
    pub fn start(cfg: CollectorConfig, store: Arc<Mutex<ImpressionStore>>) -> io::Result<Self> {
        Self::start_sharded(cfg, ShardedStore::from_single(store))
    }

    /// Binds the listener and spawns the acceptor over a sharded
    /// store: one applier thread per shard, connection threads hand
    /// off decoded beacons in per-read-iteration batches routed by
    /// impression-id hash.
    pub fn start_sharded(cfg: CollectorConfig, store: ShardedStore) -> io::Result<Self> {
        Self::start_sharded_journaled(cfg, store, None)
    }

    /// [`Collector::start_sharded`] with a write-ahead journal hook:
    /// when `journal` is `Some`, each shard applier journals every
    /// beacon batch inside the shard's store lock before applying it
    /// (the durable backend from `qtag-store` implements the trait).
    /// `None` is exactly the in-memory daemon.
    pub fn start_sharded_journaled(
        cfg: CollectorConfig,
        store: ShardedStore,
        journal: Option<Arc<dyn ShardJournal>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.bind)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        // One registry + trace ring per daemon: every subsystem
        // (collector sockets, ingest appliers, connection spans)
        // registers into this single observable surface.
        let registry = Arc::new(Registry::new());
        let trace = Arc::new(TraceRing::new(cfg.trace_capacity));
        let metrics = IngestMetrics::new(&registry, Some(Arc::clone(&trace)));

        let ingest = IngestService::start_sharded(
            store.clone(),
            IngestConfig {
                workers: cfg.ingest_workers,
                batch: cfg.batch,
                inlet_capacity: cfg.inlet_capacity,
                metrics: Some(Arc::clone(&metrics)),
                journal,
            },
        );
        let ingest_stats = Arc::clone(ingest.stats_arc());
        let stats = Arc::new(CollectorStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));

        stats.register(&registry, "qtag_collectd");
        ingest_stats.register(&registry, "qtag_ingest");
        metrics.register_queue_depth(&registry, &ingest_stats);

        let ctx_proto = ConnCtx {
            cfg: Arc::new(cfg),
            stats: Arc::clone(&stats),
            inlet: ingest.inlet(),
            shutdown: Arc::clone(&shutdown),
            obs: ConnObs {
                trace: Some(Arc::clone(&trace)),
                epoch: Instant::now(),
                conn_id: 0,
            },
        };
        let acceptor = thread::spawn(move || accept_loop(listener, ctx_proto));

        Ok(Collector {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            ingest: Some(ingest),
            ingest_stats,
            stats,
            store,
            registry,
            trace,
        })
    }

    /// The actually-bound address (useful with a `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live daemon counters.
    pub fn stats(&self) -> &Arc<CollectorStats> {
        &self.stats
    }

    /// The shared impression store of a *single-shard* daemon (the
    /// [`Collector::start`] path, where shard 0 is the caller's own
    /// `Arc`). With multiple shards, use
    /// [`Collector::sharded_store`] — writing through this handle
    /// would bypass shard routing.
    pub fn store(&self) -> &Arc<Mutex<ImpressionStore>> {
        debug_assert_eq!(self.store.shard_count(), 1);
        self.store.shard(0)
    }

    /// The sharded store beacons aggregate into.
    pub fn sharded_store(&self) -> &ShardedStore {
        &self.store
    }

    /// The daemon's metric registry: every collector, ingest, and
    /// apply-path metric in one named surface. Clone the `Arc` to keep
    /// reading after [`Collector::shutdown`] consumes the daemon.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The per-stage trace-event ring (decode → inlet → shard apply →
    /// ack spans).
    pub fn trace(&self) -> &Arc<TraceRing> {
        &self.trace
    }

    /// Prometheus text exposition of the full registry.
    pub fn metrics_text(&self) -> String {
        self.registry.render_prometheus()
    }

    /// JSON exposition of the full registry (pretty-printed).
    pub fn metrics_json(&self) -> String {
        self.registry.render_json()
    }

    /// Combined daemon + ingestion counters at this instant.
    pub fn ops_snapshot(&self) -> OpsSnapshot {
        OpsSnapshot {
            collector: self.stats.snapshot(),
            ingest: self.ingest_stats.snapshot(),
        }
    }

    /// Graceful shutdown, in dependency order: stop accepting, let
    /// every connection thread drain its socket and decoder, drop the
    /// beacon senders, then drain the ingestion service so every
    /// accepted beacon reaches the store. Returns the final counters.
    pub fn shutdown(mut self) -> OpsSnapshot {
        self.stop();
        OpsSnapshot {
            collector: self.stats.snapshot(),
            ingest: self.ingest_stats.snapshot(),
        }
    }

    /// Simulated hard kill for durability testing: stop accepting and
    /// join every thread (a test can't leak them), but *abort* the
    /// ingestion service instead of draining it — batches still in
    /// flight are discarded whole, exactly as if the process had died
    /// between journaling batches. Nothing is flushed. The returned
    /// counters describe what the dying process had accepted; the
    /// durable state on disk is whatever the journal captured.
    pub fn crash(mut self) -> OpsSnapshot {
        // ordering: Release pairs with the Acquire loads in the accept
        // loop and connection readers, same as the graceful path.
        self.shutdown.store(true, Ordering::Release);
        if let Some(ingest) = self.ingest.take() {
            // Abort first: the discard flag is up before the acceptor
            // join lets connection readers push their last batches.
            ingest.abort();
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        OpsSnapshot {
            collector: self.stats.snapshot(),
            ingest: self.ingest_stats.snapshot(),
        }
    }

    fn stop(&mut self) {
        // ordering: Release pairs with the Acquire loads in the accept
        // loop and connection readers — a thread that observes the flag
        // also observes everything published before the stop began.
        self.shutdown.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            // Joins every connection thread too (the acceptor owns
            // them), and drops the acceptor's inlet clone with it.
            let _ = acceptor.join();
        }
        if let Some(ingest) = self.ingest.take() {
            ingest.shutdown();
        }
    }
}

impl Drop for Collector {
    fn drop(&mut self) {
        // A dropped (not shut-down) collector must not leak threads.
        self.stop();
    }
}

/// Restores the `connections_active` gauge when a reader thread ends,
/// including when `connection::serve` panics — otherwise a panic would
/// leak the slot against `max_connections` for the daemon's lifetime.
struct ActiveGuard(Arc<CollectorStats>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        // ordering: admission-control gauge; the acceptor's cap check
        // tolerates a momentarily stale value (briefly over-admitting
        // by one), and the final read happens after the joins.
        self.0.connections_active.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The mode-specific half of connection admission: where an accepted,
/// cap-checked connection goes. The acceptor loop, admission counters,
/// and shutdown drain are shared between modes; only this differs.
enum Admitter {
    /// Classic mode: one blocking reader thread per connection.
    Threaded { handlers: Vec<JoinHandle<()>> },
    /// Reactor mode: round-robin hand-off to epoll worker loops.
    #[cfg(target_os = "linux")]
    Reactor {
        txs: Vec<Sender<NewConn>>,
        workers: Vec<JoinHandle<()>>,
        next: usize,
    },
}

impl Admitter {
    fn threaded() -> Admitter {
        Admitter::Threaded {
            handlers: Vec::new(),
        }
    }

    #[cfg(target_os = "linux")]
    fn reactor(ctx: &ConnCtx) -> Admitter {
        let n = ctx.cfg.reactor_workers.max(1);
        let mut txs = Vec::with_capacity(n);
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            let cfg = Arc::clone(&ctx.cfg);
            let shutdown = Arc::clone(&ctx.shutdown);
            workers.push(thread::spawn(move || {
                reactor::run_worker(rx, cfg, shutdown)
            }));
            txs.push(tx);
        }
        Admitter::Reactor {
            txs,
            workers,
            next: 0,
        }
    }

    /// Takes ownership of one admitted connection, already counted in
    /// `connections_accepted` and `connections_active`.
    fn admit(&mut self, stream: std::net::TcpStream, conn_ctx: ConnCtx) {
        match self {
            Admitter::Threaded { handlers } => {
                handlers.push(thread::spawn(move || {
                    let _active = ActiveGuard(Arc::clone(&conn_ctx.stats));
                    connection::serve(stream, conn_ctx);
                }));
            }
            #[cfg(target_os = "linux")]
            Admitter::Reactor { txs, next, .. } => {
                let idx = *next % txs.len();
                *next = next.wrapping_add(1);
                let stats = Arc::clone(&conn_ctx.stats);
                if txs[idx]
                    .send(NewConn {
                        stream,
                        ctx: conn_ctx,
                    })
                    .is_err()
                {
                    // The worker died (epoll setup failure): shed the
                    // connection and restore the gauge it was counted in.
                    // ordering: admission gauge, see ActiveGuard.
                    stats.connections_active.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Reclaims finished per-connection threads (no-op for the
    /// reactor, whose worker count is fixed).
    fn reap(&mut self) {
        if let Admitter::Threaded { handlers } = self {
            handlers.retain(|h| !h.is_finished());
        }
    }

    /// Joins everything the admitter owns. Dropping the reactor
    /// senders is the workers' signal that no more connections come.
    fn finish(self) {
        match self {
            Admitter::Threaded { handlers } => {
                for h in handlers {
                    let _ = h.join();
                }
            }
            #[cfg(target_os = "linux")]
            Admitter::Reactor { txs, workers, .. } => {
                drop(txs);
                for w in workers {
                    let _ = w.join();
                }
            }
        }
    }
}

/// Backoff after a failed `accept(2)`. Running out of file
/// descriptors (EMFILE/ENFILE) cannot be fixed by re-calling accept
/// faster — back off an order of magnitude to give in-flight
/// connections a chance to close and release fds; everything else
/// (e.g. ECONNABORTED) retries at the normal poll cadence.
fn accept_backoff(e: &io::Error, poll_interval: std::time::Duration) -> std::time::Duration {
    const ENFILE: i32 = 23;
    const EMFILE: i32 = 24;
    match e.raw_os_error() {
        Some(EMFILE) | Some(ENFILE) => (poll_interval * 10)
            .min(std::time::Duration::from_millis(250))
            .max(poll_interval),
        _ => poll_interval,
    }
}

/// Cap-checks and counts an accepted connection, then hands it to the
/// mode's admitter (reader thread or reactor worker).
fn supervise(stream: std::net::TcpStream, ctx: &ConnCtx, admitter: &mut Admitter) {
    admitter.reap();
    let active = ctx.stats.connections_active.load(Ordering::Relaxed);
    if active >= ctx.cfg.max_connections as u64 {
        // Shed the connection whole: close immediately so the client
        // sees EOF/reset rather than a stalled socket.
        // ordering: monotone stat; exact reads only after join.
        ctx.stats
            .connections_rejected
            .fetch_add(1, Ordering::Relaxed);
        drop(stream);
        return;
    }
    // ordering: monotone stat; exact reads only after join. The prior
    // value doubles as the connection's trace correlation id.
    let conn_id = ctx
        .stats
        .connections_accepted
        .fetch_add(1, Ordering::Relaxed);
    // ordering: admission gauge, only this acceptor thread increments;
    // see ActiveGuard for the decrement rationale.
    ctx.stats.connections_active.fetch_add(1, Ordering::Relaxed);
    let mut conn_ctx = ctx.clone();
    conn_ctx.obs.conn_id = conn_id;
    admitter.admit(stream, conn_ctx);
}

/// Acceptor: non-blocking accept, admission accounting, and graceful
/// backlog drain — shared by both serving modes via [`Admitter`].
fn accept_loop(listener: TcpListener, ctx: ConnCtx) {
    #[cfg(target_os = "linux")]
    let mut admitter = if ctx.cfg.reactor {
        Admitter::reactor(&ctx)
    } else {
        Admitter::threaded()
    };
    #[cfg(not(target_os = "linux"))]
    let mut admitter = Admitter::threaded();
    // ordering: Acquire pairs with the Release store in
    // `Collector::stop`; see the store for the rationale.
    while !ctx.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => supervise(stream, &ctx, &mut admitter),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(ctx.cfg.poll_interval);
            }
            Err(e) => {
                // Failed accept (EMFILE fd exhaustion, ECONNABORTED,
                // ...): count it — a silently respinning acceptor is
                // indistinguishable from a healthy idle one — and
                // back off instead of hammering a condition that
                // re-calling accept cannot clear.
                ctx.stats.accept_errors.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
                thread::sleep(accept_backoff(&e, ctx.cfg.poll_interval));
            }
        }
    }
    // Shutdown drain: clients that connected (and possibly already
    // sent and closed) before the flag flipped may still sit in the
    // OS accept backlog. Serve them too — their readers drain any
    // buffered bytes before exiting — so a graceful shutdown never
    // strands data behind an unaccepted connection. The drain is
    // bounded by `drain_grace`: without a deadline, clients that keep
    // connecting during shutdown would be accepted forever.
    let drain_deadline = Instant::now() + ctx.cfg.drain_grace;
    while Instant::now() < drain_deadline {
        match listener.accept() {
            Ok((stream, _peer)) => supervise(stream, &ctx, &mut admitter),
            // Backlog empty: the drain is complete.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            // Any other error (ECONNABORTED, EMFILE, ...) says nothing
            // about the backlog; back off and keep draining until the
            // deadline rather than ending the drain early.
            Err(e) => {
                ctx.stats.accept_errors.fetch_add(1, Ordering::Relaxed); // ordering: stat, read after join
                thread::sleep(accept_backoff(&e, ctx.cfg.poll_interval));
            }
        }
    }
    drop(listener); // stop the OS queueing new connections
    admitter.finish();
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtag_wire::framing::encode_frames;
    use qtag_wire::{json, AdFormat, Beacon, BrowserKind, EventKind, OsKind, SiteType};
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    fn beacon(id: u64, seq: u16, event: EventKind) -> Beacon {
        Beacon {
            impression_id: id,
            campaign_id: 1,
            event,
            timestamp_us: 1_000 * u64::from(seq),
            ad_format: AdFormat::Display,
            visible_fraction_milli: 750,
            exposure_ms: 1200,
            os: OsKind::Windows10,
            browser: BrowserKind::Chrome,
            site_type: SiteType::Browser,
            seq,
        }
    }

    fn start_default() -> Collector {
        let store = Arc::new(Mutex::new(ImpressionStore::new()));
        Collector::start(CollectorConfig::default(), store).expect("bind localhost")
    }

    #[test]
    fn binary_client_round_trips_through_the_daemon() {
        let collector = start_default();
        collector.store().lock().record_served(served(42));
        let mut sock = TcpStream::connect(collector.local_addr()).unwrap();
        let stream = encode_frames(&[
            beacon(42, 0, EventKind::Measurable),
            beacon(42, 1, EventKind::InView),
        ])
        .unwrap();
        sock.write_all(&stream).unwrap();
        drop(sock);
        let ops = collector.shutdown();
        assert_eq!(ops.collector.frames_decoded, 2);
        assert_eq!(ops.ingest.beacons, 2);
        assert!(ops.conserves(2), "{ops:?}");
    }

    #[test]
    fn json_client_is_sniffed_and_decoded() {
        let collector = start_default();
        let store = Arc::clone(collector.store());
        store.lock().record_served(served(7));
        let mut sock = TcpStream::connect(collector.local_addr()).unwrap();
        let mut payload = json::encode(&beacon(7, 0, EventKind::Measurable)).unwrap();
        payload.push('\n');
        payload.push_str(&json::encode(&beacon(7, 1, EventKind::InView)).unwrap());
        payload.push('\n');
        payload.push_str("this is not json\n");
        sock.write_all(payload.as_bytes()).unwrap();
        drop(sock);
        let ops = collector.shutdown();
        assert_eq!(ops.collector.frames_decoded, 2);
        assert_eq!(ops.collector.corrupt_frames, 1);
        assert!(ops.conserves(3), "{ops:?}");
        assert_eq!(store.lock().verdict(7), (true, true));
    }

    #[test]
    fn connection_cap_rejects_excess_clients() {
        let cfg = CollectorConfig {
            max_connections: 1,
            ..CollectorConfig::default()
        };
        let store = Arc::new(Mutex::new(ImpressionStore::new()));
        let collector = Collector::start(cfg, store).unwrap();
        let _first = TcpStream::connect(collector.local_addr()).unwrap();
        // Give the acceptor time to register the first connection.
        std::thread::sleep(Duration::from_millis(100));
        let _second = TcpStream::connect(collector.local_addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while collector
            .stats()
            .connections_rejected
            .load(Ordering::Relaxed)
            == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let ops = collector.shutdown();
        assert_eq!(ops.collector.connections_accepted, 1);
        assert_eq!(ops.collector.connections_rejected, 1);
        // Every reader thread is joined by shutdown, so the gauge
        // must be fully restored.
        assert_eq!(ops.collector.connections_active, 0);
    }

    #[test]
    fn idle_connection_is_timed_out() {
        let cfg = CollectorConfig {
            read_timeout: Duration::from_millis(50),
            poll_interval: Duration::from_millis(10),
            ..CollectorConfig::default()
        };
        let store = Arc::new(Mutex::new(ImpressionStore::new()));
        let collector = Collector::start(cfg, store).unwrap();
        let _sock = TcpStream::connect(collector.local_addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while collector
            .stats()
            .connections_timed_out
            .load(Ordering::Relaxed)
            == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let ops = collector.shutdown();
        assert_eq!(ops.collector.connections_timed_out, 1);
    }

    #[test]
    fn abrupt_disconnect_mid_frame_loses_only_the_partial_frame() {
        let collector = start_default();
        let mut sock = TcpStream::connect(collector.local_addr()).unwrap();
        let stream = encode_frames(&[beacon(1, 0, EventKind::Measurable)]).unwrap();
        let mut cut = encode_frames(&[beacon(1, 1, EventKind::InView)]).unwrap();
        cut.truncate(cut.len() / 2); // die mid-frame
        sock.write_all(&stream).unwrap();
        sock.write_all(&cut).unwrap();
        drop(sock);
        let ops = collector.shutdown();
        // Only the fully-written beacon counts as sent.
        assert_eq!(ops.collector.frames_decoded, 1);
        assert_eq!(ops.collector.corrupt_frames, 0);
        assert!(ops.conserves(1), "{ops:?}");
    }

    #[test]
    fn acked_client_gets_one_ack_per_accepted_frame_including_duplicates() {
        use qtag_wire::sender::{AckDecoder, AckKey, ACK_HELLO};
        let collector = start_default();
        collector.store().lock().record_served(served(42));
        let mut sock = TcpStream::connect(collector.local_addr()).unwrap();
        sock.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        sock.write_all(&[ACK_HELLO]).unwrap();
        // Two distinct beacons plus a retransmit of the first: the
        // duplicate must be re-acked (the store already has it; the
        // honest answer to the retry is "got it").
        let stream = encode_frames(&[
            beacon(42, 0, EventKind::Measurable),
            beacon(42, 1, EventKind::InView),
            beacon(42, 0, EventKind::Measurable),
        ])
        .unwrap();
        sock.write_all(&stream).unwrap();
        sock.shutdown(std::net::Shutdown::Write).unwrap();
        let mut raw = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut chunk = [0u8; 64];
        while raw.len() < 30 && std::time::Instant::now() < deadline {
            match sock.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(_) => {}
            }
        }
        let mut dec = AckDecoder::new();
        let mut keys = Vec::new();
        dec.extend(&raw, &mut keys);
        keys.sort();
        assert_eq!(
            keys,
            vec![
                AckKey {
                    impression_id: 42,
                    seq: 0
                },
                AckKey {
                    impression_id: 42,
                    seq: 0
                },
                AckKey {
                    impression_id: 42,
                    seq: 1
                },
            ],
            "raw ack bytes: {raw:?}"
        );
        drop(sock);
        let ops = collector.shutdown();
        assert_eq!(ops.collector.acked_connections, 1);
        assert_eq!(ops.collector.acks_sent, 3);
        assert_eq!(ops.collector.frames_decoded, 3);
        // Acks are coalesced: one write per read iteration, never one
        // per frame beyond that.
        assert!(
            ops.collector.ack_flushes >= 1 && ops.collector.ack_flushes <= ops.collector.acks_sent,
            "{ops:?}"
        );
    }

    /// A daemon over a multi-shard store aggregates every beacon to
    /// the right shard and conserves exactly, end to end over TCP.
    #[test]
    fn sharded_daemon_aggregates_across_shards() {
        let store = ShardedStore::new(4);
        for id in 0..32u64 {
            store.record_served(served(id));
        }
        let collector =
            Collector::start_sharded(CollectorConfig::default(), store.clone()).unwrap();
        let beacons: Vec<Beacon> = (0..32u64)
            .flat_map(|id| {
                [
                    beacon(id, 0, EventKind::Measurable),
                    beacon(id, 1, EventKind::InView),
                ]
            })
            .collect();
        let mut sock = TcpStream::connect(collector.local_addr()).unwrap();
        sock.write_all(&encode_frames(&beacons).unwrap()).unwrap();
        drop(sock);
        assert_eq!(collector.sharded_store().shard_count(), 4);
        let ops = collector.shutdown();
        assert_eq!(ops.ingest.beacons, 64);
        assert_eq!(ops.ingest.rejected_after_shutdown, 0);
        assert!(ops.conserves(64), "{ops:?}");
        assert!(ops.decode_accounted(), "{ops:?}");
        // Batched hand-off must have coalesced: far fewer channel ops
        // than beacons even with 4 shards.
        assert!(ops.ingest.beacon_batches < ops.ingest.beacons, "{ops:?}");
        for id in 0..32u64 {
            assert_eq!(store.verdict(id), (true, true), "impression {id}");
        }
        assert_eq!(store.unique_beacons(), 64);
    }

    #[test]
    fn corrupt_frames_earn_no_ack() {
        use qtag_wire::sender::ACK_HELLO;
        let collector = start_default();
        collector.store().lock().record_served(served(9));
        let mut sock = TcpStream::connect(collector.local_addr()).unwrap();
        sock.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        sock.write_all(&[ACK_HELLO]).unwrap();
        let good = encode_frames(&[beacon(9, 0, EventKind::Measurable)]).unwrap();
        let mut bad = encode_frames(&[beacon(9, 1, EventKind::InView)]).unwrap();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF; // fails the CRC, header stays honest
        sock.write_all(&good).unwrap();
        sock.write_all(&bad).unwrap();
        sock.shutdown(std::net::Shutdown::Write).unwrap();
        // Read to EOF: exactly one ack record may come back.
        let mut raw = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut chunk = [0u8; 64];
        while std::time::Instant::now() < deadline {
            match sock.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(_) => {
                    if raw.len() >= 10 {
                        break;
                    }
                }
            }
        }
        assert_eq!(raw.len(), 10, "one ack for the good frame only: {raw:?}");
        drop(sock);
        let ops = collector.shutdown();
        assert_eq!(ops.collector.acks_sent, 1);
        assert_eq!(ops.collector.corrupt_frames, 1);
        assert!(ops.conserves(2), "{ops:?}");
    }

    #[test]
    fn dropping_the_collector_does_not_hang() {
        let collector = start_default();
        let _sock = TcpStream::connect(collector.local_addr()).unwrap();
        drop(collector);
    }

    #[test]
    fn accept_backoff_slows_down_on_fd_exhaustion() {
        let poll = Duration::from_millis(10);
        let emfile = io::Error::from_raw_os_error(24);
        let enfile = io::Error::from_raw_os_error(23);
        let aborted = io::Error::from_raw_os_error(103); // ECONNABORTED
        assert_eq!(accept_backoff(&emfile, poll), Duration::from_millis(100));
        assert_eq!(accept_backoff(&enfile, poll), Duration::from_millis(100));
        assert_eq!(accept_backoff(&aborted, poll), poll);
        // The EMFILE backoff is capped, and never below the poll cadence.
        let slow = Duration::from_millis(200);
        assert_eq!(accept_backoff(&emfile, slow), Duration::from_millis(250));
        let zero = Duration::ZERO;
        assert_eq!(accept_backoff(&emfile, zero), zero);
    }

    fn start_reactor(cfg: CollectorConfig) -> Collector {
        let cfg = CollectorConfig {
            reactor: true,
            reactor_workers: 2,
            ..cfg
        };
        let store = Arc::new(Mutex::new(ImpressionStore::new()));
        Collector::start(cfg, store).expect("bind localhost")
    }

    /// The reactor daemon serves the binary protocol bit-identically
    /// to the threaded daemon: same counters, same conservation.
    #[test]
    fn reactor_binary_client_round_trips() {
        let collector = start_reactor(CollectorConfig::default());
        collector.store().lock().record_served(served(42));
        let mut sock = TcpStream::connect(collector.local_addr()).unwrap();
        let stream = encode_frames(&[
            beacon(42, 0, EventKind::Measurable),
            beacon(42, 1, EventKind::InView),
        ])
        .unwrap();
        sock.write_all(&stream).unwrap();
        drop(sock);
        let ops = collector.shutdown();
        assert_eq!(ops.collector.frames_decoded, 2);
        assert_eq!(ops.ingest.beacons, 2);
        assert!(ops.conserves(2), "{ops:?}");
        assert_eq!(ops.collector.connections_active, 0);
        assert_eq!(ops.collector.accept_errors, 0);
    }

    /// Acked protocol over the reactor: per-frame acks arrive,
    /// duplicates re-acked, same as the threaded mode.
    #[test]
    fn reactor_acked_client_receives_every_ack() {
        use qtag_wire::sender::{AckDecoder, AckKey, ACK_HELLO};
        let collector = start_reactor(CollectorConfig::default());
        collector.store().lock().record_served(served(7));
        let mut sock = TcpStream::connect(collector.local_addr()).unwrap();
        sock.set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        sock.write_all(&[ACK_HELLO]).unwrap();
        let stream = encode_frames(&[
            beacon(7, 0, EventKind::Measurable),
            beacon(7, 1, EventKind::InView),
            beacon(7, 0, EventKind::Measurable), // retransmit: re-acked
        ])
        .unwrap();
        sock.write_all(&stream).unwrap();
        sock.shutdown(std::net::Shutdown::Write).unwrap();
        let mut raw = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut chunk = [0u8; 64];
        while raw.len() < 30 && std::time::Instant::now() < deadline {
            match sock.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => raw.extend_from_slice(&chunk[..n]),
                Err(_) => {}
            }
        }
        let mut dec = AckDecoder::new();
        let mut keys = Vec::new();
        dec.extend(&raw, &mut keys);
        assert_eq!(keys.len(), 3, "raw ack bytes: {raw:?}");
        assert!(keys.contains(&AckKey {
            impression_id: 7,
            seq: 1
        }));
        drop(sock);
        let ops = collector.shutdown();
        assert_eq!(ops.collector.acked_connections, 1);
        assert_eq!(ops.collector.acks_sent, 3);
        assert!(ops.conserves(3), "{ops:?}");
    }

    /// JSON sniffing works per connection on the reactor too, and the
    /// unterminated-tail fix holds over a real socket.
    #[test]
    fn reactor_json_client_with_unterminated_tail() {
        let collector = start_reactor(CollectorConfig::default());
        let store = Arc::clone(collector.store());
        store.lock().record_served(served(5));
        let mut sock = TcpStream::connect(collector.local_addr()).unwrap();
        let mut payload = json::encode(&beacon(5, 0, EventKind::Measurable)).unwrap();
        payload.push('\n');
        // Final beacon: complete JSON, no trailing newline.
        payload.push_str(&json::encode(&beacon(5, 1, EventKind::InView)).unwrap());
        sock.write_all(payload.as_bytes()).unwrap();
        drop(sock);
        let ops = collector.shutdown();
        assert_eq!(ops.collector.frames_decoded, 2, "{ops:?}");
        assert!(ops.conserves(2), "{ops:?}");
        assert_eq!(store.lock().verdict(5), (true, true));
    }

    #[test]
    fn reactor_idle_connection_is_timed_out() {
        let collector = start_reactor(CollectorConfig {
            read_timeout: Duration::from_millis(50),
            poll_interval: Duration::from_millis(10),
            ..CollectorConfig::default()
        });
        let _sock = TcpStream::connect(collector.local_addr()).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while collector
            .stats()
            .connections_timed_out
            .load(Ordering::Relaxed)
            == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        let ops = collector.shutdown();
        assert_eq!(ops.collector.connections_timed_out, 1);
        assert_eq!(ops.collector.connections_active, 0);
    }

    /// Many concurrent clients on a two-worker reactor: every beacon
    /// from every connection lands, conservation exact.
    #[test]
    fn reactor_fan_in_conserves_across_many_connections() {
        const CONNS: u64 = 64;
        let store = ShardedStore::new(4);
        for id in 0..CONNS {
            store.record_served(served(id));
        }
        let cfg = CollectorConfig {
            reactor: true,
            reactor_workers: 2,
            max_connections: 1024,
            ..CollectorConfig::default()
        };
        let collector = Collector::start_sharded(cfg, store.clone()).unwrap();
        let addr = collector.local_addr();
        let clients: Vec<_> = (0..CONNS)
            .map(|id| {
                std::thread::spawn(move || {
                    let mut sock = TcpStream::connect(addr).unwrap();
                    let frames = encode_frames(&[
                        beacon(id, 0, EventKind::Measurable),
                        beacon(id, 1, EventKind::InView),
                    ])
                    .unwrap();
                    // Two writes to exercise partial-stream reads.
                    sock.write_all(&frames[..frames.len() / 2]).unwrap();
                    sock.write_all(&frames[frames.len() / 2..]).unwrap();
                })
            })
            .collect();
        for c in clients {
            c.join().unwrap();
        }
        let ops = collector.shutdown();
        assert_eq!(ops.collector.connections_accepted, CONNS);
        assert_eq!(ops.collector.connections_active, 0, "{ops:?}");
        assert_eq!(ops.collector.accept_errors, 0, "{ops:?}");
        assert!(ops.conserves(2 * CONNS), "{ops:?}");
        assert!(ops.decode_accounted(), "{ops:?}");
        assert_eq!(store.unique_beacons(), 2 * CONNS);
    }

    #[test]
    fn reactor_dropping_the_collector_does_not_hang() {
        let collector = start_reactor(CollectorConfig::default());
        let _sock = TcpStream::connect(collector.local_addr()).unwrap();
        drop(collector);
    }

    fn served(id: u64) -> qtag_server::ServedImpression {
        qtag_server::ServedImpression {
            impression_id: id,
            campaign_id: 1,
            os: OsKind::Windows10,
            browser: BrowserKind::Chrome,
            site_type: SiteType::Browser,
            ad_format: AdFormat::Display,
        }
    }
}
