//! # qtag — transparent ad-viewability measurement
//!
//! A full-system Rust reproduction of *"Q-Tag: a transparent solution to
//! measure ads viewability rate in online advertising campaigns"*
//! (CoNEXT 2019): the Q-Tag measurement algorithm, the browser
//! compositor substrate it exploits, the programmatic-advertising
//! pipeline it deploys through, the monitoring backend it reports to, a
//! commercial-verifier baseline, a synthetic audience, and the
//! certification harness that validates it all.
//!
//! This facade crate re-exports every subsystem under one roof:
//!
//! ```
//! use qtag::core::{QTag, QTagConfig};
//! use qtag::render::{Engine, EngineConfig};
//!
//! // Q-Tag's default deployment: 25 monitoring pixels in the paper's
//! // X layout, a 20 fps visibility threshold, 10 Hz bookkeeping.
//! let cfg = QTagConfig::new(1, 1, qtag::geometry::Rect::new(0.0, 0.0, 300.0, 250.0));
//! assert_eq!(cfg.pixel_count, 25);
//! let _tag = QTag::new(cfg);
//! let _bench = EngineConfig::default_desktop();
//! ```
//!
//! See the repository `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/` for the binaries regenerating every table and
//! figure of the paper.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

/// Geometric primitives (rects, regions, viewport algebra).
pub mod geometry {
    pub use qtag_geometry::*;
}

/// Page/frame/window model with Same-Origin Policy enforcement.
pub mod dom {
    pub use qtag_dom::*;
}

/// The deterministic browser compositor simulator.
pub mod render {
    pub use qtag_render::*;
}

/// The Q-Tag algorithm: layouts, fps threshold, viewability machine.
pub mod core {
    pub use qtag_core::*;
}

/// Beacon wire protocol (binary + JSON codecs, framing).
pub mod wire {
    pub use qtag_wire::*;
}

/// The monitoring backend (transport, ingestion, reports).
pub mod server {
    pub use qtag_server::*;
}

/// The beacon-collector daemon (threaded and epoll-reactor modes).
pub mod collectd {
    pub use qtag_collectd::*;
}

/// Durable impression storage (per-shard WAL, snapshots, rollups).
pub mod store {
    pub use qtag_store::*;
}

/// Programmatic advertising substrate (auctions, DSP, markup, blockers).
pub mod adtech {
    pub use qtag_adtech::*;
}

/// The commercial-verifier baseline.
pub mod verifier {
    pub use qtag_verifier::*;
}

/// The synthetic audience (population, pages, behaviour, sessions).
pub mod user {
    pub use qtag_user::*;
}

/// The ABC/JICWEBS certification harness and §4.3 lab tests.
pub mod certify {
    pub use qtag_certify::*;
}
