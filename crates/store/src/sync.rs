//! Synchronization facade: the single place this crate obtains locks,
//! atomics, threads and clocks.
//!
//! A normal build delegates to `parking_lot` (locks) and `std`
//! (atomics, threads, time). Building the workspace with
//! `RUSTFLAGS="--cfg qtag_check"` swaps every primitive for the
//! `qtag-check` model-checker shims, so the WAL writer and durable
//! backend run under deterministic bounded-DFS schedule exploration
//! (see `crates/check` and the `check_models` test suites). The two
//! variants expose the same shapes: `lock()` returns the guard
//! directly (no poison `Result`), `Condvar`-free, and `time::Instant`
//! supports `now`/`elapsed`/`+ Duration` ordering.
//!
//! `qtag-lint` (rule R4) enforces the routing: no file in this crate
//! may name `std::sync`/`parking_lot`/`std::thread` primitives
//! directly outside this module.

#[cfg(qtag_check)]
pub use qtag_check::sync::{atomic, thread, time, Arc, Mutex, MutexGuard, Weak};

#[cfg(not(qtag_check))]
pub use parking_lot::Mutex;

#[cfg(not(qtag_check))]
pub use std::sync::{Arc, Weak};

/// Guard returned by [`Mutex::lock`] (the vendored `parking_lot`
/// hands out recovered `std` guards).
#[cfg(not(qtag_check))]
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Atomics in the `std::sync::atomic` shape.
#[cfg(not(qtag_check))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

/// Thread spawning and joining in the `std::thread` shape.
#[cfg(not(qtag_check))]
pub mod thread {
    pub use std::thread::{sleep, spawn, yield_now, JoinHandle};
}

/// Clock types in the `std::time` shape.
#[cfg(not(qtag_check))]
pub mod time {
    pub use std::time::{Duration, Instant};
}
