//! WAL record codec: length+checksum framed register/beacon/ack
//! events.
//!
//! Every record travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length (big-endian u32)
//! 4       4     CRC-32/IEEE over the payload (big-endian u32)
//! 8       len   payload; payload[0] is the record kind
//! ```
//!
//! Payload layouts (big-endian throughout):
//!
//! * kind 1 — **Served** (ad-server register event), 17 bytes:
//!   kind, impression id (8), campaign id (4), os code, browser code,
//!   site-type code, ad-format code;
//! * kind 2 — **Beacon**, 39 bytes: kind followed by the 38-byte
//!   `qtag-wire` binary encoding (which carries its own CRC-16 — the
//!   frame CRC-32 guards it a second time, so a torn write can never
//!   masquerade as a valid beacon);
//! * kind 3 — **Ack** (collector confirmed `(impression, seq)` back to
//!   a sender), 11 bytes: kind, impression id (8), seq (2).
//!
//! Decoding is strict: unknown kinds, wrong lengths and CRC mismatches
//! all produce [`RecordError`], which recovery treats as the start of
//! a torn tail (see `wal.rs`) — never as data.

use qtag_server::ServedImpression;
use qtag_wire::{binary, AdFormat, Beacon, BrowserKind, OsKind, SiteType};

/// Record kind byte for a served-impression register event.
pub const KIND_SERVED: u8 = 1;
/// Record kind byte for a beacon event.
pub const KIND_BEACON: u8 = 2;
/// Record kind byte for an ack event.
pub const KIND_ACK: u8 = 3;

/// Frame header size: u32 length + u32 CRC.
pub const FRAME_HEADER_LEN: usize = 8;
/// Largest payload a frame may declare. Real payloads are ≤ 39 bytes;
/// the cap keeps a corrupt length field from driving a giant
/// allocation during recovery.
pub const MAX_PAYLOAD_LEN: usize = 256;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the ubiquity
/// choice for append-only log framing. Byte-at-a-time table variant;
/// the table is built at compile time.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ u32::from(b)) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Ad-server register event: the impression was served.
    Served(ServedImpression),
    /// A beacon accepted by the ingest pipeline.
    Beacon(Beacon),
    /// The collector confirmed `(impression, seq)` back to a sender.
    Ack {
        /// Impression the confirmed beacon belonged to.
        impression_id: u64,
        /// Sequence number confirmed.
        seq: u16,
    },
}

/// Why a record failed to decode. Recovery maps every variant to
/// "torn tail starts here".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Fewer bytes than the frame header or declared payload.
    Truncated,
    /// Declared payload length is zero or exceeds [`MAX_PAYLOAD_LEN`].
    BadLength(u32),
    /// Frame CRC-32 mismatch.
    BadChecksum,
    /// Unknown record kind byte.
    BadKind(u8),
    /// Payload body malformed (wrong size for its kind, or the inner
    /// beacon/served encoding failed to decode).
    BadPayload,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "truncated frame"),
            RecordError::BadLength(n) => write!(f, "implausible payload length {n}"),
            RecordError::BadChecksum => write!(f, "frame checksum mismatch"),
            RecordError::BadKind(k) => write!(f, "unknown record kind {k}"),
            RecordError::BadPayload => write!(f, "malformed record payload"),
        }
    }
}

impl std::error::Error for RecordError {}

/// Opens a frame in `out`: reserves the `[len][crc]` header and returns
/// the offset where [`end_frame`] must patch it once the payload has
/// been appended. The encoders write payloads straight into `out` — no
/// per-record heap allocation; they run per beacon inside the shard
/// journal's critical section.
fn begin_frame(out: &mut Vec<u8>) -> usize {
    let header_at = out.len();
    out.extend_from_slice(&[0u8; FRAME_HEADER_LEN]);
    header_at
}

/// Seals the frame opened at `header_at`: patches the payload length
/// and CRC over everything appended since.
fn end_frame(out: &mut [u8], header_at: usize) {
    let payload_at = header_at + FRAME_HEADER_LEN;
    let payload_len = out.len() - payload_at;
    debug_assert!(payload_len > 0 && payload_len <= MAX_PAYLOAD_LEN);
    let crc = crc32(&out[payload_at..]);
    out[header_at..header_at + 4].copy_from_slice(&(payload_len as u32).to_be_bytes());
    out[header_at + 4..payload_at].copy_from_slice(&crc.to_be_bytes());
}

/// Appends the framed encoding of a served-impression record to `out`.
pub fn encode_served(s: &ServedImpression, out: &mut Vec<u8>) {
    let frame = begin_frame(out);
    out.push(KIND_SERVED);
    out.extend_from_slice(&s.impression_id.to_be_bytes());
    out.extend_from_slice(&s.campaign_id.to_be_bytes());
    out.push(s.os.code());
    out.push(s.browser.code());
    out.push(s.site_type.code());
    out.push(s.ad_format.code());
    end_frame(out, frame);
}

/// Appends the framed encoding of a beacon record to `out`.
///
/// # Panics
/// Panics if the beacon violates wire-field ranges — beacons reaching
/// the journal already passed wire decoding or validation, so an
/// unencodable beacon is a logic error, not an IO condition.
pub fn encode_beacon(b: &Beacon, out: &mut Vec<u8>) {
    let frame = begin_frame(out);
    out.push(KIND_BEACON);
    binary::encode(b, out).expect("journaled beacon encodes");
    end_frame(out, frame);
}

/// Appends the framed encoding of an ack record to `out`.
pub fn encode_ack(impression_id: u64, seq: u16, out: &mut Vec<u8>) {
    let frame = begin_frame(out);
    out.push(KIND_ACK);
    out.extend_from_slice(&impression_id.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    end_frame(out, frame);
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, RecordError> {
    match payload.first().copied() {
        Some(KIND_SERVED) => {
            if payload.len() != 17 {
                return Err(RecordError::BadPayload);
            }
            let impression_id = u64::from_be_bytes(payload[1..9].try_into().unwrap());
            let campaign_id = u32::from_be_bytes(payload[9..13].try_into().unwrap());
            let os = OsKind::from_code(payload[13]).map_err(|_| RecordError::BadPayload)?;
            let browser =
                BrowserKind::from_code(payload[14]).map_err(|_| RecordError::BadPayload)?;
            let site_type =
                SiteType::from_code(payload[15]).map_err(|_| RecordError::BadPayload)?;
            let ad_format =
                AdFormat::from_code(payload[16]).map_err(|_| RecordError::BadPayload)?;
            Ok(WalRecord::Served(ServedImpression {
                impression_id,
                campaign_id,
                os,
                browser,
                site_type,
                ad_format,
            }))
        }
        Some(KIND_BEACON) => {
            if payload.len() != 1 + binary::ENCODED_LEN {
                return Err(RecordError::BadPayload);
            }
            binary::decode(&payload[1..])
                .map(WalRecord::Beacon)
                .map_err(|_| RecordError::BadPayload)
        }
        Some(KIND_ACK) => {
            if payload.len() != 11 {
                return Err(RecordError::BadPayload);
            }
            Ok(WalRecord::Ack {
                impression_id: u64::from_be_bytes(payload[1..9].try_into().unwrap()),
                seq: u16::from_be_bytes(payload[9..11].try_into().unwrap()),
            })
        }
        Some(k) => Err(RecordError::BadKind(k)),
        None => Err(RecordError::Truncated),
    }
}

/// Decodes one frame from the front of `data`.
///
/// Returns the record and the total frame size consumed. Every failure
/// mode — short header, implausible length, short payload, checksum
/// mismatch, undecodable payload — maps to an error the caller treats
/// as the start of a torn tail.
pub fn decode_frame(data: &[u8]) -> Result<(WalRecord, usize), RecordError> {
    if data.len() < FRAME_HEADER_LEN {
        return Err(RecordError::Truncated);
    }
    let len = u32::from_be_bytes(data[0..4].try_into().unwrap());
    if len == 0 || len as usize > MAX_PAYLOAD_LEN {
        return Err(RecordError::BadLength(len));
    }
    let stated_crc = u32::from_be_bytes(data[4..8].try_into().unwrap());
    let end = FRAME_HEADER_LEN + len as usize;
    if data.len() < end {
        return Err(RecordError::Truncated);
    }
    let payload = &data[FRAME_HEADER_LEN..end];
    if crc32(payload) != stated_crc {
        return Err(RecordError::BadChecksum);
    }
    Ok((decode_payload(payload)?, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtag_wire::EventKind;

    fn sample_beacon() -> Beacon {
        Beacon {
            impression_id: 42,
            campaign_id: 7,
            event: EventKind::InView,
            timestamp_us: 9_999,
            ad_format: AdFormat::Video,
            visible_fraction_milli: 800,
            exposure_ms: 1_500,
            os: OsKind::Ios,
            browser: BrowserKind::Safari,
            site_type: SiteType::App,
            seq: 3,
        }
    }

    fn sample_served() -> ServedImpression {
        ServedImpression {
            impression_id: 42,
            campaign_id: 7,
            os: OsKind::Ios,
            browser: BrowserKind::Safari,
            site_type: SiteType::App,
            ad_format: AdFormat::Video,
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn all_three_kinds_round_trip() {
        let mut buf = Vec::new();
        encode_served(&sample_served(), &mut buf);
        encode_beacon(&sample_beacon(), &mut buf);
        encode_ack(42, 3, &mut buf);

        let (r1, n1) = decode_frame(&buf).unwrap();
        assert_eq!(r1, WalRecord::Served(sample_served()));
        let (r2, n2) = decode_frame(&buf[n1..]).unwrap();
        assert_eq!(r2, WalRecord::Beacon(sample_beacon()));
        let (r3, n3) = decode_frame(&buf[n1 + n2..]).unwrap();
        assert_eq!(
            r3,
            WalRecord::Ack {
                impression_id: 42,
                seq: 3
            }
        );
        assert_eq!(n1 + n2 + n3, buf.len());
    }

    #[test]
    fn torn_frames_and_corruption_are_rejected() {
        let mut buf = Vec::new();
        encode_beacon(&sample_beacon(), &mut buf);

        // Short header.
        assert_eq!(decode_frame(&buf[..5]), Err(RecordError::Truncated));
        // Short payload.
        assert_eq!(
            decode_frame(&buf[..buf.len() - 1]),
            Err(RecordError::Truncated)
        );
        // Flipped payload byte.
        let mut bad = buf.clone();
        bad[FRAME_HEADER_LEN + 5] ^= 0x01;
        assert_eq!(decode_frame(&bad), Err(RecordError::BadChecksum));
        // Implausible length field.
        let mut huge = buf.clone();
        huge[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(decode_frame(&huge), Err(RecordError::BadLength(u32::MAX)));
        // Unknown kind with a fixed-up CRC: the frame passes the
        // checksum but the payload is still refused.
        let mut unknown = buf.clone();
        unknown[FRAME_HEADER_LEN] = 99;
        let crc = crc32(&unknown[FRAME_HEADER_LEN..]);
        unknown[4..8].copy_from_slice(&crc.to_be_bytes());
        assert_eq!(decode_frame(&unknown), Err(RecordError::BadKind(99)));
    }
}
