//! The [`StorageBackend`] trait and its two implementations: the
//! default in-memory backend and the WAL-backed durable backend.
//!
//! ## Journal discipline
//!
//! The durable backend guarantees *WAL order equals apply order* per
//! shard: every mutation (register, beacon batch, direct apply)
//! journals and applies inside the owning shard's store lock — applies
//! first, because the journal's rollups fold the per-beacon
//! [`ApplyOutcome`]s the store produces. The order inside the lock is
//! unobservable (no other shard-lock holder can see the pair out of
//! step) and irrelevant to recovery: the in-memory store is exactly
//! what a crash erases, so apply-then-journal and journal-then-apply
//! leave identical recoverable states. Replaying a shard's WAL
//! therefore reproduces the shard's store — records, `SeqSeen` dedup
//! trackers, counters — and, by re-deriving outcomes from the replay
//! applies, its rollup aggregates exactly, no matter where in the
//! record stream a crash cut the log.
//!
//! ## Batch sync: the flusher
//!
//! Under [`SyncPolicy::Batch`] appends never block on the device:
//! each journaled group marks its shard dirty and a per-backend
//! flusher thread turns dirty marks into `sync_data` calls, coalescing
//! bursts into few fsyncs (on filesystems whose journal serialises
//! fsyncs across files, fewer and larger syncs are the only lever).
//! The loss window on a *machine* crash is one flusher sweep; a
//! process crash loses nothing either way (the page cache survives),
//! and graceful shutdown still ends with a synchronous
//! [`StorageBackend::flush`]. Under `--cfg qtag_check` the flusher is
//! compiled out and Batch syncs inline, keeping model runs
//! deterministic.
//!
//! ## Lock order
//!
//! Store shard lock → journal (WAL + rollup) lock, everywhere: the
//! ingest appliers and direct writers take the shard lock and journal
//! inside it; compaction takes the shard lock, then the journal lock,
//! then snapshots both. No path acquires them in the other order, so
//! the pair cannot deadlock, and because appends and compaction both
//! hold the shard lock, a snapshot can never miss a journaled-but-
//! unapplied batch.
//!
//! ## IO errors
//!
//! A failed journal write is counted (`io_errors`), reported on
//! stderr, and *not* propagated into the apply path: the in-memory
//! store stays correct and serving, durability degrades. Panicking in
//! a shard applier would instead wedge the ingest service's shutdown
//! drain — availability-first, like the rest of the pipeline.

use crate::record::{encode_ack, encode_beacon, encode_served};
use crate::rollup::ShardRollup;
use crate::snapshot::{read_snapshot, write_snapshot, ShardSnapshot};
use crate::sync::atomic::Ordering;
use crate::sync::{Arc, Mutex};
use crate::wal::{replay, wal_path, SyncPolicy, WalWriter};
use crate::StoreStats;
use qtag_obs::HistogramSnapshot;
use qtag_server::{
    ApplyOutcome, ImpressionStore, ServedImpression, ShardJournal, ShardedStore, Timeline,
};
use qtag_wire::Beacon;
use std::io;
use std::path::PathBuf;

/// Common surface of the in-memory and durable stores. The collector
/// daemon and the bench pipelines program against this; swapping
/// backends changes durability, never observable analytics.
pub trait StorageBackend: Send + Sync {
    /// The sharded in-memory store every read path serves from.
    fn store(&self) -> &ShardedStore;

    /// Journal hook to thread into [`qtag_server::IngestConfig`] so
    /// shard appliers write ahead; `None` for the in-memory backend.
    fn journal(&self) -> Option<Arc<dyn ShardJournal>>;

    /// Registers a served impression (journaled when durable).
    fn record_served(&self, s: ServedImpression);

    /// Applies one beacon outside the ingest service (journaled when
    /// durable). Test harnesses and replay drivers use this; the hot
    /// path goes through the ingest appliers and [`Self::journal`].
    fn apply(&self, beacon: &Beacon);

    /// Journals an ack confirmation (no store effect; the durable log
    /// keeps the full conversation for audit). No-op when in-memory.
    fn append_ack(&self, impression_id: u64, seq: u16);

    /// Forces everything journaled so far to stable storage.
    fn flush(&self) -> io::Result<()>;

    /// Snapshots every shard and truncates its WAL.
    fn compact(&self) -> io::Result<()>;
}

/// The default backend: the sharded in-memory store, nothing else.
/// Tier-1 tests and every pre-existing call site run on this.
#[derive(Debug, Clone)]
pub struct MemoryBackend {
    store: ShardedStore,
}

impl MemoryBackend {
    /// Wraps a sharded store.
    pub fn new(store: ShardedStore) -> Self {
        MemoryBackend { store }
    }
}

impl StorageBackend for MemoryBackend {
    fn store(&self) -> &ShardedStore {
        &self.store
    }
    fn journal(&self) -> Option<Arc<dyn ShardJournal>> {
        None
    }
    fn record_served(&self, s: ServedImpression) {
        self.store.record_served(s);
    }
    fn apply(&self, beacon: &Beacon) {
        self.store.apply(beacon);
    }
    fn append_ack(&self, _impression_id: u64, _seq: u16) {}
    fn flush(&self) -> io::Result<()> {
        Ok(())
    }
    fn compact(&self) -> io::Result<()> {
        Ok(())
    }
}

/// Configuration for [`DurableBackend::open`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Directory holding `shard-NNN.wal` / `shard-NNN.snap` files
    /// (created if absent).
    pub dir: PathBuf,
    /// Shard count; must match across restarts of the same directory.
    pub shards: usize,
    /// When appended records reach stable storage.
    pub sync: SyncPolicy,
}

impl DurableConfig {
    /// Batch-sync config for `shards` shards under `dir`.
    pub fn new(dir: impl Into<PathBuf>, shards: usize) -> Self {
        DurableConfig {
            dir: dir.into(),
            shards,
            sync: SyncPolicy::Batch,
        }
    }
}

/// What recovery found on open: how much state came back and from
/// where. All counts are summed across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Shards opened.
    pub shards: usize,
    /// Snapshots loaded (≤ shards).
    pub snapshots_loaded: u64,
    /// Total WAL records replayed on top of snapshots.
    pub records_replayed: u64,
    /// Of those, beacon records.
    pub beacons_replayed: u64,
    /// Of those, served-register records.
    pub served_replayed: u64,
    /// Of those, ack records (audit-only, no store effect).
    pub acks_replayed: u64,
    /// Shards whose WAL ended in a torn/corrupt tail that recovery
    /// truncated.
    pub truncated_tails: u64,
    /// WALs discarded because their epoch predated the shard's
    /// snapshot (compaction crash window; contents already snapshot).
    pub stale_wals_discarded: u64,
}

/// One shard's journal: WAL writer + rollup + encode scratch, mutated
/// together. Locked only while the owning shard's store lock is held
/// (see module docs).
struct ShardJournalState {
    writer: WalWriter,
    rollup: ShardRollup,
    /// Reused frame-encoding buffer: group appends encode into this
    /// instead of allocating (and page-faulting) a fresh buffer per
    /// group on the hot path.
    scratch: Vec<u8>,
}

struct DurableInner {
    store: ShardedStore,
    journals: Vec<Mutex<ShardJournalState>>,
    stats: Arc<StoreStats>,
    dir: PathBuf,
    sync: SyncPolicy,
    /// Per-shard dirty marks for the flusher thread (Batch policy).
    #[cfg(not(qtag_check))]
    dirty: Vec<crate::sync::atomic::AtomicBool>,
}

impl DurableInner {
    /// Journals one pre-framed buffer on shard `shard` and settles the
    /// stats. Caller holds the shard's store lock.
    fn journal_bytes(&self, shard: usize, framed: &[u8], records: usize) {
        let mut j = self.journals[shard].lock();
        self.journal_locked(&mut j, shard, framed, records);
    }

    /// Same, with the journal lock already held.
    fn journal_locked(
        &self,
        j: &mut ShardJournalState,
        shard: usize,
        framed: &[u8],
        records: usize,
    ) {
        let syncs = j.writer.syncs_for(records);
        match j.writer.append(framed, records) {
            Ok(()) => {
                if self.sync == SyncPolicy::Batch {
                    // Real build: hand the device round trip to the
                    // flusher thread. Model build: sync inline so the
                    // checker never schedules a foreign IO thread.
                    #[cfg(not(qtag_check))]
                    // ordering: Release pairs with the flusher's
                    // AcqRel swap — the mark is observed only after
                    // the append above.
                    self.dirty[shard].store(true, Ordering::Release);
                    #[cfg(qtag_check)]
                    match j.writer.sync() {
                        Ok(()) => {
                            // ordering: Relaxed — monotone counter.
                            self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            // ordering: Relaxed — monotone counter.
                            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                // ordering: Relaxed — monotone statistics; readers see
                // them through snapshots, no memory is published.
                self.stats
                    .records_appended
                    .fetch_add(records as u64, Ordering::Relaxed);
                // ordering: Relaxed — same counter-only reasoning.
                self.stats.batches_appended.fetch_add(1, Ordering::Relaxed);
                // ordering: Relaxed — same counter-only reasoning.
                self.stats
                    .bytes_appended
                    .fetch_add(framed.len() as u64, Ordering::Relaxed);
                // ordering: Relaxed — same counter-only reasoning.
                self.stats.fsyncs.fetch_add(syncs, Ordering::Relaxed);
            }
            Err(e) => {
                // ordering: Relaxed — error tally, read via snapshots.
                self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                eprintln!("qtag-store: shard {shard} WAL append failed: {e}");
            }
        }
    }
}

impl ShardJournal for DurableInner {
    fn append_beacons(&self, shard: usize, batch: &[Beacon], outcomes: &[ApplyOutcome]) {
        if batch.is_empty() {
            return;
        }
        debug_assert_eq!(batch.len(), outcomes.len());
        let mut j = self.journals[shard].lock();
        let mut framed = std::mem::take(&mut j.scratch);
        framed.clear();
        for (b, o) in batch.iter().zip(outcomes) {
            encode_beacon(b, &mut framed);
            j.rollup.record(b, o);
        }
        self.journal_locked(&mut j, shard, &framed, batch.len());
        j.scratch = framed;
    }
}

/// WAL-backed store: per-shard append-only logs, snapshot compaction,
/// rollup-served timelines. Clones share the backend (`Arc` inside).
#[derive(Clone)]
pub struct DurableBackend {
    inner: Arc<DurableInner>,
}

impl std::fmt::Debug for DurableBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableBackend")
            .field("dir", &self.inner.dir)
            .field("shards", &self.inner.journals.len())
            .finish()
    }
}

impl DurableBackend {
    /// Opens (and recovers) a durable store under `config.dir`.
    ///
    /// Recovery per shard: load the snapshot if one exists, then
    /// replay the WAL on top — unless the WAL's epoch predates the
    /// snapshot (compaction crash window), in which case the WAL's
    /// contents are already inside the snapshot and the log is
    /// discarded. A WAL epoch *newer* than the snapshot means the
    /// snapshot file was lost after compaction — unrecoverable without
    /// inventing data, so it is a hard error. Torn tails are truncated
    /// and counted.
    pub fn open(config: DurableConfig) -> io::Result<(DurableBackend, RecoveryReport)> {
        assert!(config.shards >= 1, "shard count must be positive");
        std::fs::create_dir_all(&config.dir)?;
        let store = ShardedStore::new(config.shards);
        let stats = Arc::new(StoreStats::new());
        let mut report = RecoveryReport {
            shards: config.shards,
            ..RecoveryReport::default()
        };
        let mut journals = Vec::with_capacity(config.shards);

        for shard in 0..config.shards {
            let snap = read_snapshot(&config.dir, shard)?;
            let mut epoch = 0;
            let mut rollup = ShardRollup::new();
            if let Some(snap) = snap {
                epoch = snap.epoch;
                let mut st = store.shard(shard).lock();
                for s in snap.served {
                    st.record_served(s);
                }
                for (id, rec) in snap.records {
                    st.restore_record(id, rec);
                }
                st.restore_counters(
                    snap.orphan_beacons,
                    snap.unique_beacons,
                    snap.total_duplicates,
                );
                rollup = ShardRollup::restore(snap.hourly, &snap.exposure, &snap.fraction);
                report.snapshots_loaded += 1;
                // ordering: Relaxed — recovery-time statistic.
                stats.snapshots_loaded.fetch_add(1, Ordering::Relaxed);
            }

            let path = wal_path(&config.dir, shard);
            let append_at = if path.exists() {
                let r = replay(&path)?;
                if r.header.epoch < epoch {
                    // Stale log from the compaction crash window: its
                    // records are inside the snapshot already.
                    report.stale_wals_discarded += 1;
                    None
                } else if r.header.epoch > epoch {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "shard {shard}: WAL epoch {} but snapshot epoch {epoch} — \
                             snapshot lost after compaction",
                            r.header.epoch
                        ),
                    ));
                } else {
                    if r.torn.is_some() {
                        report.truncated_tails += 1;
                        // ordering: Relaxed — recovery-time statistic.
                        stats.truncated_records.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut st = store.shard(shard).lock();
                    for rec in &r.records {
                        report.records_replayed += 1;
                        match rec {
                            crate::record::WalRecord::Served(s) => {
                                report.served_replayed += 1;
                                st.record_served(s.clone());
                            }
                            crate::record::WalRecord::Beacon(b) => {
                                report.beacons_replayed += 1;
                                let outcome = st.apply(b);
                                rollup.record(b, &outcome);
                            }
                            crate::record::WalRecord::Ack { .. } => {
                                report.acks_replayed += 1;
                            }
                        }
                    }
                    // ordering: Relaxed — recovery-time statistic.
                    stats
                        .records_recovered
                        .fetch_add(r.records.len() as u64, Ordering::Relaxed);
                    Some(r.valid_len)
                }
            } else {
                None
            };
            let writer = WalWriter::open(&config.dir, shard, epoch, append_at, config.sync)?;
            journals.push(Mutex::new(ShardJournalState {
                writer,
                rollup,
                scratch: Vec::new(),
            }));
        }

        let inner = Arc::new(DurableInner {
            store,
            journals,
            stats,
            dir: config.dir,
            sync: config.sync,
            #[cfg(not(qtag_check))]
            dirty: (0..config.shards)
                .map(|_| crate::sync::atomic::AtomicBool::new(false))
                .collect(),
        });
        #[cfg(not(qtag_check))]
        if config.sync == SyncPolicy::Batch {
            let weak = Arc::downgrade(&inner);
            crate::sync::thread::spawn(move || flusher_loop(weak));
        }
        Ok((DurableBackend { inner }, report))
    }

    /// The backend's counters (append volume, fsyncs, recovery,
    /// compactions). Register under `qtag_store` on a metrics
    /// registry.
    pub fn stats(&self) -> &Arc<StoreStats> {
        &self.inner.stats
    }

    /// Hourly rollup timeline merged across shards. Bit-identical to a
    /// timeline fed every journaled beacon (per-shard impression
    /// disjointness; see `tests/sharded_equivalence.rs`).
    pub fn merged_hourly(&self) -> Timeline {
        self.merged_timeline(|r| &r.hourly)
    }

    /// Daily rollup timeline merged across shards, derived exactly
    /// from the hourly buckets (see [`Timeline::coarsen`]).
    pub fn merged_daily(&self) -> Timeline {
        let mut it = self.inner.journals.iter();
        let first = it.next().expect("at least one shard");
        let mut merged = first.lock().rollup.daily();
        for j in it {
            merged.merge(&j.lock().rollup.daily());
        }
        merged
    }

    fn merged_timeline(&self, pick: impl Fn(&ShardRollup) -> &Timeline) -> Timeline {
        let mut it = self.inner.journals.iter();
        let first = it.next().expect("at least one shard");
        let mut merged = Timeline::from_state(pick(&first.lock().rollup).export_state());
        for j in it {
            merged.merge(pick(&j.lock().rollup));
        }
        merged
    }

    /// Exposure-duration histogram (ms) merged across shards.
    pub fn merged_exposure(&self) -> HistogramSnapshot {
        self.merged_hist(|r| &r.exposure)
    }

    /// Visible-fraction histogram (‰) merged across shards.
    pub fn merged_fraction(&self) -> HistogramSnapshot {
        self.merged_hist(|r| &r.fraction)
    }

    fn merged_hist(&self, pick: impl Fn(&ShardRollup) -> &HistogramSnapshot) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for j in &self.inner.journals {
            merged = merged.merge(pick(&j.lock().rollup));
        }
        merged
    }

    /// Snapshots shard `shard` and truncates its WAL. Holds the shard
    /// store lock throughout, so concurrent appliers are excluded and
    /// the snapshot/WAL pair stays consistent.
    pub fn compact_shard(&self, shard: usize) -> io::Result<()> {
        let inner = &self.inner;
        let st = inner.store.shard(shard).lock();
        let mut j = inner.journals[shard].lock();
        let epoch = j.writer.epoch() + 1;

        let mut served: Vec<ServedImpression> = st.iter_joined().map(|(s, _)| s.clone()).collect();
        served.sort_by_key(|s| s.impression_id);
        let mut records: Vec<(u64, qtag_server::ImpressionRecord)> = st
            .iter_joined()
            .filter_map(|(s, r)| r.map(|r| (s.impression_id, r.clone())))
            .collect();
        records.sort_by_key(|(id, _)| *id);
        let (hourly, exposure, fraction) = j.rollup.export();
        let snap = ShardSnapshot {
            epoch,
            orphan_beacons: st.orphan_beacons(),
            unique_beacons: st.unique_beacons(),
            total_duplicates: st.total_duplicates(),
            served,
            records,
            hourly,
            exposure,
            fraction,
        };
        write_snapshot(&inner.dir, shard, &snap)?;
        j.writer.reset_to_epoch(epoch)?;
        // ordering: Relaxed — monotone statistic.
        inner.stats.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Bytes currently in shard `shard`'s WAL (header included) —
    /// the compaction trigger input.
    pub fn wal_len(&self, shard: usize) -> u64 {
        self.inner.journals[shard].lock().writer.len()
    }
}

impl StorageBackend for DurableBackend {
    fn store(&self) -> &ShardedStore {
        &self.inner.store
    }

    fn journal(&self) -> Option<Arc<dyn ShardJournal>> {
        Some(Arc::clone(&self.inner) as Arc<dyn ShardJournal>)
    }

    fn record_served(&self, s: ServedImpression) {
        let inner = &self.inner;
        let shard = inner.store.shard_of(s.impression_id);
        let mut st = inner.store.shard(shard).lock();
        let mut framed = Vec::with_capacity(32);
        encode_served(&s, &mut framed);
        inner.journal_bytes(shard, &framed, 1);
        st.record_served(s);
    }

    fn apply(&self, beacon: &Beacon) {
        let inner = &self.inner;
        let shard = inner.store.shard_of(beacon.impression_id);
        let mut st = inner.store.shard(shard).lock();
        let outcome = st.apply(beacon);
        let mut j = inner.journals[shard].lock();
        let mut framed = std::mem::take(&mut j.scratch);
        framed.clear();
        encode_beacon(beacon, &mut framed);
        j.rollup.record(beacon, &outcome);
        inner.journal_locked(&mut j, shard, &framed, 1);
        j.scratch = framed;
    }

    fn append_ack(&self, impression_id: u64, seq: u16) {
        let inner = &self.inner;
        let shard = inner.store.shard_of(impression_id);
        let _st = inner.store.shard(shard).lock();
        let mut framed = Vec::with_capacity(32);
        encode_ack(impression_id, seq, &mut framed);
        inner.journal_bytes(shard, &framed, 1);
    }

    fn flush(&self) -> io::Result<()> {
        for (shard, j) in self.inner.journals.iter().enumerate() {
            let _st = self.inner.store.shard(shard).lock();
            j.lock().writer.sync()?;
        }
        Ok(())
    }

    fn compact(&self) -> io::Result<()> {
        for shard in 0..self.inner.journals.len() {
            self.compact_shard(shard)?;
        }
        Ok(())
    }
}

/// Applies a full WAL record stream to a bare [`ImpressionStore`] —
/// the reference "full replay" the rollup/recovery equivalence tests
/// compare against.
pub fn replay_into(store: &mut ImpressionStore, records: &[crate::record::WalRecord]) {
    for rec in records {
        match rec {
            crate::record::WalRecord::Served(s) => store.record_served(s.clone()),
            crate::record::WalRecord::Beacon(b) => {
                store.apply(b);
            }
            crate::record::WalRecord::Ack { .. } => {}
        }
    }
}

/// The Batch-policy flusher: turns per-shard dirty marks into
/// `sync_data` calls on a dedicated thread, so appliers never wait on
/// the device. Each sweep clones the current log's file handle under
/// the journal lock (microseconds) and fsyncs *outside* it (the
/// device round trip) — concurrent appends keep flowing, and a WAL
/// rotated by compaction mid-sync just gets a harmless fsync of the
/// retired file. Holds only a `Weak` so the backend can die; the
/// thread notices within one idle sleep and exits.
#[cfg(not(qtag_check))]
fn flusher_loop(inner: crate::sync::Weak<DurableInner>) {
    use crate::sync::{thread, time::Duration};
    loop {
        let Some(inner) = inner.upgrade() else { break };
        let mut any = false;
        for (shard, dirty) in inner.dirty.iter().enumerate() {
            // ordering: AcqRel pairs with the Release store in
            // `journal_locked` — clearing the mark happens-after the
            // append it covers, so the handle cloned below sees those
            // bytes.
            if dirty.swap(false, Ordering::AcqRel) {
                any = true;
                let handle = inner.journals[shard].lock().writer.sync_handle();
                match handle.and_then(|f| f.sync_data()) {
                    Ok(()) => {
                        // ordering: Relaxed — monotone counter.
                        inner.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        // ordering: Relaxed — monotone counter.
                        inner.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        drop(inner); // release the Arc before sleeping
        if !any {
            thread::sleep(Duration::from_millis(1));
        }
    }
}
