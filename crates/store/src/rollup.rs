//! Time-windowed rollups maintained alongside the WAL.
//!
//! Every beacon a shard journals is also folded into the shard's
//! rollup — an hourly [`Timeline`] plus exposure-duration and
//! visible-fraction histograms — so week-scale campaign timelines read
//! from a handful of pre-aggregated buckets instead of re-scanning raw
//! beacons. The daily timeline is *derived* from the hourly one on
//! read ([`Timeline::coarsen`] is exact, not approximate), so the hot
//! path maintains one timeline, not two.
//!
//! The fold is **outcome-driven**: the store's [`ApplyOutcome`] says
//! whether the beacon crossed the measurable/viewed boundary, so the
//! rollup touches only bucket counters and never keeps per-impression
//! cohort maps of its own. That keeps the journal critical section —
//! which the durable backend runs for every beacon — free of
//! per-impression hash lookups; dedup state lives in the store once.
//!
//! The rollup rides the shard's journal critical section, so its
//! contents correspond exactly to the journaled record prefix:
//! replaying a WAL through a fresh store and folding the replay
//! outcomes reproduces the live rollup bit for bit, and merging
//! per-shard rollups on read is bit-identical to one rollup fed the
//! combined stream (the `Timeline::merge` / `HistogramSnapshot::merge`
//! properties the sharded layer already proves).

use qtag_obs::{bucket_index, HistogramSnapshot};
use qtag_server::{ApplyOutcome, Timeline, TimelineState};
use qtag_wire::Beacon;

use crate::snapshot::SparseHist;

/// Hourly buckets per daily bucket.
const HOURS_PER_DAY: u64 = 24;

/// One shard's rollup aggregates. Not internally synchronized — lives
/// inside the shard's journal lock.
#[derive(Debug)]
pub struct ShardRollup {
    /// Hourly-bucket timeline (daily derives from it; see [`Self::daily`]).
    pub hourly: Timeline,
    /// Exposure durations (ms) across all journaled beacons.
    pub exposure: HistogramSnapshot,
    /// Visible fractions (‰) across all journaled beacons.
    pub fraction: HistogramSnapshot,
}

impl Default for ShardRollup {
    fn default() -> Self {
        Self::new()
    }
}

/// Adds one observation to an owned histogram snapshot (the
/// single-writer, lock-held counterpart of `Histogram::record`).
/// Saturating like the atomic path, so rollups and merges agree.
fn fold(h: &mut HistogramSnapshot, v: u64) {
    let b = &mut h.buckets[bucket_index(v)];
    *b = b.saturating_add(1);
    h.count = h.count.saturating_add(1);
    h.sum = h.sum.saturating_add(v);
}

impl ShardRollup {
    /// An empty rollup.
    pub fn new() -> Self {
        ShardRollup {
            hourly: Timeline::hourly(),
            exposure: HistogramSnapshot::empty(),
            fraction: HistogramSnapshot::empty(),
        }
    }

    /// Folds one journaled beacon into every window, gated by the
    /// store's apply outcome (see module docs).
    pub fn record(&mut self, beacon: &Beacon, outcome: &ApplyOutcome) {
        self.hourly.record_outcome(beacon, outcome);
        fold(&mut self.exposure, u64::from(beacon.exposure_ms));
        fold(&mut self.fraction, u64::from(beacon.visible_fraction_milli));
    }

    /// The daily timeline, derived exactly from the hourly buckets.
    pub fn daily(&self) -> Timeline {
        self.hourly.coarsen(HOURS_PER_DAY)
    }

    /// Persistence form of the histograms and the hourly timeline
    /// (daily is derived, so it is not persisted).
    pub fn export(&self) -> (TimelineState, SparseHist, SparseHist) {
        (
            self.hourly.export_state(),
            (
                self.exposure.count,
                self.exposure.sum,
                self.exposure.sparse(),
            ),
            (
                self.fraction.count,
                self.fraction.sum,
                self.fraction.sparse(),
            ),
        )
    }

    /// Rebuilds a rollup from its persisted form.
    pub fn restore(hourly: TimelineState, exposure: &SparseHist, fraction: &SparseHist) -> Self {
        ShardRollup {
            hourly: Timeline::from_state(hourly),
            exposure: HistogramSnapshot::from_sparse(&exposure.2, exposure.0, exposure.1),
            fraction: HistogramSnapshot::from_sparse(&fraction.2, fraction.0, fraction.1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qtag_server::{ImpressionStore, ServedImpression};
    use qtag_wire::{AdFormat, BrowserKind, EventKind, OsKind, SiteType};

    fn beacon(id: u64, seq: u16, event: EventKind, ts: u64) -> Beacon {
        Beacon {
            impression_id: id,
            campaign_id: 1,
            event,
            timestamp_us: ts,
            ad_format: AdFormat::Display,
            visible_fraction_milli: 350 + seq * 10,
            exposure_ms: 500 + u32::from(seq) * 250,
            os: OsKind::Android,
            browser: BrowserKind::Chrome,
            site_type: SiteType::Browser,
            seq,
        }
    }

    /// A store pre-registered for `ids`, so rollup tests can produce
    /// real apply outcomes (the only way rollups are ever fed).
    fn store_with(ids: std::ops::Range<u64>) -> ImpressionStore {
        let mut st = ImpressionStore::default();
        for id in ids {
            st.record_served(ServedImpression {
                impression_id: id,
                campaign_id: 1,
                os: OsKind::Android,
                browser: BrowserKind::Chrome,
                site_type: SiteType::Browser,
                ad_format: AdFormat::Display,
            });
        }
        st
    }

    #[test]
    fn export_restore_round_trip_then_identical_evolution() {
        const HOUR: u64 = 3_600 * 1_000_000;
        let mut st = store_with(0..10);
        let mut live = ShardRollup::new();
        for id in 0..10u64 {
            for b in [
                beacon(id, 0, EventKind::Measurable, id * HOUR / 2),
                beacon(id, 1, EventKind::InView, id * HOUR / 2 + 1),
            ] {
                let o = st.apply(&b);
                live.record(&b, &o);
            }
        }
        let (h, e, f) = live.export();
        let mut restored = ShardRollup::restore(h.clone(), &e, &f);
        assert_eq!(restored.export(), live.export());
        assert_eq!(restored.exposure, live.exposure);
        assert_eq!(restored.fraction, live.fraction);
        assert_eq!(restored.daily().export_state(), live.daily().export_state());

        // Further folding evolves both identically (dedup state lives
        // in the store, so the replayed InView does not double-count).
        for id in 0..10u64 {
            let b = beacon(id, 2, EventKind::InView, 30 * HOUR);
            let o = st.apply(&b);
            live.record(&b, &o);
            restored.record(&b, &o);
        }
        assert_eq!(restored.export(), live.export());
        assert_eq!(
            live.hourly.total_viewed(),
            10,
            "still one view per impression"
        );
    }

    #[test]
    fn outcome_fold_matches_raw_timeline_on_clean_streams() {
        // On a stream with no orphans and no duplicates, the
        // outcome-driven fold must reproduce `Timeline::record`
        // bucket-for-bucket — hourly and derived daily both.
        const HOUR: u64 = 3_600 * 1_000_000;
        let mut st = store_with(0..25);
        let mut rollup = ShardRollup::new();
        let mut raw_hourly = Timeline::hourly();
        let mut raw_daily = Timeline::daily();
        for id in 0..25u64 {
            for (seq, ev) in [
                (0, EventKind::TagLoaded),
                (1, EventKind::Measurable),
                (2, EventKind::InView),
                (3, EventKind::Heartbeat),
            ] {
                let b = beacon(id, seq, ev, id * 5 * HOUR + u64::from(seq));
                let o = st.apply(&b);
                assert!(o.applied);
                rollup.record(&b, &o);
                raw_hourly.record(&b);
                raw_daily.record(&b);
            }
        }
        let hourly = rollup.hourly.export_state();
        let raw = raw_hourly.export_state();
        assert_eq!(hourly.buckets, raw.buckets);
        assert_eq!(
            rollup.daily().export_state().buckets,
            raw_daily.export_state().buckets
        );
    }

    #[test]
    fn outcome_fold_is_store_gated_on_dirty_streams() {
        // A duplicate (impression, seq) retry and an orphan beacon
        // still count as journaled beacons but cannot inflate the
        // measured/viewed cohorts: the store rejected them.
        const HOUR: u64 = 3_600 * 1_000_000;
        let mut st = store_with(0..1);
        let mut rollup = ShardRollup::new();
        let deliveries = [
            beacon(0, 0, EventKind::Measurable, HOUR / 2),
            beacon(0, 0, EventKind::Measurable, HOUR / 2), // retry duplicate
            beacon(99, 0, EventKind::Measurable, HOUR / 2), // orphan: never served
            beacon(0, 1, EventKind::InView, HOUR / 2 + 1),
        ];
        for b in &deliveries {
            let o = st.apply(b);
            rollup.record(b, &o);
        }
        let state = rollup.hourly.export_state();
        assert_eq!(state.buckets.len(), 1);
        let (_, stats) = state.buckets[0];
        assert_eq!(stats.beacons, 4, "every journaled beacon counts");
        assert_eq!(stats.measured, 1, "duplicate and orphan gated out");
        assert_eq!(stats.viewed, 1);
    }

    #[test]
    fn per_shard_rollups_merge_to_a_single_fed_reference() {
        const HOUR: u64 = 3_600 * 1_000_000;
        let mut ref_store = store_with(0..40);
        let mut reference = ShardRollup::new();
        let mut shard_stores: Vec<ImpressionStore> = (0..4).map(|_| store_with(0..40)).collect();
        let mut shards: Vec<ShardRollup> = (0..4).map(|_| ShardRollup::new()).collect();
        for id in 0..40u64 {
            for (seq, ev) in [(0, EventKind::Measurable), (1, EventKind::InView)] {
                let b = beacon(id, seq, ev, id * HOUR / 3);
                let o = ref_store.apply(&b);
                reference.record(&b, &o);
                let s = qtag_server::shard_of(id, 4);
                let o = shard_stores[s].apply(&b);
                shards[s].record(&b, &o);
            }
        }
        let mut merged_hourly = Timeline::hourly();
        let mut merged_exposure = HistogramSnapshot::empty();
        for s in &shards {
            merged_hourly.merge(&s.hourly);
            merged_exposure = merged_exposure.merge(&s.exposure);
        }
        assert_eq!(
            merged_hourly.export_state(),
            reference.hourly.export_state()
        );
        assert_eq!(merged_exposure, reference.exposure);
    }
}
