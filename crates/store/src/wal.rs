//! Per-shard append-only write-ahead log: file layout, the writer, and
//! torn-tail-tolerant replay.
//!
//! Each shard owns one file, `shard-NNN.wal`:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "QTWL"
//! 4       2     format version (big-endian u16, currently 1)
//! 6       2     shard index (big-endian u16)
//! 8       8     epoch (big-endian u64)
//! 16      ...   frames (see record.rs)
//! ```
//!
//! The **epoch** ties a WAL to the snapshot generation it continues.
//! Compaction writes a snapshot stamped `epoch + 1` and then replaces
//! the WAL with a fresh one stamped `epoch + 1`; both replacements are
//! atomic renames, so a crash between them leaves a new snapshot next
//! to an *old* WAL. Recovery detects that by the epoch mismatch and
//! discards the stale WAL — every record in it is already folded into
//! the snapshot, so replaying it would double-count.
//!
//! **Torn tails.** Appends can be cut anywhere by a crash. Replay
//! walks frames until the first invalid one (short header, short
//! payload, implausible length, CRC mismatch, undecodable payload),
//! keeps everything before it, and reports the byte offset where the
//! valid prefix ends so the caller can truncate the file and resume
//! appending cleanly. Nothing after the first invalid frame is ever
//! interpreted — a torn write can lose the tail, never invent data.

use crate::record::{self, RecordError, WalRecord};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// WAL file magic: ASCII `QTWL`.
pub const WAL_MAGIC: [u8; 4] = *b"QTWL";
/// Current WAL format version.
pub const WAL_VERSION: u16 = 1;
/// WAL header size in bytes.
pub const WAL_HEADER_LEN: usize = 16;

/// When the OS is told to push appended records to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Never fsync; the OS flushes on its own schedule. Fastest, and a
    /// *process* crash still loses nothing (the page cache survives) —
    /// only a machine crash can.
    NoSync,
    /// Group-coalesced syncing: every appended group schedules an
    /// fsync with the backend's flusher thread, which folds bursts
    /// into few device round trips — the append path itself never
    /// blocks on the device. Everything journaled is on stable storage
    /// by the time a graceful shutdown's flush returns; the loss
    /// window on a *machine* crash mid-run is one flusher sweep.
    /// (Under `--cfg qtag_check` the flusher is compiled out and the
    /// backend syncs inline per group instead, deterministically.)
    #[default]
    Batch,
    /// One fsync per record. Maximal durability, pays a device round
    /// trip per beacon.
    Record,
}

impl std::str::FromStr for SyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" | "no" | "nosync" => Ok(SyncPolicy::NoSync),
            "batch" => Ok(SyncPolicy::Batch),
            "record" => Ok(SyncPolicy::Record),
            other => Err(format!(
                "unknown sync policy {other:?} (expected none|batch|record)"
            )),
        }
    }
}

/// File name of shard `idx`'s WAL inside the store directory.
pub fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}.wal"))
}

fn encode_header(shard: u16, epoch: u64) -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[0..4].copy_from_slice(&WAL_MAGIC);
    h[4..6].copy_from_slice(&WAL_VERSION.to_be_bytes());
    h[6..8].copy_from_slice(&shard.to_be_bytes());
    h[8..16].copy_from_slice(&epoch.to_be_bytes());
    h
}

/// Parsed WAL header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalHeader {
    /// Shard index stamped at creation.
    pub shard: u16,
    /// Snapshot generation this log continues.
    pub epoch: u64,
}

fn decode_header(bytes: &[u8]) -> io::Result<WalHeader> {
    if bytes.len() < WAL_HEADER_LEN
        || bytes[0..4] != WAL_MAGIC
        || u16::from_be_bytes(bytes[4..6].try_into().unwrap()) != WAL_VERSION
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a QTWL v1 write-ahead log",
        ));
    }
    Ok(WalHeader {
        shard: u16::from_be_bytes(bytes[6..8].try_into().unwrap()),
        epoch: u64::from_be_bytes(bytes[8..16].try_into().unwrap()),
    })
}

/// Everything replay learned from one WAL file.
#[derive(Debug)]
pub struct Replay {
    /// Header of the file (present even when the record area is empty).
    pub header: WalHeader,
    /// The valid record prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset where the valid prefix ends (file length when the
    /// whole log was clean).
    pub valid_len: u64,
    /// The decode failure that terminated replay, if the tail was torn.
    pub torn: Option<RecordError>,
    /// Bytes discarded after the valid prefix.
    pub discarded_bytes: u64,
}

/// Reads and validates one WAL file front to back.
///
/// IO errors (not *decode* errors) propagate: an unreadable file is an
/// operational problem, not a torn tail.
pub fn replay(path: &Path) -> io::Result<Replay> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let header = decode_header(&bytes)?;
    let mut records = Vec::new();
    let mut off = WAL_HEADER_LEN;
    let mut torn = None;
    while off < bytes.len() {
        match record::decode_frame(&bytes[off..]) {
            Ok((rec, consumed)) => {
                records.push(rec);
                off += consumed;
            }
            Err(e) => {
                torn = Some(e);
                break;
            }
        }
    }
    Ok(Replay {
        header,
        records,
        valid_len: off as u64,
        torn,
        discarded_bytes: (bytes.len() - off) as u64,
    })
}

/// Append handle for one shard's WAL. Not internally synchronized —
/// the durable backend wraps each writer in its shard mutex, matching
/// the one-applier-per-shard ingest design.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    shard: u16,
    epoch: u64,
    policy: SyncPolicy,
    /// Bytes currently in the file (header + records).
    len: u64,
}

impl WalWriter {
    /// Opens shard `shard`'s WAL for appending, creating it (with a
    /// fresh header at `epoch`) when absent or empty. An existing file
    /// must already be validated/truncated by recovery; this seeks to
    /// `append_at` (the valid length recovery reported).
    pub fn open(
        dir: &Path,
        shard: usize,
        epoch: u64,
        append_at: Option<u64>,
        policy: SyncPolicy,
    ) -> io::Result<WalWriter> {
        let path = wal_path(dir, shard);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let existing = file.metadata()?.len();
        let len = match append_at {
            Some(at) if existing >= WAL_HEADER_LEN as u64 => {
                // Recovery validated the prefix; drop any torn tail so
                // future appends start on a record boundary.
                file.set_len(at)?;
                at
            }
            _ => {
                file.set_len(0)?;
                file.write_all(&encode_header(shard as u16, epoch))?;
                file.sync_data()?;
                WAL_HEADER_LEN as u64
            }
        };
        file.seek(SeekFrom::Start(len))?;
        Ok(WalWriter {
            file,
            path,
            shard: shard as u16,
            epoch,
            policy,
            len,
        })
    }

    /// The epoch stamped in this log's header.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bytes currently in the file (header included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the log holds no records (header only).
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN as u64
    }

    /// Appends one pre-framed batch buffer (built with the `record`
    /// encoders) and applies the sync policy. `records` is the record
    /// count inside `framed`, used only to honour
    /// [`SyncPolicy::Record`] accounting — the bytes land in one
    /// `write_all` either way (frames are self-delimiting, so batch
    /// writes and record writes are indistinguishable on replay).
    pub fn append(&mut self, framed: &[u8], records: usize) -> io::Result<()> {
        if framed.is_empty() {
            return Ok(());
        }
        self.file.write_all(framed)?;
        self.len += framed.len() as u64;
        match self.policy {
            SyncPolicy::NoSync => {}
            // The backend schedules the sync (flusher thread, or
            // inline under qtag_check) — never this append path.
            SyncPolicy::Batch => {}
            SyncPolicy::Record => {
                // One durable point per record is the contract; with
                // the batch already written the best a single file can
                // do is fsync once per record boundary — equivalent
                // durability, same device-round-trip count as looping
                // write+fsync, without splitting the write.
                for _ in 0..records.max(1) {
                    self.file.sync_data()?;
                }
            }
        }
        Ok(())
    }

    /// Forces everything appended so far to stable storage regardless
    /// of policy (shutdown flush).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Number of fsyncs [`WalWriter::append`] will issue *itself* for
    /// a batch of `records` records under the current policy. Batch is
    /// zero here: its syncs happen on the backend's flusher thread
    /// (counted there), not on the append path.
    pub fn syncs_for(&self, records: usize) -> u64 {
        match self.policy {
            SyncPolicy::NoSync | SyncPolicy::Batch => 0,
            SyncPolicy::Record => records.max(1) as u64,
        }
    }

    /// A dup'd handle to the current log file, for the flusher thread:
    /// `sync_data` on it pushes everything appended so far to stable
    /// storage without holding the journal lock across the device
    /// round trip.
    pub fn sync_handle(&self) -> io::Result<File> {
        self.file.try_clone()
    }

    /// Replaces the log with a fresh, empty one stamped `epoch`,
    /// via tmp-file + atomic rename (the compaction tail; see the
    /// module docs for the crash windows).
    pub fn reset_to_epoch(&mut self, epoch: u64) -> io::Result<()> {
        let tmp = self.path.with_extension("wal.tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(&encode_header(self.shard, epoch))?;
        f.sync_data()?;
        std::fs::rename(&tmp, &self.path)?;
        f.seek(SeekFrom::Start(WAL_HEADER_LEN as u64))?;
        self.file = f;
        self.epoch = epoch;
        self.len = WAL_HEADER_LEN as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_ack, encode_beacon, encode_served};
    use crate::test_dir;
    use qtag_server::ServedImpression;
    use qtag_wire::{AdFormat, Beacon, BrowserKind, EventKind, OsKind, SiteType};

    fn beacon(id: u64, seq: u16) -> Beacon {
        Beacon {
            impression_id: id,
            campaign_id: 1,
            event: EventKind::Measurable,
            timestamp_us: 1_000 * u64::from(seq),
            ad_format: AdFormat::Display,
            visible_fraction_milli: 600,
            exposure_ms: 1_200,
            os: OsKind::Android,
            browser: BrowserKind::Chrome,
            site_type: SiteType::Browser,
            seq,
        }
    }

    #[test]
    fn append_replay_round_trip_preserves_order() {
        let dir = test_dir("wal_round_trip");
        let mut w = WalWriter::open(&dir, 0, 0, None, SyncPolicy::Batch).unwrap();
        let mut framed = Vec::new();
        encode_served(
            &ServedImpression {
                impression_id: 9,
                campaign_id: 2,
                os: OsKind::Ios,
                browser: BrowserKind::Safari,
                site_type: SiteType::App,
                ad_format: AdFormat::Video,
            },
            &mut framed,
        );
        for seq in 0..5 {
            encode_beacon(&beacon(9, seq), &mut framed);
        }
        encode_ack(9, 4, &mut framed);
        w.append(&framed, 7).unwrap();

        let r = replay(&wal_path(&dir, 0)).unwrap();
        assert_eq!(r.header, WalHeader { shard: 0, epoch: 0 });
        assert_eq!(r.records.len(), 7);
        assert!(r.torn.is_none());
        assert_eq!(r.discarded_bytes, 0);
        assert!(matches!(r.records[0], WalRecord::Served(_)));
        for (i, rec) in r.records[1..6].iter().enumerate() {
            assert_eq!(rec, &WalRecord::Beacon(beacon(9, i as u16)));
        }
        assert_eq!(
            r.records[6],
            WalRecord::Ack {
                impression_id: 9,
                seq: 4
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_stops_at_last_valid_record_and_reopen_truncates() {
        let dir = test_dir("wal_torn_tail");
        let mut w = WalWriter::open(&dir, 3, 7, None, SyncPolicy::NoSync).unwrap();
        let mut framed = Vec::new();
        for seq in 0..4 {
            encode_beacon(&beacon(1, seq), &mut framed);
        }
        w.append(&framed, 4).unwrap();
        w.sync().unwrap();
        let full = w.len();
        drop(w);

        // Tear the last record in half.
        let path = wal_path(&dir, 3);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full - 10).unwrap();
        drop(f);

        let r = replay(&path).unwrap();
        assert_eq!(r.header.epoch, 7);
        assert_eq!(r.records.len(), 3, "last record lost, prefix kept");
        assert_eq!(r.torn, Some(RecordError::Truncated));
        assert!(r.discarded_bytes > 0);

        // Reopening at the reported valid length truncates the torn
        // bytes; subsequent appends replay cleanly.
        let mut w = WalWriter::open(&dir, 3, 7, Some(r.valid_len), SyncPolicy::NoSync).unwrap();
        assert_eq!(w.len(), r.valid_len);
        let mut framed = Vec::new();
        encode_beacon(&beacon(1, 9), &mut framed);
        w.append(&framed, 1).unwrap();
        w.sync().unwrap();
        let r2 = replay(&path).unwrap();
        assert!(r2.torn.is_none());
        assert_eq!(r2.records.len(), 4);
        assert_eq!(r2.records[3], WalRecord::Beacon(beacon(1, 9)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_in_tail_is_caught_by_the_frame_crc() {
        let dir = test_dir("wal_bit_flip");
        let mut w = WalWriter::open(&dir, 0, 0, None, SyncPolicy::NoSync).unwrap();
        let mut framed = Vec::new();
        for seq in 0..3 {
            encode_beacon(&beacon(5, seq), &mut framed);
        }
        w.append(&framed, 3).unwrap();
        w.sync().unwrap();
        let full = w.len();
        drop(w);

        let path = wal_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = full as usize - 20;
        bytes[last] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let r = replay(&path).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.torn, Some(RecordError::BadChecksum));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reset_to_epoch_replaces_the_log_atomically() {
        let dir = test_dir("wal_reset");
        let mut w = WalWriter::open(&dir, 1, 4, None, SyncPolicy::Batch).unwrap();
        let mut framed = Vec::new();
        encode_beacon(&beacon(2, 0), &mut framed);
        w.append(&framed, 1).unwrap();
        assert!(!w.is_empty());
        w.reset_to_epoch(5).unwrap();
        assert!(w.is_empty());
        assert_eq!(w.epoch(), 5);

        // The new log accepts appends and replays with the new epoch.
        let mut framed = Vec::new();
        encode_beacon(&beacon(2, 1), &mut framed);
        w.append(&framed, 1).unwrap();
        drop(w);
        let r = replay(&wal_path(&dir, 1)).unwrap();
        assert_eq!(r.header.epoch, 5);
        assert_eq!(r.records, vec![WalRecord::Beacon(beacon(2, 1))]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sync_policy_parses_and_counts_fsyncs() {
        assert_eq!("none".parse::<SyncPolicy>().unwrap(), SyncPolicy::NoSync);
        assert_eq!("batch".parse::<SyncPolicy>().unwrap(), SyncPolicy::Batch);
        assert_eq!("record".parse::<SyncPolicy>().unwrap(), SyncPolicy::Record);
        assert!("hourly".parse::<SyncPolicy>().is_err());

        let dir = test_dir("wal_sync_policy");
        let w = WalWriter::open(&dir, 0, 0, None, SyncPolicy::Record).unwrap();
        assert_eq!(w.syncs_for(5), 5);
        let w2 = WalWriter::open(&dir, 1, 0, None, SyncPolicy::NoSync).unwrap();
        assert_eq!(w2.syncs_for(5), 0);
        let w3 = WalWriter::open(&dir, 2, 0, None, SyncPolicy::Batch).unwrap();
        assert_eq!(
            w3.syncs_for(5),
            0,
            "batch syncs ride the flusher, not the append"
        );
        drop((w, w2, w3));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
