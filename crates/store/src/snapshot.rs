//! Shard snapshots: the compaction artifact that lets the WAL be
//! truncated.
//!
//! A snapshot is the *complete* durable state of one shard — store
//! records (including the `SeqSeen` dedup trackers, bit for bit),
//! store counters, and the rollup aggregates — stamped with the epoch
//! its successor WAL will carry. File layout:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "QTSS"
//! 4       2     format version (big-endian u16, currently 1)
//! 6       2     shard index (big-endian u16)
//! 8       8     epoch (big-endian u64)
//! 16      n     body (counters, served log, records, rollups)
//! 16+n    4     CRC-32/IEEE over the body (big-endian u32)
//! ```
//!
//! Snapshots are written to a temp file, fsynced, then atomically
//! renamed over `shard-NNN.snap` — a reader sees the old snapshot or
//! the new one, never a torn hybrid; the trailing CRC guards against
//! media corruption. A snapshot that fails validation is a hard
//! recovery error (unlike a torn WAL tail there is no safe prefix to
//! salvage — better to stop than to silently drop a shard's history).

use crate::record::crc32;
use qtag_server::{BucketStats, ImpressionRecord, SeqSeen, ServedImpression, TimelineState};
use qtag_wire::{AdFormat, BrowserKind, OsKind, SiteType};
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Snapshot file magic: ASCII `QTSS`.
pub const SNAP_MAGIC: [u8; 4] = *b"QTSS";
/// Current snapshot format version.
pub const SNAP_VERSION: u16 = 1;

/// File name of shard `idx`'s snapshot inside the store directory.
pub fn snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:03}.snap"))
}

/// Sparse histogram persistence form: `(count, sum, nonzero buckets)`.
pub type SparseHist = (u64, u64, Vec<(u32, u64)>);

/// The complete durable state of one shard at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Epoch the successor WAL carries.
    pub epoch: u64,
    /// Store counter: beacons for unknown impressions.
    pub orphan_beacons: u64,
    /// Store counter: unique beacons applied.
    pub unique_beacons: u64,
    /// Store counter: duplicates discarded.
    pub total_duplicates: u64,
    /// Served log, ascending by impression id.
    pub served: Vec<ServedImpression>,
    /// Measurement records, ascending by impression id.
    pub records: Vec<(u64, ImpressionRecord)>,
    /// Hourly rollup timeline (the daily timeline is derived from it
    /// on read, so it is not persisted).
    pub hourly: TimelineState,
    /// Exposure-duration rollup histogram (ms).
    pub exposure: SparseHist,
    /// Visible-fraction rollup histogram (‰).
    pub fraction: SparseHist,
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_seen(out: &mut Vec<u8>, seen: &SeqSeen) {
    match seen {
        SeqSeen::Sparse(v) => {
            out.push(0);
            put_u32(out, v.len() as u32);
            for s in v {
                put_u16(out, *s);
            }
        }
        SeqSeen::Dense(bits) => {
            out.push(1);
            for w in bits.iter() {
                put_u64(out, *w);
            }
        }
    }
}

fn put_record(out: &mut Vec<u8>, rec: &ImpressionRecord) {
    let flags = u8::from(rec.tag_loaded)
        | u8::from(rec.measurable) << 1
        | u8::from(rec.in_view) << 2
        | u8::from(rec.out_of_view) << 3
        | u8::from(rec.clicked) << 4;
    out.push(flags);
    put_u32(out, rec.beacons);
    put_u64(out, rec.duplicates);
    put_u16(out, rec.max_seq);
    put_u16(out, rec.last_fraction_milli);
    put_u32(out, rec.best_exposure_ms);
    put_u64(out, rec.first_measured_us);
    put_seen(out, &rec.seen);
}

fn put_timeline(out: &mut Vec<u8>, t: &TimelineState) {
    put_u64(out, t.bucket_us);
    put_u32(out, t.buckets.len() as u32);
    for (bucket, s) in &t.buckets {
        put_u64(out, *bucket);
        put_u64(out, s.beacons);
        put_u64(out, s.measured);
        put_u64(out, s.viewed);
    }
    put_u32(out, t.first_measured.len() as u32);
    for (id, bucket) in &t.first_measured {
        put_u64(out, *id);
        put_u64(out, *bucket);
    }
    put_u32(out, t.viewed.len() as u32);
    for (id, viewed) in &t.viewed {
        put_u64(out, *id);
        out.push(u8::from(*viewed));
    }
}

fn put_hist(out: &mut Vec<u8>, (count, sum, pairs): &SparseHist) {
    put_u64(out, *count);
    put_u64(out, *sum);
    put_u32(out, pairs.len() as u32);
    for (i, n) in pairs {
        put_u32(out, *i);
        put_u64(out, *n);
    }
}

fn encode_body(s: &ShardSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + s.served.len() * 16 + s.records.len() * 32);
    put_u64(&mut out, s.orphan_beacons);
    put_u64(&mut out, s.unique_beacons);
    put_u64(&mut out, s.total_duplicates);
    put_u32(&mut out, s.served.len() as u32);
    for sv in &s.served {
        put_u64(&mut out, sv.impression_id);
        put_u32(&mut out, sv.campaign_id);
        out.push(sv.os.code());
        out.push(sv.browser.code());
        out.push(sv.site_type.code());
        out.push(sv.ad_format.code());
    }
    put_u32(&mut out, s.records.len() as u32);
    for (id, rec) in &s.records {
        put_u64(&mut out, *id);
        put_record(&mut out, rec);
    }
    put_timeline(&mut out, &s.hourly);
    put_hist(&mut out, &s.exposure);
    put_hist(&mut out, &s.fraction);
    out
}

/// Strict cursor over the snapshot body; every read is bounds-checked
/// so a corrupt length field errors instead of panicking.
struct Cursor<'a> {
    data: &'a [u8],
    off: usize,
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("corrupt snapshot: {what}"),
    )
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.off.checked_add(n).ok_or_else(|| corrupt("overflow"))?;
        if end > self.data.len() {
            return Err(corrupt("short body"));
        }
        let s = &self.data[self.off..end];
        self.off = end;
        Ok(s)
    }
    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }
    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// A length prefix that must be satisfiable by the remaining bytes
    /// at `min_item` bytes per item (rejects allocation-bomb lengths).
    fn len(&mut self, min_item: usize) -> io::Result<usize> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item.max(1)) > self.data.len() - self.off {
            return Err(corrupt("length exceeds body"));
        }
        Ok(n)
    }
}

fn get_seen(c: &mut Cursor) -> io::Result<SeqSeen> {
    match c.u8()? {
        0 => {
            let n = c.len(2)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(c.u16()?);
            }
            Ok(SeqSeen::Sparse(v))
        }
        1 => {
            let mut bits = Box::new([0u64; 1024]);
            for w in bits.iter_mut() {
                *w = c.u64()?;
            }
            Ok(SeqSeen::Dense(bits))
        }
        _ => Err(corrupt("seq tracker kind")),
    }
}

fn get_record(c: &mut Cursor) -> io::Result<ImpressionRecord> {
    let flags = c.u8()?;
    Ok(ImpressionRecord {
        tag_loaded: flags & 1 != 0,
        measurable: flags & 2 != 0,
        in_view: flags & 4 != 0,
        out_of_view: flags & 8 != 0,
        clicked: flags & 16 != 0,
        beacons: c.u32()?,
        duplicates: c.u64()?,
        max_seq: c.u16()?,
        last_fraction_milli: c.u16()?,
        best_exposure_ms: c.u32()?,
        first_measured_us: c.u64()?,
        seen: get_seen(c)?,
    })
}

fn get_timeline(c: &mut Cursor) -> io::Result<TimelineState> {
    let bucket_us = c.u64()?;
    if bucket_us == 0 {
        return Err(corrupt("zero timeline bucket width"));
    }
    let n = c.len(32)?;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        let bucket = c.u64()?;
        buckets.push((
            bucket,
            BucketStats {
                beacons: c.u64()?,
                measured: c.u64()?,
                viewed: c.u64()?,
            },
        ));
    }
    let n = c.len(16)?;
    let mut first_measured = Vec::with_capacity(n);
    for _ in 0..n {
        first_measured.push((c.u64()?, c.u64()?));
    }
    let n = c.len(9)?;
    let mut viewed = Vec::with_capacity(n);
    for _ in 0..n {
        viewed.push((c.u64()?, c.u8()? != 0));
    }
    Ok(TimelineState {
        bucket_us,
        buckets,
        first_measured,
        viewed,
    })
}

fn get_hist(c: &mut Cursor) -> io::Result<SparseHist> {
    let count = c.u64()?;
    let sum = c.u64()?;
    let n = c.len(12)?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push((c.u32()?, c.u64()?));
    }
    Ok((count, sum, pairs))
}

fn decode_body(body: &[u8], epoch: u64) -> io::Result<ShardSnapshot> {
    let mut c = Cursor { data: body, off: 0 };
    let orphan_beacons = c.u64()?;
    let unique_beacons = c.u64()?;
    let total_duplicates = c.u64()?;
    let n = c.len(16)?;
    let mut served = Vec::with_capacity(n);
    for _ in 0..n {
        let impression_id = c.u64()?;
        let campaign_id = c.u32()?;
        let os = OsKind::from_code(c.u8()?).map_err(|_| corrupt("os code"))?;
        let browser = BrowserKind::from_code(c.u8()?).map_err(|_| corrupt("browser code"))?;
        let site_type = SiteType::from_code(c.u8()?).map_err(|_| corrupt("site code"))?;
        let ad_format = AdFormat::from_code(c.u8()?).map_err(|_| corrupt("format code"))?;
        served.push(ServedImpression {
            impression_id,
            campaign_id,
            os,
            browser,
            site_type,
            ad_format,
        });
    }
    let n = c.len(22)?;
    let mut records = Vec::with_capacity(n);
    for _ in 0..n {
        let id = c.u64()?;
        records.push((id, get_record(&mut c)?));
    }
    let hourly = get_timeline(&mut c)?;
    let exposure = get_hist(&mut c)?;
    let fraction = get_hist(&mut c)?;
    if c.off != body.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(ShardSnapshot {
        epoch,
        orphan_beacons,
        unique_beacons,
        total_duplicates,
        served,
        records,
        hourly,
        exposure,
        fraction,
    })
}

/// Writes shard `shard`'s snapshot durably: temp file, fsync, atomic
/// rename over `shard-NNN.snap`.
pub fn write_snapshot(dir: &Path, shard: usize, snap: &ShardSnapshot) -> io::Result<()> {
    let body = encode_body(snap);
    let mut bytes = Vec::with_capacity(16 + body.len() + 4);
    bytes.extend_from_slice(&SNAP_MAGIC);
    bytes.extend_from_slice(&SNAP_VERSION.to_be_bytes());
    bytes.extend_from_slice(&(shard as u16).to_be_bytes());
    bytes.extend_from_slice(&snap.epoch.to_be_bytes());
    bytes.extend_from_slice(&body);
    bytes.extend_from_slice(&crc32(&body).to_be_bytes());

    let path = snapshot_path(dir, shard);
    let tmp = path.with_extension("snap.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(&bytes)?;
    f.sync_data()?;
    std::fs::rename(&tmp, &path)?;
    Ok(())
}

/// Reads shard `shard`'s snapshot. `Ok(None)` when no snapshot exists
/// (first boot or never compacted); validation failures are hard
/// errors.
pub fn read_snapshot(dir: &Path, shard: usize) -> io::Result<Option<ShardSnapshot>> {
    let path = snapshot_path(dir, shard);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f.read_to_end(&mut bytes)?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    if bytes.len() < 20 || bytes[0..4] != SNAP_MAGIC {
        return Err(corrupt("bad magic or short file"));
    }
    if u16::from_be_bytes(bytes[4..6].try_into().unwrap()) != SNAP_VERSION {
        return Err(corrupt("unsupported version"));
    }
    let epoch = u64::from_be_bytes(bytes[8..16].try_into().unwrap());
    let body = &bytes[16..bytes.len() - 4];
    let stated = u32::from_be_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    if crc32(body) != stated {
        return Err(corrupt("body checksum mismatch"));
    }
    decode_body(body, epoch).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use qtag_server::Timeline;

    fn sample() -> ShardSnapshot {
        let mut dense = SeqSeen::Sparse(Vec::new());
        for s in 0..200u16 {
            dense.insert(s * 3);
        }
        assert!(matches!(dense, SeqSeen::Dense(_)));
        let mut hourly = Timeline::hourly();
        let b = qtag_wire::Beacon {
            impression_id: 11,
            campaign_id: 2,
            event: qtag_wire::EventKind::InView,
            timestamp_us: 123,
            ad_format: AdFormat::Display,
            visible_fraction_milli: 700,
            exposure_ms: 900,
            os: OsKind::Android,
            browser: BrowserKind::Chrome,
            site_type: SiteType::Browser,
            seq: 0,
        };
        hourly.record(&b);
        ShardSnapshot {
            epoch: 3,
            orphan_beacons: 1,
            unique_beacons: 201,
            total_duplicates: 7,
            served: vec![ServedImpression {
                impression_id: 11,
                campaign_id: 2,
                os: OsKind::Android,
                browser: BrowserKind::Chrome,
                site_type: SiteType::Browser,
                ad_format: AdFormat::Display,
            }],
            records: vec![(
                11,
                ImpressionRecord {
                    tag_loaded: true,
                    measurable: true,
                    in_view: true,
                    out_of_view: false,
                    clicked: true,
                    beacons: 201,
                    duplicates: 7,
                    max_seq: 597,
                    last_fraction_milli: 700,
                    best_exposure_ms: 900,
                    first_measured_us: 123,
                    seen: dense,
                },
            )],
            hourly: hourly.export_state(),
            exposure: (1, 900, vec![(100, 1)]),
            fraction: (1, 700, vec![(90, 1)]),
        }
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let dir = test_dir("snap_round_trip");
        let snap = sample();
        write_snapshot(&dir, 5, &snap).unwrap();
        let back = read_snapshot(&dir, 5).unwrap().unwrap();
        assert_eq!(back, snap);
        // Absent shard reads as None, not an error.
        assert!(read_snapshot(&dir, 6).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error_not_a_panic() {
        let dir = test_dir("snap_corrupt");
        write_snapshot(&dir, 0, &sample()).unwrap();
        let path = snapshot_path(&dir, 0);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_snapshot(&dir, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A truncated file (torn at the filesystem level, which the
        // rename protocol rules out but media errors do not) also
        // errors cleanly.
        let good = {
            write_snapshot(&dir, 0, &sample()).unwrap();
            std::fs::read(&path).unwrap()
        };
        std::fs::write(&path, &good[..good.len() / 3]).unwrap();
        assert!(read_snapshot(&dir, 0).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrite_replaces_previous_snapshot() {
        let dir = test_dir("snap_overwrite");
        let mut snap = sample();
        write_snapshot(&dir, 2, &snap).unwrap();
        snap.epoch = 9;
        snap.unique_beacons = 999;
        write_snapshot(&dir, 2, &snap).unwrap();
        let back = read_snapshot(&dir, 2).unwrap().unwrap();
        assert_eq!(back.epoch, 9);
        assert_eq!(back.unique_beacons, 999);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
