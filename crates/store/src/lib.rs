//! # qtag-store
//!
//! Durable impression storage for the Q-Tag monitoring backend.
//!
//! The paper's headline experiment (§5) monitors campaigns for a week;
//! a memory-only store loses every registered impression and beacon on
//! the first crash or restart. This crate puts the sharded store
//! behind a [`StorageBackend`] trait with two implementations:
//!
//! * [`MemoryBackend`] — the existing in-memory path, still the
//!   default (Tier-1 tests stay fast and unchanged);
//! * [`DurableBackend`] — a per-shard append-only **write-ahead log**
//!   (length+CRC-framed register/beacon/ack records, batched appends
//!   riding the ingest pipeline's batch channels, [`SyncPolicy`]
//!   selectable), **crash recovery** that replays the log back into
//!   shard state — including the `SeqSeen` dedup trackers, bit for
//!   bit — **snapshot compaction** that truncates the log, and
//!   hourly/daily **rollups** (timelines plus mergeable `qtag-obs`
//!   histogram snapshots) so week-scale campaign timelines read from
//!   pre-aggregated buckets instead of raw beacons.
//!
//! The correctness bar, enforced by this crate's tests plus the
//! root-level kill-and-recover and durable-equivalence suites:
//! recovery after a crash at *any* record boundary reproduces the
//! pre-crash store exactly (records, counters, conservation totals),
//! and rollup-served reports are bit-identical to full-replay reports.
//!
//! Module map: [`record`] (frame codec), [`wal`] (file layout, writer,
//! torn-tail replay), [`snapshot`] (compaction artifact), [`rollup`]
//! (time-windowed aggregates), [`backend`] (the trait and both
//! implementations).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod backend;
pub mod record;
pub mod rollup;
pub mod snapshot;
pub mod sync;
pub mod wal;

pub use backend::{
    replay_into, DurableBackend, DurableConfig, MemoryBackend, RecoveryReport, StorageBackend,
};
pub use record::{crc32, RecordError, WalRecord};
pub use rollup::ShardRollup;
pub use snapshot::{read_snapshot, write_snapshot, ShardSnapshot};
pub use wal::{replay, wal_path, Replay, SyncPolicy, WalWriter};

qtag_obs::counters! {
    /// Counters the durable backend maintains. Exported through a
    /// metrics registry under the `qtag_store` prefix via
    /// [`StoreStats::register`].
    pub struct StoreStats / StoreStatsSnapshot {
        records_appended: counter("WAL records appended across all shards."),
        batches_appended: counter("WAL append calls (one per journaled batch)."),
        bytes_appended: counter("WAL bytes appended (frames, excluding headers)."),
        fsyncs: counter("fsync calls issued by the sync policy."),
        io_errors: counter("WAL append failures (journaling degraded, store still serving)."),
        records_recovered: counter("WAL records replayed during recovery."),
        truncated_records: counter("Torn/corrupt WAL tails truncated during recovery."),
        snapshots_loaded: counter("Shard snapshots loaded during recovery."),
        compactions: counter("Shard compactions performed (snapshot + WAL truncate)."),
    }
}

/// Fresh per-test scratch directory under the target tmpdir. Uses the
/// process id plus a monotone counter — no wall-clock reads, unique
/// within and across concurrently running test binaries.
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> std::path::PathBuf {
    use crate::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    // ordering: Relaxed — unique-id counter, no memory published.
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("qtag-store-{}-{}-{tag}", std::process::id(), n));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}
