//! Schedule-exploration models for the durable store, built only under
//! `--cfg qtag_check`:
//!
//! ```text
//! RUSTFLAGS="--cfg qtag_check" cargo test -p qtag-store --test check_models
//! ```
//!
//! Two families:
//!
//! 1. The Batch-policy **flusher dirty-mark protocol**. The real
//!    `flusher_loop` is compiled out under `qtag_check` (it free-runs
//!    against a wall-clock idle sleep), so these models replicate its
//!    handshake over the same facade primitives: appenders append under
//!    the journal lock then `store(true, Release)` a dirty mark, the
//!    flusher `swap(false, AcqRel)`s the mark and reads the journal
//!    under the lock. The passing model proves the invariant the real
//!    thread relies on ("clearing the mark happens-after the append it
//!    covers"); the must-fail twins revert the append/mark order and
//!    downgrade the mark to `Relaxed`, and the checker must catch both
//!    (the latter via the happens-before race detector).
//!
//! 2. The **real `DurableBackend`** scheduled by the checker:
//!    concurrent appliers journal to per-shard WALs on disk, and every
//!    schedule must conserve counts and recover bit-identically.
#![cfg(qtag_check)]

use qtag_check::sync::thread;
use qtag_check::{Builder, FailureKind};
use qtag_server::ServedImpression;
use qtag_store::sync::atomic::{AtomicBool, Ordering};
use qtag_store::sync::{Arc, Mutex};
use qtag_store::{DurableBackend, DurableConfig, StorageBackend, SyncPolicy};
use qtag_wire::{AdFormat, Beacon, BrowserKind, EventKind, OsKind, SiteType};

/// Miniature of `backend.rs`'s Batch flusher handshake. Appenders push
/// one record each and set the dirty mark; a one-sweep flusher races
/// them; the main thread runs the final drain sweep after joining (the
/// real system's shutdown `flush`). The invariant: a final clear mark
/// means every append was covered by some flush.
///
/// `mark_after_append` selects the real protocol (append under lock,
/// *then* mark) or the buggy inversion. `release_mark` selects the real
/// orderings (`Release` store / `AcqRel` swap) or fully `Relaxed` ones.
fn flusher_protocol(
    mark_after_append: bool,
    release_mark: bool,
) -> impl Fn() + Send + Sync + 'static {
    move || {
        let (store_ord, swap_ord) = if release_mark {
            (Ordering::Release, Ordering::AcqRel)
        } else {
            (Ordering::Relaxed, Ordering::Relaxed)
        };
        let wal = Arc::new(Mutex::new(Vec::new()));
        let dirty = Arc::new(AtomicBool::new(false));
        let appenders: Vec<_> = (0..2u64)
            .map(|i| {
                let wal = Arc::clone(&wal);
                let dirty = Arc::clone(&dirty);
                thread::spawn(move || {
                    if mark_after_append {
                        wal.lock().push(i);
                        dirty.store(true, store_ord);
                    } else {
                        // The bug: a sweep between the mark and the
                        // append clears the mark without covering the
                        // record, and nothing re-marks it.
                        dirty.store(true, store_ord);
                        wal.lock().push(i);
                    }
                })
            })
            .collect();
        let flusher = {
            let wal = Arc::clone(&wal);
            let dirty = Arc::clone(&dirty);
            thread::spawn(move || {
                let mut flushed = 0;
                if dirty.swap(false, swap_ord) {
                    flushed = wal.lock().len();
                }
                flushed
            })
        };
        for a in appenders {
            a.join().unwrap();
        }
        let mut flushed = flusher.join().unwrap();
        // Shutdown drain: one last sweep from the main thread.
        if dirty.swap(false, swap_ord) {
            flushed = wal.lock().len();
        }
        assert_eq!(
            flushed, 2,
            "mark clear without covering every append that preceded it"
        );
    }
}

#[test]
fn flusher_dirty_mark_never_loses_an_append() {
    // The unbounded 4-thread tree runs to ~43k schedules even reduced;
    // with a preemption bound of 2 (every real flusher bug here needs
    // at most one mid-append sweep) sleep sets collapse it to a few
    // hundred, well inside the budget.
    let report = Builder {
        max_schedules: 8_192,
        ..Builder::bounded(2)
    }
    .check(flusher_protocol(true, true));
    assert!(report.complete, "schedules: {}", report.schedules);
    assert!(report.schedules > 1);
}

#[test]
fn mark_before_append_loses_a_flush() {
    let failure = Builder::default()
        .try_check(flusher_protocol(false, true))
        .expect_err("the inverted protocol must lose an append in some schedule");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("without covering every append"),
        "{}",
        failure.message
    );
}

#[test]
fn relaxed_dirty_mark_is_flagged_as_a_race() {
    // Downgrade the load-bearing Release/AcqRel pair to Relaxed: the
    // mark store and the flusher's swap become conflicting accesses
    // unordered by happens-before, and the detector must name both
    // sites (both live in this file).
    let failure = Builder::default()
        .try_check(flusher_protocol(true, false))
        .expect_err("a Relaxed handshake must be reported as a data race");
    assert_eq!(failure.kind, FailureKind::Race);
    assert_eq!(
        failure
            .message
            .matches("crates/store/tests/check_models.rs")
            .count(),
        2,
        "both access sites must be named: {}",
        failure.message
    );
}

fn served(id: u64) -> ServedImpression {
    ServedImpression {
        impression_id: id,
        campaign_id: 1,
        os: OsKind::Windows10,
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        ad_format: AdFormat::Display,
    }
}

fn beacon(id: u64, seq: u16) -> Beacon {
    Beacon {
        impression_id: id,
        campaign_id: 1,
        event: EventKind::InView,
        timestamp_us: 0,
        ad_format: AdFormat::Display,
        visible_fraction_milli: 1000,
        exposure_ms: 1000,
        os: OsKind::Windows10,
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        seq,
    }
}

/// Fresh scratch directory per execution (the checker re-runs the
/// closure once per schedule; a process-wide std counter is invisible
/// to the scheduler, so directory names never perturb exploration).
fn scratch_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("qtag-store-model-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn concurrent_appliers_conserve_and_recover() {
    // The real backend under the checker: two appliers journal one
    // beacon each to *different* shards (ids 0 and 1 route apart on a
    // 2-shard store), so their store/journal locks never contend and
    // sleep sets collapse most interleavings. The shared `StoreStats`
    // counters are genuine Relaxed RMW conflicts — the workspace's
    // "monotone statistic" pattern — so the model allowlists
    // `backend.rs` and asserts the allowlist is load-bearing.
    let report = Builder {
        max_schedules: 8_192,
        ..Builder::default()
    }
    .allow_race("crates/store/src/backend.rs")
    .check(|| {
        let dir = scratch_dir();
        let (backend, recovery) = DurableBackend::open(DurableConfig {
            dir: dir.clone(),
            shards: 2,
            sync: SyncPolicy::NoSync,
        })
        .expect("open fresh store");
        assert_eq!(recovery.records_replayed, 0);
        // Register the impressions before racing the appliers, so the
        // applied beacons join to served records (not orphans).
        backend.record_served(served(0));
        backend.record_served(served(1));
        let backend = Arc::new(backend);
        let handles: Vec<_> = [0u64, 1u64]
            .into_iter()
            .map(|id| {
                let backend = Arc::clone(&backend);
                thread::spawn(move || backend.apply(&beacon(id, 0)))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = backend.stats().snapshot();
        // 2 served registrations + 2 applied beacons, one batch each.
        assert_eq!(snap.records_appended, 4, "every record journaled");
        assert_eq!(snap.batches_appended, 4);
        assert_eq!(backend.store().unique_beacons(), 2);
        backend.flush().expect("flush");
        // Close the WAL handles before reopening the directory.
        drop(Arc::try_unwrap(backend).expect("all appliers joined"));
        let (reopened, recovery) = DurableBackend::open(DurableConfig {
            dir: dir.clone(),
            shards: 2,
            sync: SyncPolicy::NoSync,
        })
        .expect("recover");
        assert_eq!(recovery.beacons_replayed, 2, "recovery replays both");
        assert_eq!(reopened.store().unique_beacons(), 2);
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    });
    assert!(report.complete, "schedules: {}", report.schedules);
    assert!(
        report.races > 0,
        "the backend.rs allowlist should be load-bearing (Relaxed stat counters)"
    );
}
