//! The durable backend's correctness bar, end to end:
//!
//! * **Crash at any record boundary** — recovering a WAL truncated
//!   after any prefix of records reproduces exactly the store, the
//!   counters, the reports, and the rollups of a reference store fed
//!   that same prefix (an exhaustive sweep over every boundary).
//! * **Torn / corrupt tails** — a truncation or bit flip inside the
//!   last record loses only that record: recovery stops cleanly at the
//!   last valid frame, counts the truncation, and never invents data.
//! * **Compaction** — snapshot + WAL truncate round-trips to the same
//!   report output, including across further appends, and the
//!   compaction *crash window* (new snapshot, old WAL) is detected by
//!   the epoch and resolved without double-counting.

use qtag_server::{ImpressionStore, ReportBuilder, ServedImpression};
use qtag_store::{
    record, replay, wal_path, DurableBackend, DurableConfig, ShardRollup, StorageBackend,
    SyncPolicy, WalRecord,
};
use qtag_wire::{AdFormat, Beacon, BrowserKind, EventKind, OsKind, SiteType};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fresh scratch directory (process id + counter; no wall clock).
fn test_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("qtag-store-it-{}-{}-{tag}", std::process::id(), n));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn beacon(id: u64, seq: u16, event: EventKind, ts: u64) -> Beacon {
    Beacon {
        impression_id: id,
        campaign_id: (id % 3) as u32 + 1,
        event,
        timestamp_us: ts,
        ad_format: AdFormat::Display,
        visible_fraction_milli: 500 + seq * 37,
        exposure_ms: 700 + u32::from(seq) * 111,
        os: if id.is_multiple_of(2) {
            OsKind::Android
        } else {
            OsKind::Windows10
        },
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        seq,
    }
}

fn served(id: u64) -> ServedImpression {
    let b = beacon(id, 0, EventKind::Measurable, 0);
    ServedImpression {
        impression_id: id,
        campaign_id: b.campaign_id,
        os: b.os,
        browser: b.browser,
        site_type: b.site_type,
        ad_format: b.ad_format,
    }
}

/// Drives a deterministic mixed workload (registers, events, a
/// duplicate, an ack; every fourth impression an orphan) through a
/// backend.
fn drive(backend: &dyn StorageBackend, ids: std::ops::Range<u64>) {
    const HOUR: u64 = 3_600 * 1_000_000;
    for id in ids {
        if id % 4 != 3 {
            backend.record_served(served(id));
        }
        let t0 = id * HOUR / 2;
        backend.apply(&beacon(id, 0, EventKind::Measurable, t0));
        backend.apply(&beacon(id, 1, EventKind::InView, t0 + 1_000));
        backend.apply(&beacon(id, 1, EventKind::InView, t0 + 1_000)); // duplicate
        backend.apply(&beacon(id, 2, EventKind::Heartbeat, t0 + 2_000));
        backend.append_ack(id, 0);
    }
}

/// Byte offsets of every record boundary in a WAL file (header
/// included as boundary 0).
fn frame_boundaries(path: &Path) -> Vec<u64> {
    let bytes = std::fs::read(path).expect("read wal");
    let mut offs = vec![qtag_store::wal::WAL_HEADER_LEN as u64];
    let mut off = qtag_store::wal::WAL_HEADER_LEN;
    while off < bytes.len() {
        let (_, consumed) = record::decode_frame(&bytes[off..]).expect("clean log");
        off += consumed;
        offs.push(off as u64);
    }
    offs
}

/// Copies `src_dir`'s shard-0 WAL into a fresh directory, truncated to
/// `len` bytes.
fn truncated_copy(src_dir: &Path, len: u64, tag: &str) -> PathBuf {
    let dst_dir = test_dir(tag);
    let mut bytes = std::fs::read(wal_path(src_dir, 0)).expect("read wal");
    bytes.truncate(len as usize);
    std::fs::write(wal_path(&dst_dir, 0), &bytes).expect("write truncated wal");
    dst_dir
}

/// Asserts the recovered backend is bit-identical to a reference store
/// fed `records` directly, across every read surface.
fn assert_matches_reference(recovered: &DurableBackend, records: &[WalRecord], ids: u64) {
    let mut reference = ImpressionStore::new();
    let mut ref_rollup = ShardRollup::new();
    for rec in records {
        match rec {
            WalRecord::Served(s) => reference.record_served(s.clone()),
            WalRecord::Beacon(b) => {
                let outcome = reference.apply(b);
                ref_rollup.record(b, &outcome);
            }
            WalRecord::Ack { .. } => {}
        }
    }

    let store = recovered.store();
    assert_eq!(store.unique_beacons(), reference.unique_beacons());
    assert_eq!(store.total_duplicates(), reference.total_duplicates());
    assert_eq!(store.orphan_beacons(), reference.orphan_beacons());
    assert_eq!(store.served_count(), reference.served_count());
    for id in 0..ids {
        assert_eq!(store.verdict(id), reference.verdict(id), "verdict {id}");
        assert_eq!(
            store.record(id),
            reference.record(id).cloned(),
            "record {id}"
        );
    }
    assert_eq!(
        ReportBuilder::per_campaign_sharded(store),
        ReportBuilder::per_campaign(&reference),
        "reports"
    );
    assert_eq!(
        recovered.merged_hourly().export_state(),
        ref_rollup.hourly.export_state(),
        "hourly rollup"
    );
    assert_eq!(
        recovered.merged_daily().export_state(),
        ref_rollup.daily().export_state(),
        "daily rollup"
    );
    assert_eq!(recovered.merged_exposure(), ref_rollup.exposure);
    assert_eq!(recovered.merged_fraction(), ref_rollup.fraction);
}

/// The tentpole property, exhaustively: crash the log at EVERY record
/// boundary; recovery reproduces the reference prefix state exactly —
/// records, SeqSeen dedup, counters, reports, and rollups.
#[test]
fn crash_at_every_record_boundary_recovers_the_exact_prefix() {
    const IDS: u64 = 10;
    let src = test_dir("boundary_src");
    let (backend, _) = DurableBackend::open(DurableConfig {
        dir: src.clone(),
        shards: 1,
        sync: SyncPolicy::NoSync,
    })
    .expect("open source backend");
    drive(&backend, 0..IDS);
    drop(backend);

    let full = replay(&wal_path(&src, 0)).expect("replay source");
    assert!(full.torn.is_none());
    let boundaries = frame_boundaries(&wal_path(&src, 0));
    assert_eq!(boundaries.len(), full.records.len() + 1);

    for (k, &len) in boundaries.iter().enumerate() {
        let dir = truncated_copy(&src, len, "boundary_cut");
        let (recovered, report) = DurableBackend::open(DurableConfig {
            dir: dir.clone(),
            shards: 1,
            sync: SyncPolicy::NoSync,
        })
        .unwrap_or_else(|e| panic!("recover at boundary {k}: {e}"));
        assert_eq!(report.records_replayed, k as u64, "boundary {k}");
        assert_eq!(report.truncated_tails, 0, "clean cut at boundary {k}");
        assert_matches_reference(&recovered, &full.records[..k], IDS);
        let snap = recovered.stats().snapshot();
        assert_eq!(snap.records_recovered, k as u64);
        assert_eq!(snap.truncated_records, 0);
        assert_eq!(snap.io_errors, 0);
        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&src).unwrap();
}

/// Torn tail (crash mid-record): only the cut record is lost, the
/// truncation is counted, and the reopened log accepts appends again —
/// a second recovery is clean.
#[test]
fn torn_tail_is_truncated_counted_and_heals_on_reopen() {
    const IDS: u64 = 6;
    let src = test_dir("torn_src");
    let (backend, _) = DurableBackend::open(DurableConfig {
        dir: src.clone(),
        shards: 1,
        sync: SyncPolicy::NoSync,
    })
    .expect("open source backend");
    drive(&backend, 0..IDS);
    drop(backend);

    let full = replay(&wal_path(&src, 0)).expect("replay source");
    let boundaries = frame_boundaries(&wal_path(&src, 0));
    // Cut 5 bytes into the frame after boundary 7: a torn write.
    let keep = 7usize;
    let dir = truncated_copy(&src, boundaries[keep] + 5, "torn_cut");

    let (recovered, report) = DurableBackend::open(DurableConfig {
        dir: dir.clone(),
        shards: 1,
        sync: SyncPolicy::NoSync,
    })
    .expect("torn tail must recover, not error");
    assert_eq!(report.records_replayed, keep as u64);
    assert_eq!(report.truncated_tails, 1);
    assert_eq!(recovered.stats().snapshot().truncated_records, 1);
    assert_matches_reference(&recovered, &full.records[..keep], IDS);

    // Appending after recovery lands on a clean boundary…
    recovered.apply(&beacon(0, 9, EventKind::Heartbeat, 1_000));
    drop(recovered);
    // …so the next recovery sees a clean log: prefix + the append.
    let (again, report2) = DurableBackend::open(DurableConfig {
        dir: dir.clone(),
        shards: 1,
        sync: SyncPolicy::NoSync,
    })
    .expect("second recovery");
    assert_eq!(report2.truncated_tails, 0, "tail was truncated on reopen");
    assert_eq!(report2.records_replayed, keep as u64 + 1);
    let mut expect = full.records[..keep].to_vec();
    expect.push(WalRecord::Beacon(beacon(0, 9, EventKind::Heartbeat, 1_000)));
    assert_matches_reference(&again, &expect, IDS);
    drop(again);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&src).unwrap();
}

/// A bit flip inside the record area: the frame CRC stops replay at
/// the last valid record before the flip — no panic, no silent data
/// invention past it.
#[test]
fn bit_flip_in_record_area_stops_recovery_at_last_valid_record() {
    const IDS: u64 = 6;
    let src = test_dir("flip_src");
    let (backend, _) = DurableBackend::open(DurableConfig {
        dir: src.clone(),
        shards: 1,
        sync: SyncPolicy::NoSync,
    })
    .expect("open source backend");
    drive(&backend, 0..IDS);
    drop(backend);

    let boundaries = frame_boundaries(&wal_path(&src, 0));
    let full = replay(&wal_path(&src, 0)).expect("replay source");
    let keep = 11usize; // flip a byte inside record 12's payload
    let dir = test_dir("flip_cut");
    let mut bytes = std::fs::read(wal_path(&src, 0)).unwrap();
    bytes[boundaries[keep] as usize + 9] ^= 0x04;
    std::fs::write(wal_path(&dir, 0), &bytes).unwrap();

    let (recovered, report) = DurableBackend::open(DurableConfig {
        dir: dir.clone(),
        shards: 1,
        sync: SyncPolicy::NoSync,
    })
    .expect("corrupt tail must recover, not error");
    assert_eq!(report.records_replayed, keep as u64);
    assert_eq!(report.truncated_tails, 1);
    assert_matches_reference(&recovered, &full.records[..keep], IDS);
    drop(recovered);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&src).unwrap();
}

/// Compaction round-trip over multiple shards: snapshot + truncate
/// changes no observable output, recovery after compaction replays
/// nothing, and appends after compaction recover on top of the
/// snapshot — always equal to one uninterrupted reference run.
#[test]
fn compaction_and_further_appends_round_trip_to_identical_reports() {
    const IDS: u64 = 24;
    const SHARDS: usize = 3;
    let dir = test_dir("compact");
    let open = || {
        DurableBackend::open(DurableConfig {
            dir: dir.clone(),
            shards: SHARDS,
            sync: SyncPolicy::Batch,
        })
    };

    let (backend, _) = open().expect("open");
    drive(&backend, 0..IDS);
    let before = ReportBuilder::per_campaign_sharded(backend.store());
    let hourly_before = backend.merged_hourly().export_state();

    backend.compact().expect("compact");
    let snap = backend.stats().snapshot();
    assert_eq!(snap.compactions, SHARDS as u64);
    for shard in 0..SHARDS {
        assert_eq!(
            backend.wal_len(shard),
            qtag_store::wal::WAL_HEADER_LEN as u64,
            "shard {shard} WAL truncated"
        );
    }
    // Compaction changes nothing observable.
    assert_eq!(ReportBuilder::per_campaign_sharded(backend.store()), before);
    assert_eq!(backend.merged_hourly().export_state(), hourly_before);
    drop(backend);

    // Recovery now comes entirely from snapshots.
    let (recovered, report) = open().expect("recover from snapshots");
    assert_eq!(report.snapshots_loaded, SHARDS as u64);
    assert_eq!(report.records_replayed, 0);
    assert_eq!(recovered.stats().snapshot().snapshots_loaded, SHARDS as u64);
    assert_eq!(
        ReportBuilder::per_campaign_sharded(recovered.store()),
        before
    );
    assert_eq!(recovered.merged_hourly().export_state(), hourly_before);

    // Append on top of the snapshot, recover again: equal to one
    // uninterrupted run of the whole workload.
    drive(&recovered, IDS..IDS * 2);
    let appended = backend_stat_probe(&recovered);
    drop(recovered);
    let (again, report2) = open().expect("recover snapshot + wal");
    assert_eq!(report2.snapshots_loaded, SHARDS as u64);
    assert!(report2.records_replayed > 0, "fresh records replayed");

    let mut reference = ImpressionStore::new();
    let mut ref_rollup = ShardRollup::new();
    for id in 0..IDS * 2 {
        if id % 4 != 3 {
            reference.record_served(served(id));
        }
    }
    const HOUR: u64 = 3_600 * 1_000_000;
    for id in 0..IDS * 2 {
        let t0 = id * HOUR / 2;
        for b in [
            beacon(id, 0, EventKind::Measurable, t0),
            beacon(id, 1, EventKind::InView, t0 + 1_000),
            beacon(id, 1, EventKind::InView, t0 + 1_000),
            beacon(id, 2, EventKind::Heartbeat, t0 + 2_000),
        ] {
            let outcome = reference.apply(&b);
            ref_rollup.record(&b, &outcome);
        }
    }
    assert_eq!(
        ReportBuilder::per_campaign_sharded(again.store()),
        ReportBuilder::per_campaign(&reference)
    );
    assert_eq!(again.store().unique_beacons(), reference.unique_beacons());
    assert_eq!(
        again.store().total_duplicates(),
        reference.total_duplicates()
    );
    assert_eq!(
        again.merged_hourly().export_state(),
        ref_rollup.hourly.export_state()
    );
    assert_eq!(
        again.merged_daily().export_state(),
        ref_rollup.daily().export_state()
    );
    assert!(appended > 0);
    drop(again);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Exercises the append-volume counters so the probe above is honest.
fn backend_stat_probe(b: &DurableBackend) -> u64 {
    let snap = b.stats().snapshot();
    assert!(snap.records_appended > 0);
    assert!(snap.batches_appended > 0);
    assert!(snap.bytes_appended > snap.records_appended);
    // Batch fsyncs ride the background flusher, so give it a beat to
    // sweep the dirty marks before insisting it synced.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while b.stats().snapshot().fsyncs == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "flusher never fsynced a dirty shard"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    snap.records_appended
}

/// The compaction crash window: snapshot written at epoch N+1 but the
/// WAL still the old epoch-N log (the crash hit between the two
/// renames). Recovery must detect the stale log via the epoch and
/// discard it — its records are inside the snapshot; replaying them
/// would double-count duplicates.
#[test]
fn stale_wal_from_compaction_crash_window_is_discarded() {
    const IDS: u64 = 8;
    let dir = test_dir("crash_window");
    let open = || {
        DurableBackend::open(DurableConfig {
            dir: dir.clone(),
            shards: 1,
            sync: SyncPolicy::Batch,
        })
    };
    let (backend, _) = open().expect("open");
    drive(&backend, 0..IDS);
    let before = ReportBuilder::per_campaign_sharded(backend.store());
    let hourly_before = backend.merged_hourly().export_state();

    // Keep the pre-compaction WAL, compact, then put the old log back:
    // exactly the state a crash between compaction's two renames
    // leaves behind.
    let old_wal = std::fs::read(wal_path(&dir, 0)).unwrap();
    backend.compact().expect("compact");
    drop(backend);
    std::fs::write(wal_path(&dir, 0), &old_wal).unwrap();

    let (recovered, report) = open().expect("recover across the crash window");
    assert_eq!(report.stale_wals_discarded, 1);
    assert_eq!(report.records_replayed, 0, "stale records not replayed");
    assert_eq!(
        ReportBuilder::per_campaign_sharded(recovered.store()),
        before
    );
    assert_eq!(recovered.merged_hourly().export_state(), hourly_before);
    // The discarded log was replaced by a fresh epoch-stamped one, so
    // the next recovery is ordinary.
    drop(recovered);
    let (_again, report2) = open().expect("recovery after heal");
    assert_eq!(report2.stale_wals_discarded, 0);
    assert_eq!(report2.snapshots_loaded, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
