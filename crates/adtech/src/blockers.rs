//! Content blockers and privacy browsers (§4.3).
//!
//! Two very different mechanisms, which the paper's tests distinguish:
//!
//! * **adblockers and Brave** block the network connections to
//!   third-party ad servers outright: "in the presence of adblockers,
//!   [Q-Tag] should not be deployed … all the connections are blocked as
//!   expected, and neither the ad nor Q-Tag is deployed";
//! * **privacy-enhanced browsers** (recent Chrome/Safari/Firefox
//!   defaults) block third-party *cookies*: "Q-Tag operates normally in
//!   these browsers since they block cookies while our methodology uses
//!   JavaScript code".

use serde::Serialize;

/// What (if anything) filters the ad delivery path on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum BlockerKind {
    /// No filtering.
    None,
    /// Adblock Plus or similar list-based extension.
    AdblockPlus,
    /// The Brave browser's built-in shields.
    Brave,
    /// Tracking prevention that blocks third-party cookies only.
    PrivacyBrowser,
}

/// The delivery capabilities remaining under a blocker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DeliveryPolicy {
    /// Third-party ad requests reach the ad server (no ad, no tag
    /// otherwise).
    pub third_party_requests: bool,
    /// Third-party cookies are accepted (irrelevant to Q-Tag, which is
    /// cookie-free JavaScript).
    pub third_party_cookies: bool,
}

impl BlockerKind {
    /// The delivery policy this blocker enforces.
    pub fn policy(self) -> DeliveryPolicy {
        match self {
            BlockerKind::None => DeliveryPolicy {
                third_party_requests: true,
                third_party_cookies: true,
            },
            BlockerKind::AdblockPlus | BlockerKind::Brave => DeliveryPolicy {
                third_party_requests: false,
                third_party_cookies: false,
            },
            BlockerKind::PrivacyBrowser => DeliveryPolicy {
                third_party_requests: true,
                third_party_cookies: false,
            },
        }
    }

    /// `true` when the ad (and therefore any tag embedded in its
    /// creative) can be delivered at all.
    pub fn ad_delivery_possible(self) -> bool {
        self.policy().third_party_requests
    }

    /// `true` when Q-Tag, *once delivered*, can operate. Q-Tag needs
    /// only JavaScript execution — never cookies — so this is identical
    /// to delivery.
    pub fn qtag_operational(self) -> bool {
        self.ad_delivery_possible()
    }

    /// `true` when a cookie-dependent measurement product degrades (it
    /// may still measure viewability but loses user linkage; relevant to
    /// verifiers, not to Q-Tag).
    pub fn cookies_blocked(self) -> bool {
        !self.policy().third_party_cookies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adblock_and_brave_kill_delivery_entirely() {
        for b in [BlockerKind::AdblockPlus, BlockerKind::Brave] {
            assert!(!b.ad_delivery_possible());
            assert!(!b.qtag_operational());
        }
    }

    #[test]
    fn privacy_browsers_block_cookies_not_javascript() {
        let b = BlockerKind::PrivacyBrowser;
        assert!(b.ad_delivery_possible());
        assert!(b.qtag_operational(), "Q-Tag is cookie-free JavaScript");
        assert!(b.cookies_blocked());
    }

    #[test]
    fn unfiltered_device_allows_everything() {
        let b = BlockerKind::None;
        assert!(b.ad_delivery_possible());
        assert!(!b.cookies_blocked());
    }
}
