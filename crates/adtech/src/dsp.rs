//! The Demand Side Platform: bidder, budget pacing, impression ledger.

use crate::auction::{AdSlotRequest, Bid};
use crate::campaign::{Campaign, CampaignId};
use qtag_geometry::Size;
use qtag_wire::AdFormat;
use serde::Serialize;
use std::collections::HashMap;

/// A served ad: what comes back to the publisher page after the DSP wins
/// an auction — creative metadata plus the freshly minted impression id
/// the tags will report against.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ServedAd {
    /// Impression id (unique per DSP).
    pub impression_id: u64,
    /// The campaign whose creative is served.
    pub campaign_id: CampaignId,
    /// Creative pixel size.
    pub creative_size: Size,
    /// Creative format.
    pub format: AdFormat,
    /// Price paid for the impression (milli-dollars CPM).
    pub paid_cpm_milli: u64,
}

/// Aggregate DSP counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct DspStats {
    /// Bid requests evaluated.
    pub requests: u64,
    /// Bids submitted.
    pub bids: u64,
    /// Auctions won / ads served.
    pub wins: u64,
    /// Total spend, milli-dollars CPM summed per impression.
    pub spend_cpm_milli: u64,
}

/// A Demand Side Platform holding a portfolio of campaigns.
#[derive(Debug)]
pub struct Dsp {
    campaigns: Vec<Campaign>,
    remaining_budget: HashMap<CampaignId, u64>,
    next_impression: u64,
    stats: DspStats,
    /// Pacing cursor: rotates among equally priced eligible campaigns so
    /// every campaign in the portfolio actually delivers.
    rotation: usize,
}

impl Dsp {
    /// Creates a DSP over a campaign portfolio.
    pub fn new(campaigns: Vec<Campaign>) -> Self {
        let remaining_budget = campaigns
            .iter()
            .map(|c| (c.id, c.impression_budget))
            .collect();
        Dsp {
            campaigns,
            remaining_budget,
            next_impression: 1,
            stats: DspStats::default(),
            rotation: 0,
        }
    }

    /// The campaign portfolio.
    pub fn campaigns(&self) -> &[Campaign] {
        &self.campaigns
    }

    /// Remaining impression budget of a campaign.
    pub fn remaining_budget(&self, id: CampaignId) -> u64 {
        self.remaining_budget.get(&id).copied().unwrap_or(0)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> DspStats {
        self.stats
    }

    /// Evaluates a bid request: returns the best-priced bid among
    /// campaigns whose targeting matches, whose creative fits the slot
    /// exactly (standard IAB sizes are traded as exact matches), and
    /// which still have budget. Equally priced eligible campaigns are
    /// paced round-robin, as production bidders do, so a portfolio of
    /// same-CPM campaigns all deliver.
    pub fn bid(&mut self, req: &AdSlotRequest) -> Option<Bid> {
        self.stats.requests += 1;
        let eligible: Vec<usize> = self
            .campaigns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.targeting.matches(req.geo, req.os, req.site_type)
                    && c.creative_size == req.slot_size
                    && self.remaining_budget.get(&c.id).copied().unwrap_or(0) > 0
                    && c.cpm_milli >= req.floor_cpm_milli
            })
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let top_cpm = eligible
            .iter()
            .map(|&i| self.campaigns[i].cpm_milli)
            .max()
            .expect("non-empty");
        let top: Vec<usize> = eligible
            .into_iter()
            .filter(|&i| self.campaigns[i].cpm_milli == top_cpm)
            .collect();
        let pick = top[self.rotation % top.len()];
        self.rotation = self.rotation.wrapping_add(1);
        self.stats.bids += 1;
        Some(Bid {
            campaign: self.campaigns[pick].id,
            cpm_milli: top_cpm,
        })
    }

    /// Win notification: the DSP serves the creative, mints the
    /// impression id, decrements budget and books spend.
    ///
    /// # Panics
    /// Panics if the campaign is unknown — an exchange can only award
    /// wins for bids the DSP submitted.
    pub fn win(&mut self, campaign: CampaignId, clearing_cpm_milli: u64) -> ServedAd {
        let c = self
            .campaigns
            .iter()
            .find(|c| c.id == campaign)
            .expect("win for a campaign this DSP bid with");
        let budget = self
            .remaining_budget
            .get_mut(&campaign)
            .expect("budget entry exists");
        *budget = budget.saturating_sub(1);
        self.stats.wins += 1;
        self.stats.spend_cpm_milli += clearing_cpm_milli;
        let impression_id = self.next_impression;
        self.next_impression += 1;
        ServedAd {
            impression_id,
            campaign_id: campaign,
            creative_size: c.creative_size,
            format: c.format,
            paid_cpm_milli: clearing_cpm_milli,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{GeoRegion, Sector, Targeting};
    use qtag_wire::{BrowserKind, OsKind, SiteType};

    fn request(slot: Size) -> AdSlotRequest {
        AdSlotRequest {
            request_id: 1,
            geo: GeoRegion::Spain,
            os: OsKind::Android,
            browser: BrowserKind::Chrome,
            site_type: SiteType::Browser,
            slot_size: slot,
            floor_cpm_milli: 100,
        }
    }

    fn dsp() -> Dsp {
        Dsp::new(vec![
            Campaign::display(1, "Acme", Sector::Retail, Size::MEDIUM_RECTANGLE),
            Campaign {
                cpm_milli: 2000,
                ..Campaign::display(2, "Bigger", Sector::Travel, Size::MEDIUM_RECTANGLE)
            },
        ])
    }

    #[test]
    fn bids_with_highest_matching_campaign() {
        let mut d = dsp();
        let bid = d.bid(&request(Size::MEDIUM_RECTANGLE)).unwrap();
        assert_eq!(bid.campaign, CampaignId(2));
        assert_eq!(bid.cpm_milli, 2000);
    }

    #[test]
    fn size_mismatch_means_no_bid() {
        let mut d = dsp();
        assert!(d.bid(&request(Size::MOBILE_BANNER)).is_none());
        assert_eq!(d.stats().requests, 1);
        assert_eq!(d.stats().bids, 0);
    }

    #[test]
    fn targeting_mismatch_means_no_bid() {
        let mut d = Dsp::new(vec![Campaign {
            targeting: Targeting {
                geos: vec![GeoRegion::UnitedStates],
                ..Targeting::any()
            },
            ..Campaign::display(1, "US-only", Sector::Technology, Size::MEDIUM_RECTANGLE)
        }]);
        assert!(d.bid(&request(Size::MEDIUM_RECTANGLE)).is_none());
    }

    #[test]
    fn budget_exhaustion_stops_bidding() {
        let mut d = Dsp::new(vec![Campaign {
            impression_budget: 2,
            ..Campaign::display(1, "Tiny", Sector::Retail, Size::MEDIUM_RECTANGLE)
        }]);
        for _ in 0..2 {
            let b = d.bid(&request(Size::MEDIUM_RECTANGLE)).unwrap();
            d.win(b.campaign, 500);
        }
        assert!(d.bid(&request(Size::MEDIUM_RECTANGLE)).is_none());
        assert_eq!(d.remaining_budget(CampaignId(1)), 0);
    }

    #[test]
    fn wins_mint_unique_impression_ids_and_book_spend() {
        let mut d = dsp();
        let a = d.win(CampaignId(1), 800);
        let b = d.win(CampaignId(1), 900);
        assert_ne!(a.impression_id, b.impression_id);
        assert_eq!(d.stats().wins, 2);
        assert_eq!(d.stats().spend_cpm_milli, 1700);
    }

    #[test]
    fn floor_above_bid_suppresses() {
        let mut d = dsp();
        let mut req = request(Size::MEDIUM_RECTANGLE);
        req.floor_cpm_milli = 5000;
        assert!(d.bid(&req).is_none());
    }
}
