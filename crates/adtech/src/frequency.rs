//! Frequency capping — and what cookie blocking does to it.
//!
//! Campaigns cap how often one user sees their ad. Caps are enforced
//! with a per-user identifier, which in browsers means a third-party
//! cookie. §4.3's finding — privacy browsers block cookies but not
//! JavaScript — therefore cuts two ways: Q-Tag keeps measuring, while
//! cookie-dependent features like frequency capping silently degrade
//! (every request from a cookie-less user looks like a first
//! impression). This module models both sides so the pipeline can show
//! the asymmetry.

use crate::campaign::CampaignId;
use serde::Serialize;
use std::collections::HashMap;

/// A user identifier as the buy side sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum UserId {
    /// A stable cookie-backed identifier.
    Cookie(u64),
    /// No identifier available (cookies blocked): indistinguishable
    /// from every other anonymous user.
    Anonymous,
}

/// Per-campaign frequency caps over a capping window.
#[derive(Debug, Default)]
pub struct FrequencyCapper {
    caps: HashMap<CampaignId, u32>,
    seen: HashMap<(CampaignId, u64), u32>,
    /// Impressions served to anonymous users (uncappable).
    uncapped_serves: u64,
}

impl FrequencyCapper {
    /// Creates an empty capper.
    pub fn new() -> Self {
        FrequencyCapper::default()
    }

    /// Sets a campaign's cap (max impressions per user per window).
    pub fn set_cap(&mut self, campaign: CampaignId, cap: u32) {
        self.caps.insert(campaign, cap);
    }

    /// Returns `true` when serving `campaign` to `user` is allowed, and
    /// records the impression if so.
    ///
    /// Anonymous users cannot be capped: the serve is always allowed and
    /// counted in [`FrequencyCapper::uncapped_serves`] — the degradation
    /// cookie blocking causes.
    pub fn allow_and_record(&mut self, campaign: CampaignId, user: UserId) -> bool {
        let cap = self.caps.get(&campaign).copied().unwrap_or(u32::MAX);
        match user {
            UserId::Anonymous => {
                self.uncapped_serves += 1;
                true
            }
            UserId::Cookie(uid) => {
                let count = self.seen.entry((campaign, uid)).or_insert(0);
                if *count >= cap {
                    false
                } else {
                    *count += 1;
                    true
                }
            }
        }
    }

    /// Impressions a user has received from a campaign.
    pub fn count(&self, campaign: CampaignId, uid: u64) -> u32 {
        self.seen.get(&(campaign, uid)).copied().unwrap_or(0)
    }

    /// Serves that bypassed capping because the user was anonymous.
    pub fn uncapped_serves(&self) -> u64 {
        self.uncapped_serves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockers::BlockerKind;

    #[test]
    fn cookie_users_are_capped() {
        let mut f = FrequencyCapper::new();
        f.set_cap(CampaignId(1), 3);
        let user = UserId::Cookie(42);
        for _ in 0..3 {
            assert!(f.allow_and_record(CampaignId(1), user));
        }
        assert!(
            !f.allow_and_record(CampaignId(1), user),
            "4th serve blocked"
        );
        assert_eq!(f.count(CampaignId(1), 42), 3);
    }

    #[test]
    fn caps_are_per_campaign_per_user() {
        let mut f = FrequencyCapper::new();
        f.set_cap(CampaignId(1), 1);
        assert!(f.allow_and_record(CampaignId(1), UserId::Cookie(1)));
        assert!(
            f.allow_and_record(CampaignId(1), UserId::Cookie(2)),
            "other user unaffected"
        );
        assert!(
            f.allow_and_record(CampaignId(2), UserId::Cookie(1)),
            "other campaign unaffected"
        );
        assert!(!f.allow_and_record(CampaignId(1), UserId::Cookie(1)));
    }

    #[test]
    fn anonymous_users_cannot_be_capped() {
        let mut f = FrequencyCapper::new();
        f.set_cap(CampaignId(1), 1);
        for _ in 0..10 {
            assert!(f.allow_and_record(CampaignId(1), UserId::Anonymous));
        }
        assert_eq!(f.uncapped_serves(), 10);
    }

    #[test]
    fn uncapped_campaign_never_blocks() {
        let mut f = FrequencyCapper::new();
        for _ in 0..100 {
            assert!(f.allow_and_record(CampaignId(9), UserId::Cookie(7)));
        }
    }

    /// The §4.3 asymmetry in one test: a privacy browser leaves the ad
    /// path and Q-Tag intact but strips the cookie, so capping degrades
    /// while measurement does not.
    #[test]
    fn privacy_browsers_break_capping_not_measurement() {
        let blocker = BlockerKind::PrivacyBrowser;
        assert!(blocker.qtag_operational(), "measurement unaffected");
        let user = if blocker.cookies_blocked() {
            UserId::Anonymous
        } else {
            UserId::Cookie(1)
        };
        let mut f = FrequencyCapper::new();
        f.set_cap(CampaignId(1), 2);
        let mut serves = 0;
        for _ in 0..5 {
            if f.allow_and_record(CampaignId(1), user) {
                serves += 1;
            }
        }
        assert_eq!(serves, 5, "cap silently not enforced without cookies");
        assert_eq!(f.uncapped_serves(), 5);
    }
}
