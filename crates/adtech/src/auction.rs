//! Real-time bidding: the bid request context and the second-price
//! auction the exchanges run (§2.1: "Ad Exchanges are the entities
//! connecting the sell and buy sides … through real-time auctions").

use crate::campaign::{CampaignId, GeoRegion};
use qtag_geometry::Size;
use qtag_wire::{BrowserKind, OsKind, SiteType};
use serde::Serialize;

/// The sell side's description of one ad opportunity: what a bid request
/// carries to the buy side.
#[derive(Debug, Clone, Serialize)]
pub struct AdSlotRequest {
    /// Request id assigned by the exchange.
    pub request_id: u64,
    /// User region.
    pub geo: GeoRegion,
    /// Device operating system.
    pub os: OsKind,
    /// Browser/webview engine.
    pub browser: BrowserKind,
    /// Web page or in-app placement.
    pub site_type: SiteType,
    /// The ad slot's pixel size.
    pub slot_size: Size,
    /// Price floor in milli-dollars CPM (bids below are ignored).
    pub floor_cpm_milli: u64,
}

/// One buy-side bid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Bid {
    /// Bidding campaign.
    pub campaign: CampaignId,
    /// Bid price (milli-dollars CPM).
    pub cpm_milli: u64,
}

/// The result of a second-price auction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct AuctionOutcome {
    /// Winning bid.
    pub winner: Bid,
    /// What the winner actually pays: the second-highest bid (or the
    /// floor when unopposed), per second-price rules.
    pub clearing_cpm_milli: u64,
    /// Number of valid bids that competed.
    pub participants: usize,
}

/// Runs a sealed-bid second-price auction over `bids` with the given
/// floor. Bids below the floor are discarded. Ties go to the bid that
/// arrived first (stable), matching common exchange behaviour.
pub fn run_second_price(bids: &[Bid], floor_cpm_milli: u64) -> Option<AuctionOutcome> {
    let valid: Vec<&Bid> = bids
        .iter()
        .filter(|b| b.cpm_milli >= floor_cpm_milli)
        .collect();
    if valid.is_empty() {
        return None;
    }
    let mut best: &Bid = valid[0];
    let mut second: Option<u64> = None;
    for b in &valid[1..] {
        if b.cpm_milli > best.cpm_milli {
            second = Some(best.cpm_milli);
            best = b;
        } else {
            second = Some(second.map_or(b.cpm_milli, |s| s.max(b.cpm_milli)));
        }
    }
    Some(AuctionOutcome {
        winner: *best,
        clearing_cpm_milli: second.unwrap_or(floor_cpm_milli),
        participants: valid.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bid(campaign: u32, cpm: u64) -> Bid {
        Bid {
            campaign: CampaignId(campaign),
            cpm_milli: cpm,
        }
    }

    #[test]
    fn winner_pays_second_price() {
        let out = run_second_price(&[bid(1, 1500), bid(2, 1200), bid(3, 900)], 500).unwrap();
        assert_eq!(out.winner.campaign, CampaignId(1));
        assert_eq!(out.clearing_cpm_milli, 1200);
        assert_eq!(out.participants, 3);
    }

    #[test]
    fn sole_bidder_pays_floor() {
        let out = run_second_price(&[bid(1, 1500)], 700).unwrap();
        assert_eq!(out.clearing_cpm_milli, 700);
        assert_eq!(out.participants, 1);
    }

    #[test]
    fn bids_below_floor_are_discarded() {
        assert!(run_second_price(&[bid(1, 400)], 500).is_none());
        let out = run_second_price(&[bid(1, 400), bid(2, 600)], 500).unwrap();
        assert_eq!(out.winner.campaign, CampaignId(2));
        assert_eq!(out.participants, 1);
        assert_eq!(out.clearing_cpm_milli, 500);
    }

    #[test]
    fn tie_goes_to_first_arrival() {
        let out = run_second_price(&[bid(7, 1000), bid(8, 1000)], 0).unwrap();
        assert_eq!(out.winner.campaign, CampaignId(7));
        assert_eq!(out.clearing_cpm_milli, 1000);
    }

    #[test]
    fn empty_auction_has_no_outcome() {
        assert!(run_second_price(&[], 0).is_none());
    }

    #[test]
    fn clearing_price_never_exceeds_winning_bid() {
        let out = run_second_price(&[bid(1, 1000), bid(2, 999)], 0).unwrap();
        assert!(out.clearing_cpm_milli <= out.winner.cpm_milli);
    }
}
