//! OpenRTB-flavoured JSON messaging between exchanges and DSPs.
//!
//! Production exchanges and DSPs speak OpenRTB: JSON bid requests and
//! responses over HTTP. This module provides that interop layer for the
//! pipeline's native types — a bid request serialises to a compact JSON
//! document shaped like OpenRTB 2.x (`imp`, `device`, `geo`, `banner`
//! objects), and responses round-trip the same way. It is a faithful
//! *shape*, not a complete OpenRTB implementation: exactly the fields
//! the Q-Tag evaluation pipeline exercises.

use crate::auction::{AdSlotRequest, Bid};
use crate::campaign::{CampaignId, GeoRegion};
use qtag_geometry::Size;
use qtag_wire::{BrowserKind, OsKind, SiteType};
use serde::{Deserialize, Serialize};

/// Errors from the RTB JSON layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtbError {
    /// Malformed JSON or schema mismatch.
    Json(String),
    /// A field carried an unmappable value.
    BadField(&'static str, String),
}

impl core::fmt::Display for RtbError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RtbError::Json(e) => write!(f, "rtb json: {e}"),
            RtbError::BadField(name, v) => write!(f, "rtb field {name}: bad value {v:?}"),
        }
    }
}

impl std::error::Error for RtbError {}

#[derive(Debug, Serialize, Deserialize)]
struct BannerObj {
    w: u32,
    h: u32,
}

#[derive(Debug, Serialize, Deserialize)]
struct ImpObj {
    id: String,
    banner: BannerObj,
    /// Bid floor in CPM dollars (OpenRTB convention).
    bidfloor: f64,
}

#[derive(Debug, Serialize, Deserialize)]
struct GeoObj {
    country: String,
}

#[derive(Debug, Serialize, Deserialize)]
struct DeviceObj {
    os: String,
    ua: String,
    geo: GeoObj,
}

#[derive(Debug, Serialize, Deserialize)]
struct AppObj {}

#[derive(Debug, Serialize, Deserialize)]
struct SiteObj {}

/// An OpenRTB-shaped bid request document.
#[derive(Debug, Serialize, Deserialize)]
pub struct BidRequestDoc {
    id: String,
    imp: Vec<ImpObj>,
    device: DeviceObj,
    #[serde(skip_serializing_if = "Option::is_none")]
    app: Option<AppObj>,
    #[serde(skip_serializing_if = "Option::is_none")]
    site: Option<SiteObj>,
}

fn geo_to_country(geo: GeoRegion) -> &'static str {
    match geo {
        GeoRegion::UnitedStates => "USA",
        GeoRegion::Mexico => "MEX",
        GeoRegion::Colombia => "COL",
        GeoRegion::Spain => "ESP",
        GeoRegion::UnitedKingdom => "GBR",
        GeoRegion::Germany => "DEU",
        GeoRegion::France => "FRA",
        GeoRegion::Other => "XXX",
    }
}

fn country_to_geo(c: &str) -> Result<GeoRegion, RtbError> {
    Ok(match c {
        "USA" => GeoRegion::UnitedStates,
        "MEX" => GeoRegion::Mexico,
        "COL" => GeoRegion::Colombia,
        "ESP" => GeoRegion::Spain,
        "GBR" => GeoRegion::UnitedKingdom,
        "DEU" => GeoRegion::Germany,
        "FRA" => GeoRegion::France,
        "XXX" => GeoRegion::Other,
        other => return Err(RtbError::BadField("geo.country", other.to_string())),
    })
}

fn os_to_str(os: OsKind) -> &'static str {
    match os {
        OsKind::Windows10 => "Windows 10",
        OsKind::MacOs => "macOS",
        OsKind::Android => "Android",
        OsKind::Ios => "iOS",
    }
}

fn str_to_os(s: &str) -> Result<OsKind, RtbError> {
    Ok(match s {
        "Windows 10" => OsKind::Windows10,
        "macOS" => OsKind::MacOs,
        "Android" => OsKind::Android,
        "iOS" => OsKind::Ios,
        other => return Err(RtbError::BadField("device.os", other.to_string())),
    })
}

fn browser_to_ua(b: BrowserKind) -> &'static str {
    match b {
        BrowserKind::Chrome => "Mozilla/5.0 Chrome",
        BrowserKind::Firefox => "Mozilla/5.0 Firefox",
        BrowserKind::Safari => "Mozilla/5.0 Safari",
        BrowserKind::Ie11 => "Mozilla/5.0 Trident/7.0",
        BrowserKind::AndroidWebView => "Mozilla/5.0 wv Chrome",
        BrowserKind::IosWebView => "Mozilla/5.0 Mobile WKWebView",
        BrowserKind::Brave => "Mozilla/5.0 Brave",
    }
}

fn ua_to_browser(ua: &str) -> Result<BrowserKind, RtbError> {
    Ok(if ua.contains("wv Chrome") {
        BrowserKind::AndroidWebView
    } else if ua.contains("WKWebView") {
        BrowserKind::IosWebView
    } else if ua.contains("Brave") {
        BrowserKind::Brave
    } else if ua.contains("Chrome") {
        BrowserKind::Chrome
    } else if ua.contains("Firefox") {
        BrowserKind::Firefox
    } else if ua.contains("Trident") {
        BrowserKind::Ie11
    } else if ua.contains("Safari") {
        BrowserKind::Safari
    } else {
        return Err(RtbError::BadField("device.ua", ua.to_string()));
    })
}

/// Serialises a native [`AdSlotRequest`] to an OpenRTB-shaped JSON
/// string.
pub fn encode_bid_request(req: &AdSlotRequest) -> Result<String, RtbError> {
    let doc = BidRequestDoc {
        id: req.request_id.to_string(),
        imp: vec![ImpObj {
            id: "1".into(),
            banner: BannerObj {
                w: req.slot_size.width.round() as u32,
                h: req.slot_size.height.round() as u32,
            },
            bidfloor: req.floor_cpm_milli as f64 / 1000.0,
        }],
        device: DeviceObj {
            os: os_to_str(req.os).to_string(),
            ua: browser_to_ua(req.browser).to_string(),
            geo: GeoObj {
                country: geo_to_country(req.geo).to_string(),
            },
        },
        app: (req.site_type == SiteType::App).then_some(AppObj {}),
        site: (req.site_type == SiteType::Browser).then_some(SiteObj {}),
    };
    serde_json::to_string(&doc).map_err(|e| RtbError::Json(e.to_string()))
}

/// Parses an OpenRTB-shaped JSON bid request back into the native type.
pub fn decode_bid_request(json: &str) -> Result<AdSlotRequest, RtbError> {
    let doc: BidRequestDoc =
        serde_json::from_str(json).map_err(|e| RtbError::Json(e.to_string()))?;
    let imp = doc
        .imp
        .first()
        .ok_or(RtbError::BadField("imp", "empty".into()))?;
    let site_type = match (&doc.app, &doc.site) {
        (Some(_), None) => SiteType::App,
        (None, Some(_)) => SiteType::Browser,
        _ => {
            return Err(RtbError::BadField(
                "app/site",
                "exactly one required".into(),
            ))
        }
    };
    Ok(AdSlotRequest {
        request_id: doc
            .id
            .parse()
            .map_err(|_| RtbError::BadField("id", doc.id.clone()))?,
        geo: country_to_geo(&doc.device.geo.country)?,
        os: str_to_os(&doc.device.os)?,
        browser: ua_to_browser(&doc.device.ua)?,
        site_type,
        slot_size: Size::new(f64::from(imp.banner.w), f64::from(imp.banner.h)),
        floor_cpm_milli: (imp.bidfloor * 1000.0).round() as u64,
    })
}

/// An OpenRTB-shaped bid response document.
#[derive(Debug, Serialize, Deserialize)]
pub struct BidResponseDoc {
    id: String,
    /// Bid price in CPM dollars.
    price: f64,
    /// Campaign (OpenRTB `cid`).
    cid: String,
}

/// Serialises a native [`Bid`] for request `request_id`.
pub fn encode_bid_response(request_id: u64, bid: &Bid) -> Result<String, RtbError> {
    serde_json::to_string(&BidResponseDoc {
        id: request_id.to_string(),
        price: bid.cpm_milli as f64 / 1000.0,
        cid: bid.campaign.0.to_string(),
    })
    .map_err(|e| RtbError::Json(e.to_string()))
}

/// Parses a bid response; returns `(request_id, bid)`.
pub fn decode_bid_response(json: &str) -> Result<(u64, Bid), RtbError> {
    let doc: BidResponseDoc =
        serde_json::from_str(json).map_err(|e| RtbError::Json(e.to_string()))?;
    Ok((
        doc.id
            .parse()
            .map_err(|_| RtbError::BadField("id", doc.id.clone()))?,
        Bid {
            campaign: CampaignId(
                doc.cid
                    .parse()
                    .map_err(|_| RtbError::BadField("cid", doc.cid.clone()))?,
            ),
            cpm_milli: (doc.price * 1000.0).round() as u64,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> AdSlotRequest {
        AdSlotRequest {
            request_id: 42,
            geo: GeoRegion::Colombia,
            os: OsKind::Android,
            browser: BrowserKind::AndroidWebView,
            site_type: SiteType::App,
            slot_size: Size::MOBILE_BANNER,
            floor_cpm_milli: 250,
        }
    }

    #[test]
    fn bid_request_round_trips() {
        let json = encode_bid_request(&request()).unwrap();
        let back = decode_bid_request(&json).unwrap();
        assert_eq!(back.request_id, 42);
        assert_eq!(back.geo, GeoRegion::Colombia);
        assert_eq!(back.os, OsKind::Android);
        assert_eq!(back.browser, BrowserKind::AndroidWebView);
        assert_eq!(back.site_type, SiteType::App);
        assert_eq!(back.slot_size, Size::MOBILE_BANNER);
        assert_eq!(back.floor_cpm_milli, 250);
    }

    #[test]
    fn request_json_is_openrtb_shaped() {
        let json = encode_bid_request(&request()).unwrap();
        assert!(json.contains("\"imp\""));
        assert!(json.contains("\"banner\""));
        assert!(json.contains("\"bidfloor\":0.25"));
        assert!(json.contains("\"country\":\"COL\""));
        assert!(json.contains("\"app\""));
        assert!(!json.contains("\"site\""));
    }

    #[test]
    fn browser_placement_uses_site_object() {
        let mut req = request();
        req.site_type = SiteType::Browser;
        req.browser = BrowserKind::Chrome;
        let json = encode_bid_request(&req).unwrap();
        assert!(json.contains("\"site\""));
        assert!(!json.contains("\"app\""));
        assert_eq!(
            decode_bid_request(&json).unwrap().site_type,
            SiteType::Browser
        );
    }

    #[test]
    fn every_ua_maps_back() {
        for b in [
            BrowserKind::Chrome,
            BrowserKind::Firefox,
            BrowserKind::Safari,
            BrowserKind::Ie11,
            BrowserKind::AndroidWebView,
            BrowserKind::IosWebView,
            BrowserKind::Brave,
        ] {
            assert_eq!(ua_to_browser(browser_to_ua(b)).unwrap(), b, "{b:?}");
        }
    }

    #[test]
    fn bid_response_round_trips() {
        let bid = Bid {
            campaign: CampaignId(9),
            cpm_milli: 1750,
        };
        let json = encode_bid_response(42, &bid).unwrap();
        assert!(json.contains("\"price\":1.75"));
        let (rid, back) = decode_bid_response(&json).unwrap();
        assert_eq!(rid, 42);
        assert_eq!(back, bid);
    }

    #[test]
    fn malformed_documents_error_cleanly() {
        assert!(matches!(decode_bid_request("{"), Err(RtbError::Json(_))));
        assert!(decode_bid_request("{\"id\":\"x\",\"imp\":[],\"device\":{\"os\":\"Android\",\"ua\":\"Chrome\",\"geo\":{\"country\":\"ESP\"}}}").is_err());
        let bad_geo = encode_bid_request(&request())
            .unwrap()
            .replace("COL", "ZZZ");
        assert!(matches!(
            decode_bid_request(&bad_geo),
            Err(RtbError::BadField("geo.country", _))
        ));
    }
}
