//! Ad markup: embedding a served creative into the publisher page.
//!
//! DSP-served ads arrive wrapped: the publisher's slot loads an SSP
//! iframe, which loads the DSP's iframe, which contains the creative and
//! the measurement tags — "a double cross-domain iframe is one of the
//! most common scenarios faced by DSPs in the ad delivery process" (§4.2
//! footnote 2). The builder reproduces that structure exactly; the
//! Same-Origin Policy then does the rest (no tag inside can read its
//! position).

use crate::dsp::ServedAd;
use qtag_dom::{DomError, Element, ElementKind, ElementRef, FrameId, Origin, Page};
use qtag_geometry::{Point, Rect};
use serde::Serialize;

/// Handles to the pieces of one embedded ad.
#[derive(Debug, Clone, PartialEq)]
pub struct AdPlacement {
    /// The SSP's wrapper frame.
    pub ssp_frame: FrameId,
    /// The DSP's creative frame — measurement tags attach here.
    pub dsp_frame: FrameId,
    /// The creative element inside the DSP frame.
    pub creative: ElementRef,
    /// The creative's rectangle in DSP-frame document coordinates
    /// (origin 0,0 — the creative fills its iframe).
    pub creative_rect: Rect,
}

/// Origins used in the serving chain. Defaults mirror a generic
/// SSP/DSP pair; the certification harness overrides them per test.
#[derive(Debug, Clone, Serialize)]
pub struct ServingOrigins {
    /// The SSP wrapper iframe's origin.
    pub ssp: String,
    /// The DSP creative iframe's origin.
    pub dsp: String,
}

impl Default for ServingOrigins {
    fn default() -> Self {
        ServingOrigins {
            ssp: "https://cdn.ssp-network.example".into(),
            dsp: "https://serve.dsp-platform.example".into(),
        }
    }
}

/// Embeds `ad` into `page` at the slot rectangle `slot` (root-frame
/// document coordinates), producing the double cross-domain iframe
/// structure. Returns handles for tag attachment.
pub fn embed_served_ad(
    page: &mut Page,
    slot: Rect,
    ad: &ServedAd,
    origins: &ServingOrigins,
) -> Result<AdPlacement, DomError> {
    let ssp_origin = Origin::parse(&origins.ssp)?;
    let dsp_origin = Origin::parse(&origins.dsp)?;
    let creative_rect = Rect::from_origin_size(Point::ORIGIN, ad.creative_size);

    // The slot element in the publisher page (bookkeeping only).
    page.add_element(
        page.root(),
        Element::new(
            format!("ad-slot:{}", ad.impression_id),
            ElementKind::AdSlot,
            slot,
        ),
    )?;

    // SSP wrapper iframe fills the slot.
    let ssp_frame = page.create_frame(ssp_origin, ad.creative_size);
    page.embed_iframe(page.root(), ssp_frame, slot)?;

    // DSP creative iframe fills the wrapper.
    let dsp_frame = page.create_frame(dsp_origin, ad.creative_size);
    page.embed_iframe(ssp_frame, dsp_frame, creative_rect)?;

    // The creative itself.
    let creative = page.add_element(
        dsp_frame,
        Element::new(
            format!("creative:c{}", ad.campaign_id.0),
            ElementKind::Creative,
            creative_rect,
        ),
    )?;

    Ok(AdPlacement {
        ssp_frame,
        dsp_frame,
        creative,
        creative_rect,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignId;
    use qtag_geometry::Size;
    use qtag_wire::AdFormat;

    fn ad() -> ServedAd {
        ServedAd {
            impression_id: 42,
            campaign_id: CampaignId(7),
            creative_size: Size::MEDIUM_RECTANGLE,
            format: AdFormat::Display,
            paid_cpm_milli: 800,
        }
    }

    #[test]
    fn builds_double_cross_domain_chain() {
        let mut page = Page::new(Origin::https("news.example"), Size::new(1280.0, 4000.0));
        let placement = embed_served_ad(
            &mut page,
            Rect::new(490.0, 1200.0, 300.0, 250.0),
            &ad(),
            &ServingOrigins::default(),
        )
        .unwrap();
        assert_eq!(page.cross_origin_depth(placement.dsp_frame).unwrap(), 2);
        assert_eq!(
            page.frame_rect_in_root_unchecked(placement.dsp_frame)
                .unwrap(),
            Rect::new(490.0, 1200.0, 300.0, 250.0)
        );
    }

    #[test]
    fn tag_in_dsp_frame_is_sop_blocked() {
        let mut page = Page::new(Origin::https("news.example"), Size::new(1280.0, 4000.0));
        let origins = ServingOrigins::default();
        let placement = embed_served_ad(
            &mut page,
            Rect::new(0.0, 0.0, 300.0, 250.0),
            &ad(),
            &origins,
        )
        .unwrap();
        let tag_origin = Origin::parse(&origins.dsp).unwrap();
        assert!(page
            .frame_rect_in_root(placement.dsp_frame, &tag_origin)
            .is_err());
    }

    #[test]
    fn creative_fills_its_iframe() {
        let mut page = Page::new(Origin::https("news.example"), Size::new(1280.0, 4000.0));
        let placement = embed_served_ad(
            &mut page,
            Rect::new(0.0, 0.0, 300.0, 250.0),
            &ad(),
            &ServingOrigins::default(),
        )
        .unwrap();
        assert_eq!(placement.creative_rect, Rect::new(0.0, 0.0, 300.0, 250.0));
        let el = page.element(placement.creative).unwrap();
        assert_eq!(el.kind, ElementKind::Creative);
    }

    #[test]
    fn same_origin_publisher_chain_would_not_be_blocked() {
        // Counterfactual: if the whole chain were publisher-origin, the
        // straightforward geometry read works — demonstrating it is the
        // cross-domain serving path, not iframes per se, that forces the
        // side channel.
        let mut page = Page::new(Origin::https("news.example"), Size::new(1280.0, 4000.0));
        let origins = ServingOrigins {
            ssp: "https://news.example".into(),
            dsp: "https://news.example".into(),
        };
        let placement = embed_served_ad(
            &mut page,
            Rect::new(10.0, 20.0, 300.0, 250.0),
            &ad(),
            &origins,
        )
        .unwrap();
        let rect = page
            .frame_rect_in_root(placement.dsp_frame, &Origin::https("news.example"))
            .unwrap();
        assert_eq!(rect, Rect::new(10.0, 20.0, 300.0, 250.0));
    }
}
