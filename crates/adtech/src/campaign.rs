//! Campaigns: what advertisers configure in the DSP (§2.1).

use qtag_geometry::Size;
use qtag_wire::{AdFormat, OsKind, SiteType};
use serde::Serialize;

/// Campaign identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub struct CampaignId(pub u32);

/// Advertiser sectors — the paper's campaigns "belong to advertisers
/// from different sectors (e.g., Food & Drink, Personal Finance, Style &
/// Fashion, etc.)" (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
#[allow(missing_docs)]
pub enum Sector {
    FoodAndDrink,
    PersonalFinance,
    StyleAndFashion,
    Travel,
    Technology,
    Retail,
    Automotive,
    Entertainment,
}

impl Sector {
    /// All sectors, for workload generation.
    pub const ALL: [Sector; 8] = [
        Sector::FoodAndDrink,
        Sector::PersonalFinance,
        Sector::StyleAndFashion,
        Sector::Travel,
        Sector::Technology,
        Sector::Retail,
        Sector::Automotive,
        Sector::Entertainment,
    ];
}

/// Geographic regions the paper's campaigns target (§5: "US, Mexico,
/// Colombia, Spain, UK, Germany, etc.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
#[allow(missing_docs)]
pub enum GeoRegion {
    UnitedStates,
    Mexico,
    Colombia,
    Spain,
    UnitedKingdom,
    Germany,
    France,
    Other,
}

impl GeoRegion {
    /// All regions, for workload generation.
    pub const ALL: [GeoRegion; 8] = [
        GeoRegion::UnitedStates,
        GeoRegion::Mexico,
        GeoRegion::Colombia,
        GeoRegion::Spain,
        GeoRegion::UnitedKingdom,
        GeoRegion::Germany,
        GeoRegion::France,
        GeoRegion::Other,
    ];
}

/// Audience specification: "geographical location, demographic
/// information, users' preferences, etc." (§2.1). Empty lists mean "any".
#[derive(Debug, Clone, Default, Serialize)]
pub struct Targeting {
    /// Acceptable user regions (empty = worldwide).
    pub geos: Vec<GeoRegion>,
    /// Acceptable operating systems (empty = any).
    pub os: Vec<OsKind>,
    /// Acceptable placements (empty = any).
    pub site_types: Vec<SiteType>,
}

impl Targeting {
    /// Worldwide, any device, any placement.
    pub fn any() -> Self {
        Targeting::default()
    }

    /// `true` when a request context satisfies the targeting.
    pub fn matches(&self, geo: GeoRegion, os: OsKind, site_type: SiteType) -> bool {
        (self.geos.is_empty() || self.geos.contains(&geo))
            && (self.os.is_empty() || self.os.contains(&os))
            && (self.site_types.is_empty() || self.site_types.contains(&site_type))
    }
}

/// One display/video campaign configured in the DSP.
#[derive(Debug, Clone, Serialize)]
pub struct Campaign {
    /// Identifier.
    pub id: CampaignId,
    /// Advertiser name (diagnostics only).
    pub advertiser: String,
    /// Advertiser sector.
    pub sector: Sector,
    /// Audience targeting.
    pub targeting: Targeting,
    /// CPM bid in **milli-dollars per mille** ($1.00 CPM = 1000). The
    /// paper's economics use a $1 average CPM (§6.1).
    pub cpm_milli: u64,
    /// Total impression budget (the campaign stops buying at 0).
    pub impression_budget: u64,
    /// Creative pixel size — the paper's campaigns use 300×250 and
    /// 320×50 (§5).
    pub creative_size: Size,
    /// Creative format.
    pub format: AdFormat,
}

impl Campaign {
    /// A $1-CPM display campaign with the given creative size and an
    /// effectively unlimited budget.
    pub fn display(id: u32, advertiser: &str, sector: Sector, creative_size: Size) -> Self {
        Campaign {
            id: CampaignId(id),
            advertiser: advertiser.to_string(),
            sector,
            targeting: Targeting::any(),
            cpm_milli: 1000,
            impression_budget: u64::MAX,
            creative_size,
            format: AdFormat::classify_display(creative_size.area()),
        }
    }

    /// Per-impression price implied by the CPM bid, in micro-dollars.
    pub fn price_per_impression_micro(&self) -> u64 {
        self.cpm_milli // 1000 milli$/1000 imps = 1 milli$/imp = 1000 µ$… kept as milli-CPM micro-dollars
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_targeting_matches_everything() {
        let t = Targeting::any();
        assert!(t.matches(GeoRegion::Spain, OsKind::Android, SiteType::App));
        assert!(t.matches(GeoRegion::Other, OsKind::Windows10, SiteType::Browser));
    }

    #[test]
    fn geo_targeting_filters() {
        let t = Targeting {
            geos: vec![GeoRegion::Spain, GeoRegion::Mexico],
            ..Targeting::any()
        };
        assert!(t.matches(GeoRegion::Spain, OsKind::Ios, SiteType::Browser));
        assert!(!t.matches(GeoRegion::Germany, OsKind::Ios, SiteType::Browser));
    }

    #[test]
    fn os_and_site_targeting_compose() {
        let t = Targeting {
            geos: vec![],
            os: vec![OsKind::Android],
            site_types: vec![SiteType::App],
        };
        assert!(t.matches(GeoRegion::Other, OsKind::Android, SiteType::App));
        assert!(!t.matches(GeoRegion::Other, OsKind::Android, SiteType::Browser));
        assert!(!t.matches(GeoRegion::Other, OsKind::Ios, SiteType::App));
    }

    #[test]
    fn display_campaign_classifies_format_from_size() {
        let c = Campaign::display(1, "Acme", Sector::Retail, Size::MEDIUM_RECTANGLE);
        assert_eq!(c.format, AdFormat::Display);
        let big = Campaign::display(2, "Maxi", Sector::Retail, Size::new(970.0, 250.0));
        assert_eq!(big.format, AdFormat::LargeDisplay);
    }

    #[test]
    fn one_dollar_cpm_default() {
        let c = Campaign::display(1, "Acme", Sector::Travel, Size::MOBILE_BANNER);
        assert_eq!(c.cpm_milli, 1000);
    }
}
