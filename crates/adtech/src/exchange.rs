//! Ad exchanges: the auction orchestrators between sell and buy side.

use crate::auction::{run_second_price, AdSlotRequest, AuctionOutcome, Bid};
use crate::dsp::{Dsp, ServedAd};
use serde::Serialize;

/// The exchanges the paper's campaigns traverse (§5: "AppNexus, Axonix,
/// DoubleClick, MoPub, OpenX, Rubicon, Smaato, Smart").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
#[allow(missing_docs)]
pub enum ExchangeKind {
    AppNexus,
    Axonix,
    DoubleClick,
    MoPub,
    OpenX,
    Rubicon,
    Smaato,
    Smart,
}

impl ExchangeKind {
    /// All exchanges, for workload generation.
    pub const ALL: [ExchangeKind; 8] = [
        ExchangeKind::AppNexus,
        ExchangeKind::Axonix,
        ExchangeKind::DoubleClick,
        ExchangeKind::MoPub,
        ExchangeKind::OpenX,
        ExchangeKind::Rubicon,
        ExchangeKind::Smaato,
        ExchangeKind::Smart,
    ];
}

/// One ad exchange: forwards bid requests to connected DSPs, runs the
/// second-price auction, notifies the winner and returns the served ad.
#[derive(Debug)]
pub struct Exchange {
    kind: ExchangeKind,
    /// Competing (non-modelled) demand: the exchange synthesises one
    /// opposing bid at this CPM per auction, so our DSP pays realistic
    /// second prices instead of always clearing at the floor. `0`
    /// disables competition.
    pub rival_cpm_milli: u64,
    auctions: u64,
    fills: u64,
}

impl Exchange {
    /// Creates an exchange with moderate rival demand (a $0.80 CPM
    /// opposing bid — under the paper's $1 reference CPM, so our DSP
    /// wins when it bids list price but pays the rival's price).
    pub fn new(kind: ExchangeKind) -> Self {
        Exchange {
            kind,
            rival_cpm_milli: 800,
            auctions: 0,
            fills: 0,
        }
    }

    /// Which exchange this is.
    pub fn kind(&self) -> ExchangeKind {
        self.kind
    }

    /// Auctions run so far.
    pub fn auctions(&self) -> u64 {
        self.auctions
    }

    /// Auctions that ended with an ad served.
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Fill rate (served / auctions).
    pub fn fill_rate(&self) -> f64 {
        if self.auctions == 0 {
            0.0
        } else {
            self.fills as f64 / self.auctions as f64
        }
    }

    /// Runs one auction for `req` against `dsp` (plus the synthetic
    /// rival). Returns the served ad and the auction outcome when our
    /// DSP wins; `None` when it doesn't bid or is outbid.
    pub fn run(
        &mut self,
        req: &AdSlotRequest,
        dsp: &mut Dsp,
    ) -> Option<(ServedAd, AuctionOutcome)> {
        self.auctions += 1;
        let our_bid = dsp.bid(req)?;
        let mut bids: Vec<Bid> = vec![our_bid];
        if self.rival_cpm_milli > 0 {
            bids.push(Bid {
                campaign: crate::campaign::CampaignId(u32::MAX), // rival marker
                cpm_milli: self.rival_cpm_milli,
            });
        }
        let outcome = run_second_price(&bids, req.floor_cpm_milli)?;
        if outcome.winner.campaign != our_bid.campaign {
            return None; // rival won; impression invisible to our DSP
        }
        let served = dsp.win(our_bid.campaign, outcome.clearing_cpm_milli);
        self.fills += 1;
        Some((served, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, GeoRegion, Sector};
    use qtag_geometry::Size;
    use qtag_wire::{BrowserKind, OsKind, SiteType};

    fn req() -> AdSlotRequest {
        AdSlotRequest {
            request_id: 1,
            geo: GeoRegion::Mexico,
            os: OsKind::Ios,
            browser: BrowserKind::Safari,
            site_type: SiteType::Browser,
            slot_size: Size::MEDIUM_RECTANGLE,
            floor_cpm_milli: 100,
        }
    }

    #[test]
    fn dsp_wins_and_pays_rival_price() {
        let mut ex = Exchange::new(ExchangeKind::OpenX);
        let mut dsp = Dsp::new(vec![Campaign::display(
            1,
            "Acme",
            Sector::Retail,
            Size::MEDIUM_RECTANGLE,
        )]);
        let (served, outcome) = ex.run(&req(), &mut dsp).unwrap();
        assert_eq!(served.paid_cpm_milli, 800, "second price = rival bid");
        assert_eq!(outcome.participants, 2);
        assert_eq!(ex.fill_rate(), 1.0);
    }

    #[test]
    fn rival_outbids_low_campaign() {
        let mut ex = Exchange::new(ExchangeKind::Rubicon);
        ex.rival_cpm_milli = 5000;
        let mut dsp = Dsp::new(vec![Campaign::display(
            1,
            "Cheap",
            Sector::Retail,
            Size::MEDIUM_RECTANGLE,
        )]);
        assert!(ex.run(&req(), &mut dsp).is_none());
        assert_eq!(ex.fills(), 0);
        assert_eq!(ex.auctions(), 1);
    }

    #[test]
    fn no_bid_means_no_fill() {
        let mut ex = Exchange::new(ExchangeKind::Smaato);
        let mut dsp = Dsp::new(vec![]);
        assert!(ex.run(&req(), &mut dsp).is_none());
        assert_eq!(ex.fill_rate(), 0.0);
    }

    #[test]
    fn without_rival_dsp_pays_floor() {
        let mut ex = Exchange::new(ExchangeKind::Smart);
        ex.rival_cpm_milli = 0;
        let mut dsp = Dsp::new(vec![Campaign::display(
            1,
            "Solo",
            Sector::Travel,
            Size::MEDIUM_RECTANGLE,
        )]);
        let (served, _) = ex.run(&req(), &mut dsp).unwrap();
        assert_eq!(served.paid_cpm_milli, 100);
    }
}
