//! # qtag-adtech
//!
//! The programmatic-advertising substrate (§2.1, Figure 1): everything
//! between an advertiser's campaign and an ad landing in an iframe on a
//! user's page. The production evaluation of the paper runs on top of a
//! real DSP; this crate rebuilds that pipeline end to end:
//!
//! * [`Campaign`] / [`Dsp`] — campaign configuration (targeting, CPM
//!   bids, budgets) and the DSP's bidder;
//! * [`Exchange`] — ad exchanges running **second-price auctions** over
//!   bid requests from the supply side (the paper's campaigns traverse
//!   AppNexus, DoubleClick, MoPub, OpenX, Rubicon, Smaato, Smart and
//!   Axonix — modelled as exchange instances with different supply
//!   mixes);
//! * [`AdSlotRequest`] / [`ServedAd`] — the bid request context and the
//!   served creative with its impression id;
//! * [`markup`] — the ad markup builder: embeds the creative inside the
//!   paper's *double cross-domain iframe* (SSP iframe → DSP iframe) on
//!   the publisher page;
//! * [`blockers`] — the adblock / Brave / privacy-browser model of
//!   §4.3: blockers sever the third-party connection so neither ad nor
//!   tag deploys; privacy browsers only block cookies, which Q-Tag does
//!   not need.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod blockers;
pub mod frequency;
pub mod markup;
pub mod rtb;

mod auction;
mod campaign;
mod dsp;
mod exchange;

pub use auction::{run_second_price, AdSlotRequest, AuctionOutcome, Bid};
pub use blockers::BlockerKind;
pub use campaign::{Campaign, CampaignId, GeoRegion, Sector, Targeting};
pub use dsp::{Dsp, DspStats, ServedAd};
pub use exchange::{Exchange, ExchangeKind};
pub use markup::{embed_served_ad, AdPlacement, ServingOrigins};
