//! Built-in models: self-contained replicas of the workspace's
//! concurrency patterns, runnable without `--cfg qtag_check` (the
//! shims are runtime-switched), so the PR-1 lost-wakeup regression is
//! exercised by plain `cargo test` and the `qtag-models` throughput
//! binary.
//!
//! The star exhibit is [`mini_channel_last_sender_drop`]: a faithful
//! miniature of the vendored crossbeam channel's disconnect path,
//! parameterized on whether the last sender's drop notifies *under*
//! the queue mutex. `notify_under_lock = false` is exactly the PR-1
//! bug: the dropper's `fetch_sub` + `notify_all` can interleave
//! between a receiver's disconnect check (made while holding the
//! queue lock) and its enqueue on the condvar, so the notification
//! finds no waiter and the receiver blocks forever. The model checker
//! finds that schedule deterministically; with the fix the drop path
//! cannot run until the receiver's wait has atomically released the
//! lock and enqueued, so every schedule terminates.

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{thread, Arc, Condvar, Mutex};
use std::collections::VecDeque;

struct MiniInner {
    queue: Mutex<VecDeque<u64>>,
    senders: AtomicUsize,
    not_empty: Condvar,
}

/// Blocking receive: `Ok(item)` or `Err(())` for disconnected.
fn mini_recv(inner: &Arc<MiniInner>) -> Result<u64, ()> {
    let mut q = inner.queue.lock();
    loop {
        if let Some(v) = q.pop_front() {
            return Ok(v);
        }
        if inner.senders.load(Ordering::SeqCst) == 0 {
            return Err(());
        }
        q = inner.not_empty.wait(q);
    }
}

fn mini_send(inner: &Arc<MiniInner>, v: u64) {
    let mut q = inner.queue.lock();
    q.push_back(v);
    inner.not_empty.notify_one();
}

/// The last-sender drop path, with the PR-1 bug behind a flag.
fn mini_drop_sender(inner: &Arc<MiniInner>, notify_under_lock: bool) {
    if inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
        if notify_under_lock {
            // The fix: taking the queue lock orders this notify after
            // any in-flight receiver's atomic unlock-and-enqueue.
            let _guard = inner.queue.lock();
            inner.not_empty.notify_all();
        } else {
            // The bug: this notify can land between a receiver's
            // "senders != 0" check and its wait.
            inner.not_empty.notify_all();
        }
    }
}

/// One receiver blocking for disconnect, one thread dropping the last
/// sender. Must deadlock in some schedule when `notify_under_lock` is
/// `false`; must pass every schedule when `true`.
pub fn mini_channel_last_sender_drop(notify_under_lock: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let inner = Arc::new(MiniInner {
            queue: Mutex::new(VecDeque::new()),
            senders: AtomicUsize::new(1),
            not_empty: Condvar::new(),
        });
        let dropper = {
            let inner = Arc::clone(&inner);
            thread::spawn(move || mini_drop_sender(&inner, notify_under_lock))
        };
        let got = mini_recv(&inner);
        assert_eq!(got, Err(()), "recv after last-sender drop must disconnect");
        dropper.join().unwrap();
    }
}

/// Multi-producer conservation: every item sent is received exactly
/// once and the receiver sees the disconnect. The miniature of the
/// `sent == applied + ...` identities the ported models assert.
pub fn mpsc_conservation(
    senders: usize,
    items_per_sender: u64,
) -> impl Fn() + Send + Sync + 'static {
    move || {
        let inner = Arc::new(MiniInner {
            queue: Mutex::new(VecDeque::new()),
            senders: AtomicUsize::new(senders),
            not_empty: Condvar::new(),
        });
        let handles: Vec<_> = (0..senders)
            .map(|s| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || {
                    for i in 0..items_per_sender {
                        mini_send(&inner, (s as u64) * 1_000 + i);
                    }
                    mini_drop_sender(&inner, true);
                })
            })
            .collect();
        let mut received = Vec::new();
        while let Ok(v) = mini_recv(&inner) {
            received.push(v);
        }
        for h in handles {
            h.join().unwrap();
        }
        let expect = senders as u64 * items_per_sender;
        assert_eq!(
            received.len() as u64,
            expect,
            "conservation: received {} of {expect} sent",
            received.len()
        );
        received.sort_unstable();
        received.dedup();
        assert_eq!(
            received.len() as u64,
            expect,
            "conservation: duplicate delivery"
        );
    }
}

/// N threads × K lock-protected increments; the final count must be
/// exact in every schedule.
pub fn mutex_counter(threads: usize, increments: u64) -> impl Fn() + Send + Sync + 'static {
    move || {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    for _ in 0..increments {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), threads as u64 * increments);
    }
}

/// The store-buffer litmus test under the model's sequentially
/// consistent semantics: `r1 == 0 && r2 == 0` is impossible (it
/// requires store reordering the model does not explore).
pub fn store_buffer_sc() -> impl Fn() + Send + Sync + 'static {
    || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let t1 = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            thread::spawn(move || {
                x.store(1, Ordering::SeqCst);
                y.load(Ordering::SeqCst)
            })
        };
        let t2 = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            thread::spawn(move || {
                y.store(1, Ordering::SeqCst);
                x.load(Ordering::SeqCst)
            })
        };
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        assert!(
            r1 == 1 || r2 == 1,
            "store-buffer outcome (0,0) must be impossible under SC"
        );
    }
}

/// Producer sets a flag under the mutex and notifies; the consumer
/// waits for it. Passes iff no schedule loses the wakeup (deadlock
/// detection is the oracle).
pub fn condvar_handoff() -> impl Fn() + Send + Sync + 'static {
    || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let producer = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (flag, cv) = &*pair;
                let mut ready = flag.lock();
                *ready = true;
                cv.notify_one();
            })
        };
        let (flag, cv) = &*pair;
        let mut ready = flag.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        drop(ready);
        producer.join().unwrap();
    }
}

/// Classic AB-BA lock-order inversion; some schedule must deadlock.
/// A must-fail fixture for deadlock detection.
pub fn abba_deadlock() -> impl Fn() + Send + Sync + 'static {
    || {
        let a = Arc::new(Mutex::new(0u64));
        let b = Arc::new(Mutex::new(0u64));
        let t1 = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let ga = a.lock();
                let mut gb = b.lock();
                *gb += *ga;
            })
        };
        let t2 = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            thread::spawn(move || {
                let gb = b.lock();
                let mut ga = a.lock();
                *ga += *gb;
            })
        };
        t1.join().unwrap();
        t2.join().unwrap();
    }
}

/// The race-detector canary: a worker bumps a shared counter while
/// the spawner takes a concurrent "progress glimpse" of it before
/// joining. With `publish = false` both sides are `Relaxed` and
/// nothing orders them — the happens-before race detector must flag
/// the pair (deliberately unsynchronized, styled after the kept PR-1
/// lost-wakeup bug). With `publish = true` the increment is `AcqRel`
/// and the glimpse `Acquire`: the same interleavings are explored but
/// the pair is synchronization, not a race.
///
/// Either way the *exact* read happens after `join`, through a
/// `Relaxed` load — ordered by the join edge, which is precisely the
/// "monotone stat, read after join" pattern the workspace's R2
/// comments justify; the detector must accept it.
pub fn relaxed_counter_handoff(publish: bool) -> impl Fn() + Send + Sync + 'static {
    move || {
        let count = Arc::new(AtomicU64::new(0));
        let worker = {
            let count = Arc::clone(&count);
            thread::spawn(move || {
                if publish {
                    count.fetch_add(1, Ordering::AcqRel);
                } else {
                    count.fetch_add(1, Ordering::Relaxed);
                }
            })
        };
        let glimpse = if publish {
            count.load(Ordering::Acquire)
        } else {
            count.load(Ordering::Relaxed)
        };
        assert!(glimpse <= 1);
        worker.join().unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }
}

/// N threads each incrementing their *own* atomic: every cross-thread
/// op pair is independent, so sleep-set reduction collapses the n!
/// interleavings to a handful of representatives. The showcase for
/// the schedule-reduction table (and the equivalence property test).
pub fn independent_counters(threads: usize) -> impl Fn() + Send + Sync + 'static {
    move || {
        let counters: Vec<Arc<AtomicU64>> =
            (0..threads).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let handles: Vec<_> = counters
            .iter()
            .map(|c| {
                let c = Arc::clone(c);
                thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for c in &counters {
            assert_eq!(c.load(Ordering::SeqCst), 2);
        }
    }
}

/// A receiver in `recv_timeout` position: waits with a timeout while
/// nothing is ever sent. Every schedule must terminate via the timeout
/// firing — exercises timed-wait scheduling.
pub fn recv_timeout_fires() -> impl Fn() + Send + Sync + 'static {
    || {
        let inner = Arc::new(MiniInner {
            queue: Mutex::new(VecDeque::new()),
            senders: AtomicUsize::new(1),
            not_empty: Condvar::new(),
        });
        let q = inner.queue.lock();
        let (q, res) = inner
            .not_empty
            .wait_timeout(q, std::time::Duration::from_millis(5));
        assert!(
            res.timed_out(),
            "nothing notifies, so the wait must time out"
        );
        assert!(q.is_empty());
    }
}
