//! qtag-check: the Q-Tag workspace's self-auditing layer.
//!
//! Two parts:
//!
//! 1. A **deterministic schedule-exploring model checker** (a
//!    mini-loom): [`Builder`] runs a closure whose threads use the
//!    shimmed primitives in [`sync`], explores thread interleavings by
//!    seeded bounded DFS, and reports failures (assertion panics,
//!    deadlocks, livelocks) with a replayable [`TraceToken`].
//!    Production crates route their `std`/`parking_lot` usage through
//!    a `sync` facade that swaps to these shims under
//!    `--cfg qtag_check`, so the *real* channel/inlet/store/collector
//!    code runs under the scheduler.
//!
//! 2. A **workspace invariant linter** ([`lint`], exposed as the
//!    `qtag-lint` binary): a lexical pass enforcing the repo's
//!    concurrency and accounting rules (counter-conservation test
//!    coverage, justified `Ordering::Relaxed` RMWs, no stray
//!    wall-clock reads, no facade bypasses) against a checked-in
//!    baseline.
//!
//! See DESIGN.md ("Mechanical concurrency auditing") for the memory
//! model, the facade contract, and how to write a model.

pub mod lint;
pub mod models;
mod race;
mod rt;
pub mod sync;
pub mod trace;

pub use rt::{model, Builder, FailureKind, ModelFailure, Report};
pub use trace::TraceToken;
