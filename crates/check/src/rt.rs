//! The execution runtime: a token-passing deterministic scheduler with
//! seeded, bounded-DFS exploration of thread interleavings, sleep-set
//! partial-order reduction, and a vector-clock data-race detector.
//!
//! One model *execution* runs the user's closure with every visible
//! operation (atomic access, mutex acquire/release, condvar
//! wait/notify, spawn/join) serialized: exactly one model thread holds
//! the run token at any instant, and at the start of each visible
//! operation the token holder announces the operation (an
//! [`Op`](crate::race) descriptor) and asks the scheduler which thread
//! performs its next operation. When more than one thread could go,
//! that is a *decision point*; the sequence of decisions is the
//! schedule.
//!
//! Exploration is depth-first over the decision tree: run the schedule
//! that picks candidate 0 everywhere, then backtrack the deepest
//! decision with an untried alternative and re-run, until the tree is
//! exhausted or [`Builder::max_schedules`] is reached. A seed permutes
//! candidate order per decision (diversity under a budget) without
//! affecting completeness. An optional preemption bound (CHESS-style)
//! caps the number of *involuntary* context switches per execution,
//! which concentrates the budget on the schedules most likely to
//! expose races in larger models.
//!
//! **Partial-order reduction** (on by default, `Builder::dpor`):
//! because every candidate thread has already announced its next
//! operation, the scheduler maintains classic sleep sets — after a
//! branch at a decision node is fully explored, the branch's thread
//! *sleeps* in the node's later branches until some dependent
//! operation (see [`crate::race::dependent`]) executes. An execution
//! whose every candidate is asleep is a redundant interleaving of an
//! already-explored Mazurkiewicz trace and is abandoned ("pruned").
//! Pruned executions do **not** count against `max_schedules` — only
//! completed schedules burn exploration budget. Sleep sets preserve
//! all deadlocks and local assertion failures: at least one
//! representative per trace class is still explored.
//!
//! **Race detection** (on by default, `Builder::race_detector`):
//! every atomic access carries its `Ordering` and caller location;
//! happens-before is built only from Acquire/Release/SeqCst edges plus
//! mutex unlock→lock, condvar notify→wake, and spawn/join. A pair of
//! conflicting accesses unordered by that relation with at least one
//! `Relaxed` side fails the schedule with [`FailureKind::Race`],
//! naming both access sites — unless allowlisted via
//! [`Builder::allow_race`] (counted in [`Report::races`] instead).
//!
//! Failures — model panics (assertion failures), deadlocks (no thread
//! runnable, not all finished), data races, step-budget exhaustion
//! (livelock), and nondeterminism (the model diverged under an
//! identical schedule prefix) — abort the execution and are reported
//! with a replayable [`TraceToken`].
//!
//! Model threads are real OS threads, but all blocking goes through
//! the scheduler's own lock, so a failed execution can always wake and
//! unwind every thread it spawned.

use crate::race::{self, AccessKind, AtomicObj, Op, VClock};
use crate::trace::TraceToken;
use std::panic::{self, AssertUnwindSafe, Location};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Thread id within one execution; the model closure is thread 0.
pub(crate) type Tid = usize;

/// Panic payload used to unwind model threads when an execution
/// aborts. Never reported as a model failure.
pub(crate) struct AbortModel;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_fold(mut h: u64, bytes: impl IntoIterator<Item = u8>) -> u64 {
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Why a condvar waiter woke up; consumed by the `wait*` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Wake {
    Notify,
    Timeout,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Can perform its next operation when granted the token.
    Runnable,
    /// Waiting to acquire model mutex `mid` (first acquire or
    /// post-wait reacquire); woken to `Runnable` by unlock.
    BlockedMutex(usize),
    /// Waiting on condvar `cid`; will reacquire `mid` after waking.
    /// With `timeout_us`, the scheduler may *choose* this thread,
    /// which models the timeout firing.
    BlockedCondvar {
        cid: usize,
        mid: usize,
        timeout_us: Option<u64>,
    },
    /// Waiting for thread `tid` to finish; woken by its completion.
    BlockedJoin(Tid),
    Finished,
}

#[derive(Debug)]
struct ThreadInfo {
    status: Status,
    /// Set when a condvar waiter is woken, read back by its `wait*`.
    wake: Option<Wake>,
    /// The operation this thread announced at its last `yield_point`
    /// and has not yet moved past — the candidate's next transition,
    /// used by the sleep-set dependence checks. `None` only for a
    /// freshly spawned thread that has not reached its first visible
    /// operation (treated as dependent with everything).
    pending: Option<Op>,
    /// Sleep-set membership: an asleep thread's next operation
    /// commutes with an already-explored sibling branch, so running it
    /// here would re-explore an equivalent interleaving.
    asleep: bool,
    /// Vector clock for happens-before construction.
    clock: VClock,
}

impl ThreadInfo {
    fn new() -> Self {
        ThreadInfo {
            status: Status::Runnable,
            wake: None,
            pending: None,
            asleep: false,
            clock: VClock::new(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct Decision {
    n_candidates: usize,
    chosen: usize,
}

#[derive(Debug, Default)]
struct MutexState {
    owner: Option<Tid>,
    /// Joined clocks of all releases (unlock→lock edges).
    clock: VClock,
}

#[derive(Debug, Default)]
struct CondvarState {
    /// The mutex this condvar is currently associated with (std
    /// semantics: one mutex at a time while there are waiters).
    mid: Option<usize>,
    /// Joined clocks of all notifies (notify→wake edges).
    clock: VClock,
}

/// What went wrong in a failing schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure, explicit panic).
    Panic,
    /// No thread was runnable but not all had finished.
    Deadlock,
    /// Two conflicting atomic accesses, at least one `Relaxed`,
    /// unordered by happens-before (see `crates/check/src/race.rs`).
    Race,
    /// The per-execution step budget was exhausted (livelock or an
    /// unbounded spin under the model).
    StepBudget,
    /// The model diverged while replaying a schedule prefix — model
    /// code must be deterministic apart from scheduling.
    Nondeterminism,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic => write!(f, "panic"),
            FailureKind::Deadlock => write!(f, "deadlock"),
            FailureKind::Race => write!(f, "data race"),
            FailureKind::StepBudget => write!(f, "step budget exhausted"),
            FailureKind::Nondeterminism => write!(f, "nondeterministic model"),
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Failure {
    pub kind: FailureKind,
    pub message: String,
}

pub(crate) struct ExecState {
    threads: Vec<ThreadInfo>,
    n_live: usize,
    active: Option<Tid>,
    /// The thread that performed the most recent operation; switching
    /// away from it while it is still runnable costs a preemption.
    last_active: Tid,
    mutexes: Vec<MutexState>,
    condvars: Vec<CondvarState>,
    atomics: Vec<AtomicObj>,
    /// Forced choices (candidate indices) for the DFS replay prefix.
    prefix: Vec<usize>,
    decisions: Vec<Decision>,
    preemptions: usize,
    steps: u64,
    clock_us: u64,
    failure: Option<Failure>,
    aborting: bool,
    /// Execution abandoned by sleep-set reduction (redundant
    /// interleaving, not a failure).
    pruned: bool,
    done: bool,
    seed: u64,
    max_steps: u64,
    preemption_bound: Option<usize>,
    dpor: bool,
    race_detector: bool,
    benign_patterns: Arc<Vec<String>>,
    /// Acquire-side happens-before joins that learned something new.
    hb_edges: u64,
    /// Racy pairs observed but tolerated (allowlisted, or detector
    /// disabled).
    races: u64,
}

/// The next transition a candidate thread would perform if chosen:
/// its announced pending op, except that choosing a timed condvar
/// waiter fires its timeout (a clock-advancing synthetic op).
fn sched_op(st: &ExecState, tid: Tid) -> Option<Op> {
    match st.threads[tid].status {
        Status::BlockedCondvar {
            timeout_us: Some(_),
            ..
        } => Some(Op::CondvarTimeout),
        _ => st.threads[tid].pending,
    }
}

/// One model execution. Shared by every thread of the execution via
/// `Arc`; the thread-local [`crate::sync::ctx`] carries (execution,
/// tid) into the shim types.
pub(crate) struct Execution {
    st: Mutex<ExecState>,
    /// Model threads park here waiting for the token (or abort).
    cv: Condvar,
    /// The explorer parks here waiting for the execution to finish.
    done_cv: Condvar,
    /// Distinguishes executions so shim primitives created outside the
    /// closure re-register instead of reusing a stale id.
    pub(crate) serial: u64,
}

static EXEC_SERIAL: AtomicU64 = AtomicU64::new(1);

impl Execution {
    fn new(b: &Builder, prefix: Vec<usize>, benign_patterns: Arc<Vec<String>>) -> Self {
        Execution {
            st: Mutex::new(ExecState {
                threads: Vec::new(),
                n_live: 0,
                active: None,
                last_active: 0,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                atomics: Vec::new(),
                prefix,
                decisions: Vec::new(),
                preemptions: 0,
                steps: 0,
                clock_us: 0,
                failure: None,
                aborting: false,
                pruned: false,
                done: false,
                seed: b.seed,
                max_steps: b.max_steps,
                preemption_bound: b.preemption_bound,
                dpor: b.dpor,
                race_detector: b.race_detector,
                benign_patterns,
                hb_edges: 0,
                races: 0,
            }),
            cv: Condvar::new(),
            done_cv: Condvar::new(),
            serial: EXEC_SERIAL.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn lock(&self) -> MutexGuard<'_, ExecState> {
        // The scheduler lock is never held across a panic, so
        // poisoning can only come from a bug in the runtime itself.
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a new model thread; returns its tid.
    pub(crate) fn register_thread(&self) -> Tid {
        let mut st = self.lock();
        let tid = st.threads.len();
        st.threads.push(ThreadInfo::new());
        st.n_live += 1;
        tid
    }

    pub(crate) fn register_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutexes.push(MutexState::default());
        st.mutexes.len() - 1
    }

    pub(crate) fn register_condvar(&self) -> usize {
        let mut st = self.lock();
        st.condvars.push(CondvarState::default());
        st.condvars.len() - 1
    }

    pub(crate) fn register_atomic(&self) -> usize {
        let mut st = self.lock();
        st.atomics.push(AtomicObj::default());
        st.atomics.len() - 1
    }

    pub(crate) fn clock_us(&self) -> u64 {
        self.lock().clock_us
    }

    /// Declares a failure, aborts the execution, and unwinds the
    /// calling thread. Only ever called by the token holder, so no
    /// other thread is mid-operation.
    fn fail(&self, mut st: MutexGuard<'_, ExecState>, kind: FailureKind, message: String) -> ! {
        if st.failure.is_none() {
            st.failure = Some(Failure { kind, message });
        }
        st.aborting = true;
        self.cv.notify_all();
        drop(st);
        panic::panic_any(AbortModel);
    }

    /// Picks the next thread to run. Called with the state lock held
    /// by the thread that just completed (or is about to block on) an
    /// operation. Handles deadlock detection, sleep-set pruning, and
    /// the all-finished case.
    fn pick_next(&self, st: &mut ExecState) {
        if st.aborting {
            self.cv.notify_all();
            return;
        }
        if st.n_live == 0 {
            st.active = None;
            st.done = true;
            self.done_cv.notify_all();
            return;
        }
        let mut candidates: Vec<Tid> = Vec::new();
        for (tid, t) in st.threads.iter().enumerate() {
            match t.status {
                Status::Runnable => candidates.push(tid),
                // A timed wait is schedulable: choosing it fires the
                // timeout.
                Status::BlockedCondvar {
                    timeout_us: Some(_),
                    ..
                } => candidates.push(tid),
                _ => {}
            }
        }
        if candidates.is_empty() {
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(tid, t)| format!("thread {tid} {:?}", t.status))
                .collect();
            let msg = format!(
                "deadlock: {} of {} threads blocked forever [{}]",
                blocked.len(),
                st.threads.len(),
                blocked.join(", ")
            );
            if st.failure.is_none() {
                st.failure = Some(Failure {
                    kind: FailureKind::Deadlock,
                    message: msg,
                });
            }
            st.aborting = true;
            self.cv.notify_all();
            return;
        }
        // Sleep-set reduction: a sleeping candidate's next operation
        // commutes with an already-explored sibling branch. If every
        // candidate is asleep, this whole execution is a redundant
        // member of an explored trace class — abandon it (counted as
        // pruned, never as a schedule or a failure).
        if st.dpor {
            let eligible: Vec<Tid> = candidates
                .iter()
                .copied()
                .filter(|&t| !st.threads[t].asleep)
                .collect();
            if eligible.is_empty() {
                st.pruned = true;
                st.aborting = true;
                self.cv.notify_all();
                return;
            }
            candidates = eligible;
        }
        // Preemption bounding: once the budget is spent, stick with
        // the current thread whenever it is still a candidate.
        if let Some(bound) = st.preemption_bound {
            if st.preemptions >= bound && candidates.contains(&st.last_active) {
                candidates = vec![st.last_active];
            }
        }
        // Seeded rotation: deterministic per (seed, decision index),
        // so the DFS tree is stable for a given seed.
        let di = st.decisions.len();
        if candidates.len() > 1 {
            let rot = (splitmix64(st.seed ^ (di as u64).wrapping_mul(0x9E37)) as usize)
                % candidates.len();
            candidates.rotate_left(rot);
        }
        let chosen = if candidates.len() > 1 {
            let c = if di < st.prefix.len() {
                st.prefix[di]
            } else {
                0
            };
            if c >= candidates.len() {
                let msg = format!(
                    "schedule prefix expected ≥{} candidates at decision {di}, found {} — \
                     model code must be deterministic given a schedule",
                    c + 1,
                    candidates.len()
                );
                if st.failure.is_none() {
                    st.failure = Some(Failure {
                        kind: FailureKind::Nondeterminism,
                        message: msg,
                    });
                }
                st.aborting = true;
                self.cv.notify_all();
                return;
            }
            st.decisions.push(Decision {
                n_candidates: candidates.len(),
                chosen: c,
            });
            c
        } else {
            0
        };
        let next = candidates[chosen];
        if st.dpor {
            // Sleep-set bookkeeping (Godefroid). Forcing choice `c`
            // during DFS replay means branches 0..c at this node are
            // fully explored: their threads sleep in this branch.
            // Executing the chosen op then wakes every sleeper whose
            // next operation depends on it (a sleeper with an unknown
            // op — fresh spawn — is treated as dependent).
            for &sib in &candidates[..chosen] {
                st.threads[sib].asleep = true;
            }
            let chosen_op = sched_op(st, next);
            for q in 0..st.threads.len() {
                if !st.threads[q].asleep {
                    continue;
                }
                let woke = match (chosen_op, sched_op(st, q)) {
                    (Some(a), Some(b)) => race::dependent(&a, &b),
                    _ => true,
                };
                if woke {
                    st.threads[q].asleep = false;
                }
            }
        }
        if next != st.last_active
            && st
                .threads
                .get(st.last_active)
                .is_some_and(|t| t.status == Status::Runnable)
        {
            st.preemptions += 1;
        }
        // Choosing a timed waiter fires its timeout: it becomes
        // runnable on the reacquire path with the clock advanced.
        if let Status::BlockedCondvar {
            timeout_us: Some(us),
            cid,
            ..
        } = st.threads[next].status
        {
            st.clock_us = st.clock_us.saturating_add(us);
            st.threads[next].status = Status::Runnable;
            st.threads[next].wake = Some(Wake::Timeout);
            Self::clear_condvar_if_empty(st, cid);
        }
        st.active = Some(next);
        self.cv.notify_all();
    }

    /// Parks the calling thread until it holds the token (or the
    /// execution aborts, in which case it unwinds).
    fn wait_for_grant<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        me: Tid,
    ) -> MutexGuard<'a, ExecState> {
        loop {
            if st.aborting {
                drop(st);
                panic::panic_any(AbortModel);
            }
            if st.active == Some(me) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The start of every visible operation: announces the operation
    /// (for sleep-set dependence), counts a step, lets the scheduler
    /// decide who performs their next operation, and returns with the
    /// token held (state lock still held — callers that mutate model
    /// state do so under this guard).
    pub(crate) fn yield_point(&self, me: Tid, op: Op) -> MutexGuard<'_, ExecState> {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            panic::panic_any(AbortModel);
        }
        debug_assert_eq!(st.active, Some(me), "yield from a thread without the token");
        st.threads[me].pending = Some(op);
        st.steps += 1;
        if st.steps > st.max_steps {
            let steps = st.steps;
            self.fail(
                st,
                FailureKind::StepBudget,
                format!("exceeded {steps} steps — livelock or an unbounded spin in the model"),
            );
        }
        st.last_active = me;
        self.pick_next(&mut st);
        self.wait_for_grant(st, me)
    }

    // ---- operation semantics (each entered with the token held) ----

    /// An atomic access: the decision point is the whole op; the
    /// actual memory access runs after the grant, race-free (at the
    /// implementation level) because only the token holder executes.
    /// At the *model* level this is where happens-before is built and
    /// data races are detected: the access is stamped with the
    /// thread's bumped epoch, acquire orderings join the object's
    /// release frontier, and the access is checked against every
    /// prior conflicting access (see `race.rs`).
    pub(crate) fn op_atomic(
        &self,
        me: Tid,
        obj: usize,
        kind: AccessKind,
        order: Ordering,
        site: &'static Location<'static>,
    ) {
        // No-op while unwinding: destructors running during a panic
        // (the thread's own assertion failure or an AbortModel
        // teardown) must never re-enter the scheduler — a second
        // panic from a Drop aborts the process.
        if std::thread::panicking() {
            return;
        }
        let mut st = self.yield_point(me, Op::Atomic { obj, kind });
        let stm = &mut *st;
        let epoch = stm.threads[me].clock.bump(me);
        if race::acquires(kind, order) {
            // Synchronizes-with: join every prior release write's
            // clock (the model serializes accesses, so this is the
            // release-sequence over-approximation; conservative —
            // extra edges only suppress race reports).
            let joined = {
                let (threads, atomics) = (&mut stm.threads, &stm.atomics);
                threads[me].clock.join(&atomics[obj].sync)
            };
            if joined {
                stm.hb_edges += 1;
            }
        }
        let access = race::Access {
            tid: me,
            epoch,
            kind,
            order,
            site,
        };
        let hit = {
            let (threads, atomics) = (&stm.threads, &mut stm.atomics);
            atomics[obj].check_and_record(access, &threads[me].clock)
        };
        if race::releases(kind, order) {
            let (threads, atomics) = (&stm.threads, &mut stm.atomics);
            atomics[obj].sync.join(&threads[me].clock);
        }
        if let Some(prev) = hit {
            if !st.race_detector || race::race_allowed(&st.benign_patterns, &prev, &access) {
                st.races += 1;
            } else {
                let msg = race::race_message(obj, &prev, &access);
                self.fail(st, FailureKind::Race, msg);
            }
        }
    }

    /// `thread::yield_now`: a pure scheduling decision point.
    pub(crate) fn op_yield(&self, me: Tid) {
        if std::thread::panicking() {
            return;
        }
        let st = self.yield_point(me, Op::Yield);
        drop(st);
    }

    /// Acquires model mutex `mid`, blocking through the scheduler.
    /// Returns `false` (not acquired, caller gets untracked teardown
    /// access) when called from an unwinding destructor.
    pub(crate) fn mutex_lock(&self, me: Tid, mid: usize) -> bool {
        if std::thread::panicking() {
            return false;
        }
        let mut st = self.yield_point(me, Op::MutexLock { mid });
        loop {
            if st.mutexes[mid].owner.is_none() {
                st.mutexes[mid].owner = Some(me);
                // Acquire edge: everything before every prior unlock
                // happens-before this critical section.
                let stm = &mut *st;
                let joined = {
                    let (threads, mutexes) = (&mut stm.threads, &stm.mutexes);
                    threads[me].clock.join(&mutexes[mid].clock)
                };
                if joined {
                    stm.hb_edges += 1;
                }
                drop(st);
                return true;
            }
            if st.mutexes[mid].owner == Some(me) {
                self.fail(
                    st,
                    FailureKind::Panic,
                    format!("thread {me} re-locked model mutex {mid} (not reentrant)"),
                );
            }
            st.threads[me].status = Status::BlockedMutex(mid);
            st.last_active = me;
            self.pick_next(&mut st);
            st = self.wait_for_grant(st, me);
            // Woken runnable by an unlock (or spuriously granted after
            // contention): re-check ownership.
        }
    }

    /// Non-blocking acquire; true on success.
    pub(crate) fn mutex_try_lock(&self, me: Tid, mid: usize) -> bool {
        if std::thread::panicking() {
            return false;
        }
        let mut st = self.yield_point(me, Op::MutexLock { mid });
        if st.mutexes[mid].owner.is_none() {
            st.mutexes[mid].owner = Some(me);
            let stm = &mut *st;
            let joined = {
                let (threads, mutexes) = (&mut stm.threads, &stm.mutexes);
                threads[me].clock.join(&mutexes[mid].clock)
            };
            if joined {
                stm.hb_edges += 1;
            }
            true
        } else {
            false
        }
    }

    /// Release edge: fold the releasing thread's clock into the
    /// mutex's, so the next acquirer is ordered after this critical
    /// section.
    fn mutex_release_edge(st: &mut ExecState, me: Tid, mid: usize) {
        let (threads, mutexes) = (&st.threads, &mut st.mutexes);
        mutexes[mid].clock.join(&threads[me].clock);
    }

    /// Releases model mutex `mid` and wakes its waiters.
    pub(crate) fn mutex_unlock(&self, me: Tid, mid: usize) {
        if std::thread::panicking() {
            // Unwinding guard drop: clear ownership so other threads
            // can make progress once the abort fans out, but do not
            // reschedule (this thread keeps the token until its
            // catch_unwind boundary reports the panic).
            let mut st = self.lock();
            if st.mutexes[mid].owner == Some(me) {
                st.mutexes[mid].owner = None;
                for t in st.threads.iter_mut() {
                    if t.status == Status::BlockedMutex(mid) {
                        t.status = Status::Runnable;
                    }
                }
            }
            return;
        }
        let mut st = self.yield_point(me, Op::MutexUnlock { mid });
        debug_assert_eq!(st.mutexes[mid].owner, Some(me), "unlock by non-owner");
        st.mutexes[mid].owner = None;
        Self::mutex_release_edge(&mut st, me, mid);
        for t in st.threads.iter_mut() {
            if t.status == Status::BlockedMutex(mid) {
                t.status = Status::Runnable;
            }
        }
        drop(st);
    }

    fn clear_condvar_if_empty(st: &mut ExecState, cid: usize) {
        let any_waiter = st
            .threads
            .iter()
            .any(|t| matches!(t.status, Status::BlockedCondvar { cid: c, .. } if c == cid));
        if !any_waiter {
            st.condvars[cid].mid = None;
        }
    }

    /// Condvar wait: atomically (one scheduler step) releases `mid`,
    /// enqueues on `cid`, and blocks. Returns how the thread woke;
    /// the caller must then reacquire the mutex via
    /// [`Execution::mutex_lock_after_wait`].
    ///
    /// A notification delivered *before* this step (while the waiter
    /// still held the mutex on its check-then-wait path) finds no
    /// waiter and is lost — exactly the semantics that make
    /// notify-outside-the-lock bugs (the PR-1 lost wakeup) explorable.
    pub(crate) fn condvar_wait(
        &self,
        me: Tid,
        cid: usize,
        mid: usize,
        timeout: Option<Duration>,
    ) -> Wake {
        if std::thread::panicking() {
            return Wake::Notify;
        }
        let mut st = self.yield_point(me, Op::CondvarWait { cid, mid });
        // Association check (std contract: one mutex at a time).
        match st.condvars[cid].mid {
            Some(m) if m != mid => {
                self.fail(
                    st,
                    FailureKind::Panic,
                    format!("condvar {cid} waited on with two different mutexes ({m} and {mid})"),
                );
            }
            _ => st.condvars[cid].mid = Some(mid),
        }
        // Atomic release + enqueue.
        debug_assert_eq!(st.mutexes[mid].owner, Some(me), "wait without the lock");
        st.mutexes[mid].owner = None;
        Self::mutex_release_edge(&mut st, me, mid);
        for t in st.threads.iter_mut() {
            if t.status == Status::BlockedMutex(mid) {
                t.status = Status::Runnable;
            }
        }
        let timeout_us = timeout.map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1));
        st.threads[me].status = Status::BlockedCondvar {
            cid,
            mid,
            timeout_us,
        };
        st.threads[me].wake = None;
        st.last_active = me;
        self.pick_next(&mut st);
        st = self.wait_for_grant(st, me);
        let wake = st.threads[me].wake.take().unwrap_or(Wake::Notify);
        if wake == Wake::Notify {
            // Notify→wake edge: the waiter is ordered after every
            // notify folded into the condvar's clock so far.
            let stm = &mut *st;
            let joined = {
                let (threads, condvars) = (&mut stm.threads, &stm.condvars);
                threads[me].clock.join(&condvars[cid].clock)
            };
            if joined {
                stm.hb_edges += 1;
            }
        }
        drop(st);
        wake
    }

    /// The mutex reacquire after a condvar wakeup (no fresh decision
    /// separate from `mutex_lock`; contention is modeled identically).
    pub(crate) fn mutex_lock_after_wait(&self, me: Tid, mid: usize) -> bool {
        self.mutex_lock(me, mid)
    }

    /// Wakes the lowest-tid waiter (deterministic stand-in for the
    /// OS's arbitrary pick). A woken waiter becomes runnable on the
    /// reacquire path.
    pub(crate) fn condvar_notify(&self, me: Tid, cid: usize, all: bool) {
        if std::thread::panicking() {
            return;
        }
        let mut st = self.yield_point(me, Op::CondvarNotify { cid });
        {
            // Release edge toward whoever this notify wakes (now or
            // in a later wait — an over-approximation, conservative
            // for race detection).
            let stm = &mut *st;
            let (threads, condvars) = (&stm.threads, &mut stm.condvars);
            condvars[cid].clock.join(&threads[me].clock);
        }
        let mut woke = false;
        for t in st.threads.iter_mut() {
            if let Status::BlockedCondvar { cid: c, .. } = t.status {
                if c == cid {
                    t.status = Status::Runnable;
                    t.wake = Some(Wake::Notify);
                    woke = true;
                    if !all {
                        break;
                    }
                }
            }
        }
        if woke {
            Self::clear_condvar_if_empty(&mut st, cid);
        }
        drop(st);
    }

    /// Registers a newly spawned thread (the spawn itself is a visible
    /// operation on the parent). The child starts with the parent's
    /// clock: everything before the spawn happens-before the child.
    pub(crate) fn op_spawn(&self, me: Tid) -> Tid {
        let mut st = self.yield_point(me, Op::Spawn);
        let tid = st.threads.len();
        let mut info = ThreadInfo::new();
        info.clock = st.threads[me].clock.clone();
        st.threads.push(info);
        st.n_live += 1;
        st.hb_edges += 1;
        drop(st);
        tid
    }

    /// Blocks until `target` finishes. Returns `false` (join skipped)
    /// when called from an unwinding destructor.
    pub(crate) fn join(&self, me: Tid, target: Tid) -> bool {
        if std::thread::panicking() {
            return false;
        }
        let mut st = self.yield_point(me, Op::Join { target });
        while st.threads[target].status != Status::Finished {
            st.threads[me].status = Status::BlockedJoin(target);
            st.last_active = me;
            self.pick_next(&mut st);
            st = self.wait_for_grant(st, me);
        }
        // Join edge: everything the target ever did happens-before
        // the joiner's continuation.
        let stm = &mut *st;
        let target_clock = stm.threads[target].clock.clone();
        if stm.threads[me].clock.join(&target_clock) {
            stm.hb_edges += 1;
        }
        drop(st);
        true
    }

    pub(crate) fn is_finished(&self, target: Tid) -> bool {
        self.lock().threads[target].status == Status::Finished
    }

    /// Model `sleep`: advances the logical clock and yields.
    pub(crate) fn op_sleep(&self, me: Tid, dur: Duration) {
        if std::thread::panicking() {
            return;
        }
        let st = self.yield_point(me, Op::Sleep);
        drop(st);
        let mut st = self.lock();
        st.clock_us = st
            .clock_us
            .saturating_add(u64::try_from(dur.as_micros()).unwrap_or(u64::MAX));
        drop(st);
    }

    /// Normal thread completion: marks finished, wakes joiners, passes
    /// the token on. Finishing is an (unannounced) operation for the
    /// sleep sets too: it wakes any sleeper joining on this thread.
    pub(crate) fn finish_thread(&self, me: Tid) {
        let mut st = self.lock();
        st.threads[me].status = Status::Finished;
        st.n_live -= 1;
        for t in st.threads.iter_mut() {
            if t.status == Status::BlockedJoin(me) {
                t.status = Status::Runnable;
            }
        }
        if st.dpor {
            let fin = Op::Finish { tid: me };
            for q in 0..st.threads.len() {
                if !st.threads[q].asleep {
                    continue;
                }
                let woke = match sched_op(&st, q) {
                    Some(b) => race::dependent(&fin, &b),
                    None => true,
                };
                if woke {
                    st.threads[q].asleep = false;
                }
            }
        }
        st.last_active = me;
        self.pick_next(&mut st);
    }

    /// Thread completion during abort unwinding: only bookkeeping, no
    /// scheduling. The last one out signals the explorer.
    pub(crate) fn finish_thread_aborted(&self, me: Tid) {
        let mut st = self.lock();
        if st.threads[me].status != Status::Finished {
            st.threads[me].status = Status::Finished;
            st.n_live -= 1;
        }
        if st.n_live == 0 {
            st.done = true;
            self.done_cv.notify_all();
        }
    }

    /// Thread completion with a model panic: records the failure and
    /// aborts every other thread.
    pub(crate) fn finish_thread_panicked(&self, me: Tid, message: String) {
        let mut st = self.lock();
        if st.failure.is_none() {
            st.failure = Some(Failure {
                kind: FailureKind::Panic,
                message,
            });
        }
        st.aborting = true;
        st.threads[me].status = Status::Finished;
        st.n_live -= 1;
        if st.n_live == 0 {
            st.done = true;
            self.done_cv.notify_all();
        }
        self.cv.notify_all();
    }
}

/// Extracts a printable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Suppress default panic output for panics inside model threads: the
/// failure is captured and re-reported with its trace token instead.
/// Installed once; delegates to the previous hook outside models.
fn install_panic_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        if std::env::var_os("QTAG_CHECK_VERBOSE").is_some() {
            return;
        }
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if crate::sync::in_model() {
                return;
            }
            prev(info);
        }));
    });
}

/// Outcome of one execution.
struct ExecOutcome {
    decisions: Vec<Decision>,
    steps: u64,
    failure: Option<Failure>,
    pruned: bool,
    hb_edges: u64,
    races: u64,
}

/// Result of exploring a model that never failed.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules actually executed to completion. Executions
    /// abandoned by partial-order reduction are in [`Report::pruned`]
    /// instead and do not burn [`Builder::max_schedules`] budget.
    pub schedules: u64,
    /// Whether the decision tree was exhausted (vs. budget-capped).
    pub complete: bool,
    /// Total visible operations across all executions (including
    /// pruned ones).
    pub steps: u64,
    /// Executions abandoned by sleep-set reduction: every candidate's
    /// next operation commuted with an already-explored branch.
    pub pruned: u64,
    /// Racy access pairs observed but tolerated (allowlisted via
    /// [`Builder::allow_race`], or the detector was disabled).
    pub races: u64,
    /// Acquire-side happens-before joins that learned new ordering
    /// (synchronization edges actually exercised by the model).
    pub hb_edges: u64,
    /// Order-sensitive digest of every explored schedule; two runs of
    /// the same (model, seed) must produce identical digests.
    pub digest: u64,
}

/// A failing schedule, replayable via [`Builder::replay`].
#[derive(Debug, Clone)]
pub struct ModelFailure {
    pub kind: FailureKind,
    pub message: String,
    /// Replay token for the failing schedule.
    pub trace: TraceToken,
    /// 1-based index of the failing schedule in exploration order.
    pub schedule: u64,
}

impl std::fmt::Display for ModelFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model failed ({}) on schedule {}: {}\n  replay trace: {}",
            self.kind, self.schedule, self.message, self.trace
        )
    }
}

/// Exploration configuration. Environment overrides (read once per
/// `Builder::default()` call): `QTAG_CHECK_MAX_SCHEDULES`,
/// `QTAG_CHECK_SEED`, `QTAG_CHECK_MAX_STEPS`, `QTAG_CHECK_DPOR`
/// (`0` disables sleep-set reduction), `QTAG_CHECK_RACES` (`0`
/// disables the race detector).
#[derive(Debug, Clone)]
pub struct Builder {
    /// Cap on *completed* schedules explored; exploration reports
    /// `complete: false` when a schedule beyond the cap completes with
    /// tree still unexhausted (so at most one over-budget schedule
    /// runs, and a tree with exactly `max_schedules` completed
    /// schedules still exhausts). Pruned (sleep-set-redundant)
    /// executions never count.
    pub max_schedules: u64,
    /// Per-execution visible-operation budget (livelock detector).
    pub max_steps: u64,
    /// Seed permuting candidate order at each decision.
    pub seed: u64,
    /// CHESS-style cap on involuntary context switches per execution;
    /// `None` explores the full tree.
    pub preemption_bound: Option<usize>,
    /// Sleep-set partial-order reduction (default on): prune
    /// interleavings that only permute independent operations.
    pub dpor: bool,
    /// Vector-clock happens-before race detector (default on): fail
    /// schedules with conflicting HB-unordered accesses where at
    /// least one side is `Relaxed`.
    pub race_detector: bool,
    /// Access-site substrings (`file` or `file:line`) whose races are
    /// justified-benign: observed pairs are counted in
    /// [`Report::races`] instead of failing. Each entry should have a
    /// comment at the call site saying *why* the race is benign.
    pub benign_races: Vec<String>,
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_schedules: env_u64("QTAG_CHECK_MAX_SCHEDULES").unwrap_or(4_096),
            max_steps: env_u64("QTAG_CHECK_MAX_STEPS").unwrap_or(50_000),
            seed: env_u64("QTAG_CHECK_SEED").unwrap_or(0x51AD_C0DE),
            preemption_bound: None,
            dpor: env_u64("QTAG_CHECK_DPOR").map(|v| v != 0).unwrap_or(true),
            race_detector: env_u64("QTAG_CHECK_RACES").map(|v| v != 0).unwrap_or(true),
            benign_races: Vec::new(),
        }
    }
}

impl Builder {
    /// Bounded exploration with the given preemption bound — the
    /// configuration ported production models use.
    pub fn bounded(preemptions: usize) -> Self {
        Builder {
            preemption_bound: Some(preemptions),
            ..Builder::default()
        }
    }

    /// Declares races touching an access site matching `pattern` (a
    /// substring of the site's `file` or `file:line`) benign: they are
    /// counted in [`Report::races`] instead of failing the schedule.
    /// Use for monotone stats counters whose exact reads are ordered
    /// by join/shutdown; say why at the call site.
    pub fn allow_race(mut self, pattern: &str) -> Self {
        self.benign_races.push(pattern.to_string());
        self
    }

    /// Explores the model; panics (with the replay trace) on the first
    /// failing schedule. The loom-alike entry point for tests.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.try_check(f) {
            Ok(report) => report,
            Err(failure) => panic!("{failure}"),
        }
    }

    /// Explores the model, returning the first failing schedule
    /// instead of panicking (for must-fail regression tests).
    pub fn try_check<F>(&self, f: F) -> Result<Report, ModelFailure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let benign = Arc::new(self.benign_races.clone());
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0u64;
        let mut pruned = 0u64;
        let mut steps = 0u64;
        let mut races = 0u64;
        let mut hb_edges = 0u64;
        let mut digest = FNV_OFFSET;
        loop {
            let outcome = run_one(Arc::clone(&f), self, prefix.clone(), Arc::clone(&benign));
            steps += outcome.steps;
            races += outcome.races;
            hb_edges += outcome.hb_edges;
            for d in &outcome.decisions {
                digest = fnv_fold(digest, (d.chosen as u32).to_le_bytes());
            }
            if outcome.pruned {
                // A sleep-set-redundant execution: backtrack as usual
                // but burn no schedule budget (the whole point of the
                // reduction is reclaiming it).
                pruned += 1;
                digest = fnv_fold(digest, [0xFE]);
            } else {
                schedules += 1;
                digest = fnv_fold(digest, [0xFF]);
            }
            if let Some(failure) = outcome.failure {
                return Err(ModelFailure {
                    kind: failure.kind,
                    message: failure.message,
                    trace: TraceToken {
                        seed: self.seed,
                        choices: outcome.decisions.iter().map(|d| d.chosen as u32).collect(),
                    },
                    schedule: schedules,
                });
            }
            match next_prefix(&outcome.decisions) {
                // Budget check: only *completed* schedules burn budget,
                // and the stop fires one schedule past the cap (a tree
                // whose completed-schedule count equals the cap still
                // reports `complete: true` after draining any trailing
                // pruned subtrees). At most one over-budget schedule
                // runs; it is counted and its failure, if any, is
                // reported above.
                Some(_) if !outcome.pruned && schedules > self.max_schedules => {
                    return Ok(Report {
                        schedules,
                        complete: false,
                        steps,
                        pruned,
                        races,
                        hb_edges,
                        digest,
                    })
                }
                Some(p) => prefix = p,
                None => {
                    return Ok(Report {
                        schedules,
                        complete: true,
                        steps,
                        pruned,
                        races,
                        hb_edges,
                        digest,
                    })
                }
            }
        }
    }

    /// Runs exactly the schedule a failure's [`TraceToken`] recorded.
    pub fn replay<F>(&self, trace: &TraceToken, f: F) -> Result<Report, ModelFailure>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_panic_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let replayer = Builder {
            seed: trace.seed,
            ..self.clone()
        };
        let benign = Arc::new(replayer.benign_races.clone());
        let prefix: Vec<usize> = trace.choices.iter().map(|&c| c as usize).collect();
        let outcome = run_one(f, &replayer, prefix, benign);
        let mut digest = FNV_OFFSET;
        for d in &outcome.decisions {
            digest = fnv_fold(digest, (d.chosen as u32).to_le_bytes());
        }
        digest = fnv_fold(digest, [if outcome.pruned { 0xFE } else { 0xFF }]);
        match outcome.failure {
            Some(failure) => Err(ModelFailure {
                kind: failure.kind,
                message: failure.message,
                trace: TraceToken {
                    seed: trace.seed,
                    choices: outcome.decisions.iter().map(|d| d.chosen as u32).collect(),
                },
                schedule: 1,
            }),
            None => Ok(Report {
                schedules: u64::from(!outcome.pruned),
                complete: false,
                steps: outcome.steps,
                pruned: u64::from(outcome.pruned),
                races: outcome.races,
                hb_edges: outcome.hb_edges,
                digest,
            }),
        }
    }
}

/// Explores `f` under the default budget, panicking on failure.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}

/// DFS backtracking: deepest decision with an untried alternative.
fn next_prefix(decisions: &[Decision]) -> Option<Vec<usize>> {
    for cut in (0..decisions.len()).rev() {
        let d = decisions[cut];
        if d.chosen + 1 < d.n_candidates {
            let mut p: Vec<usize> = decisions[..cut].iter().map(|d| d.chosen).collect();
            p.push(d.chosen + 1);
            return Some(p);
        }
    }
    None
}

/// Runs one execution of the model under a forced schedule prefix.
fn run_one(
    f: Arc<dyn Fn() + Send + Sync>,
    b: &Builder,
    prefix: Vec<usize>,
    benign: Arc<Vec<String>>,
) -> ExecOutcome {
    let exec = Arc::new(Execution::new(b, prefix, benign));
    let tid = exec.register_thread();
    debug_assert_eq!(tid, 0);
    {
        let mut st = exec.lock();
        st.active = Some(0);
    }
    let texec = Arc::clone(&exec);
    let handle = std::thread::Builder::new()
        .name("qtag-check-0".into())
        .spawn(move || {
            crate::sync::enter_model(Arc::clone(&texec), 0);
            // Take the token before running the closure, mirroring
            // spawned threads.
            {
                let st = texec.lock();
                let st = texec.wait_for_grant(st, 0);
                drop(st);
            }
            let result = panic::catch_unwind(AssertUnwindSafe(|| f()));
            match result {
                Ok(()) => texec.finish_thread(0),
                Err(payload) => {
                    if payload.downcast_ref::<AbortModel>().is_some() {
                        texec.finish_thread_aborted(0);
                    } else {
                        texec.finish_thread_panicked(0, panic_message(payload.as_ref()));
                    }
                }
            }
            crate::sync::exit_model();
        })
        .expect("spawn model main thread");
    // Wait for the execution to finish (all threads done or aborted).
    {
        let mut st = exec.lock();
        while !st.done {
            st = exec.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
    let _ = handle.join();
    let st = exec.lock();
    ExecOutcome {
        decisions: st.decisions.clone(),
        steps: st.steps,
        failure: st.failure.clone(),
        pruned: st.pruned,
        hb_edges: st.hb_edges,
        races: st.races,
    }
}

/// Spawn support for [`crate::sync::thread::spawn`] inside a model:
/// registers the thread with the parent's execution and wraps the body
/// with the token/finish protocol.
pub(crate) fn model_spawn<T, F>(
    exec: &Arc<Execution>,
    parent: Tid,
    f: F,
) -> (Tid, std::thread::JoinHandle<T>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = exec.op_spawn(parent);
    let texec = Arc::clone(exec);
    let handle = std::thread::Builder::new()
        .name(format!("qtag-check-{tid}"))
        .spawn(move || {
            crate::sync::enter_model(Arc::clone(&texec), tid);
            {
                let st = texec.lock();
                let st = texec.wait_for_grant(st, tid);
                drop(st);
            }
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            let out = match result {
                Ok(v) => {
                    texec.finish_thread(tid);
                    crate::sync::exit_model();
                    v
                }
                Err(payload) => {
                    if payload.downcast_ref::<AbortModel>().is_some() {
                        texec.finish_thread_aborted(tid);
                    } else {
                        texec.finish_thread_panicked(tid, panic_message(payload.as_ref()));
                    }
                    crate::sync::exit_model();
                    panic::resume_unwind(payload);
                }
            };
            out
        })
        .expect("spawn model thread");
    (tid, handle)
}
