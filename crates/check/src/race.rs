//! Happens-before machinery: vector clocks, operation descriptors,
//! the dependency relation, and the data-race detector state.
//!
//! Every visible operation a model thread announces at its
//! `yield_point` carries an [`Op`] descriptor. The scheduler uses the
//! descriptors twice:
//!
//! 1. **Race detection** (FastTrack-style): each thread carries a
//!    [`VClock`]; happens-before edges are built *only* from
//!    synchronization the code actually expresses — mutex
//!    unlock→lock, condvar notify→wake, spawn/join, and
//!    Acquire/Release/SeqCst atomic accesses (a release write joins
//!    the object's sync clock; an acquire read joins it back). A pair
//!    of conflicting accesses (same atomic, at least one write) that
//!    is unordered by that HB relation *and* involves at least one
//!    `Relaxed` access is a data race: the model's interleaving
//!    exploration is sequentially consistent, so a Relaxed access that
//!    only works because the explorer serializes everything is exactly
//!    the bug class R2's `// ordering:` comments promise away — here
//!    it is verified dynamically on every explored schedule. Pairs
//!    where both sides are Acquire/Release/SeqCst are synchronization
//!    by construction and never flagged.
//!
//! 2. **Sleep-set partial-order reduction**: two ops *commute* (are
//!    independent) when executing them in either order reaches the
//!    same state — see [`dependent`]. The DFS in `rt.rs` uses this to
//!    skip interleavings that only permute independent operations.
//!
//! Approximations, all conservative for the race check (extra HB
//! edges → fewer reported races, never spurious ones):
//! - an acquire read synchronizes with *every* prior release write to
//!   the object, not just the one whose value it read (the explorer
//!   serializes all accesses, so this is the release-sequence
//!   over-approximation);
//! - `compare_exchange` uses its success ordering whether or not the
//!   exchange succeeded;
//! - a condvar notify joins the condvar's clock, and any waiter later
//!   woken by a notify joins it back (edges from notifies that woke
//!   nobody are included).

use std::panic::Location;
use std::sync::atomic::Ordering;

use crate::rt::Tid;

/// Grow-on-demand vector clock indexed by [`Tid`].
#[derive(Debug, Clone, Default)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub(crate) fn new() -> Self {
        VClock(Vec::new())
    }

    pub(crate) fn get(&self, tid: Tid) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn grow_to(&mut self, tid: Tid) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
    }

    /// Increments `tid`'s own component and returns the new epoch.
    pub(crate) fn bump(&mut self, tid: Tid) -> u64 {
        self.grow_to(tid);
        self.0[tid] += 1;
        self.0[tid]
    }

    /// Pointwise max; returns whether anything changed (a genuinely
    /// new happens-before edge was learned).
    pub(crate) fn join(&mut self, other: &VClock) -> bool {
        let mut changed = false;
        for (i, &v) in other.0.iter().enumerate() {
            self.grow_to(i);
            if self.0[i] < v {
                self.0[i] = v;
                changed = true;
            }
        }
        changed
    }
}

/// How an atomic access touches memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AccessKind {
    Load,
    Store,
    /// Read-modify-write (`fetch_*`, `swap`, `compare_exchange*`).
    Rmw,
}

impl AccessKind {
    pub(crate) fn is_write(self) -> bool {
        !matches!(self, AccessKind::Load)
    }

    pub(crate) fn label(self) -> &'static str {
        match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
            AccessKind::Rmw => "rmw",
        }
    }
}

fn order_label(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "Relaxed",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        Ordering::AcqRel => "AcqRel",
        Ordering::SeqCst => "SeqCst",
        _ => "?",
    }
}

/// Whether the ordering has acquire semantics for a read side.
pub(crate) fn acquires(kind: AccessKind, order: Ordering) -> bool {
    match kind {
        AccessKind::Store => false,
        _ => matches!(
            order,
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst
        ),
    }
}

/// Whether the ordering has release semantics for a write side.
pub(crate) fn releases(kind: AccessKind, order: Ordering) -> bool {
    match kind {
        AccessKind::Load => false,
        _ => matches!(
            order,
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst
        ),
    }
}

/// The visible operation a thread has announced as its next step.
/// Known for every parked candidate at a decision point (threads
/// announce *before* asking the scheduler), which is what makes
/// sleep-set reasoning possible in this runtime.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Op {
    Atomic {
        obj: usize,
        kind: AccessKind,
        // Ordering and call site live in the [`Access`] record, not
        // here: the dependency relation cares only about object
        // identity and write-ness.
    },
    MutexLock {
        mid: usize,
    },
    MutexUnlock {
        mid: usize,
    },
    CondvarWait {
        cid: usize,
        mid: usize,
    },
    CondvarNotify {
        cid: usize,
    },
    /// Synthetic: scheduling a timed waiter fires its timeout (and
    /// advances the logical clock — which is why it is dependent with
    /// everything, regardless of which condvar it waited on).
    CondvarTimeout,
    Spawn,
    Join {
        target: Tid,
    },
    /// Synthetic: a thread completing (wakes joiners).
    Finish {
        tid: Tid,
    },
    /// `thread::yield_now` — a pure decision point, no state touched.
    Yield,
    /// `thread::sleep` — advances the shared logical clock.
    Sleep,
}

/// The dependency relation for partial-order reduction: `true` when
/// the two operations do **not** commute (executing them in either
/// order may reach different states), or when we cannot prove they
/// do. Symmetric. Conservative in the dependent direction — extra
/// dependence only costs reduction, never soundness.
pub(crate) fn dependent(a: &Op, b: &Op) -> bool {
    use Op::*;
    // Clock-advancing ops are dependent with everything: any other
    // thread may read the logical clock (`Instant::now`) from invisible
    // code, which reordering would change.
    if matches!(a, Sleep | CondvarTimeout) || matches!(b, Sleep | CondvarTimeout) {
        // ... except two pure yields/sleeps against a yield, handled
        // below via the Yield arm being unconditionally independent.
        if !matches!(a, Yield) && !matches!(b, Yield) {
            return true;
        }
    }
    match (a, b) {
        // Yield touches nothing.
        (Yield, _) | (_, Yield) => false,
        // Spawn only creates a thread that did not exist before the
        // op; it cannot race with anything already enabled.
        (Spawn, _) | (_, Spawn) => false,
        (
            Atomic {
                obj: o1, kind: k1, ..
            },
            Atomic {
                obj: o2, kind: k2, ..
            },
        ) => o1 == o2 && (k1.is_write() || k2.is_write()),
        (Atomic { .. }, _) | (_, Atomic { .. }) => false,
        // All mutex ops on the same mutex interfere (lock vs lock
        // contend, unlock enables lock). A condvar wait releases and
        // reacquires its mutex, so it participates in both classes.
        (MutexLock { mid: m1 }, MutexLock { mid: m2 })
        | (MutexLock { mid: m1 }, MutexUnlock { mid: m2 })
        | (MutexUnlock { mid: m1 }, MutexLock { mid: m2 })
        | (MutexUnlock { mid: m1 }, MutexUnlock { mid: m2 })
        | (MutexLock { mid: m1 }, CondvarWait { mid: m2, .. })
        | (CondvarWait { mid: m1, .. }, MutexLock { mid: m2 })
        | (MutexUnlock { mid: m1 }, CondvarWait { mid: m2, .. })
        | (CondvarWait { mid: m1, .. }, MutexUnlock { mid: m2 }) => m1 == m2,
        (CondvarWait { cid: c1, mid: m1 }, CondvarWait { cid: c2, mid: m2 }) => {
            c1 == c2 || m1 == m2
        }
        (CondvarWait { cid: c1, .. }, CondvarNotify { cid: c2 })
        | (CondvarNotify { cid: c1 }, CondvarWait { cid: c2, .. })
        | (CondvarNotify { cid: c1 }, CondvarNotify { cid: c2 }) => c1 == c2,
        (CondvarNotify { .. }, _) | (_, CondvarNotify { .. }) => false,
        (MutexLock { .. } | MutexUnlock { .. } | CondvarWait { .. }, _)
        | (_, MutexLock { .. } | MutexUnlock { .. } | CondvarWait { .. }) => false,
        // Join interferes only with its target finishing; Finish
        // interferes only with joins on it.
        (Join { target }, Finish { tid }) | (Finish { tid }, Join { target }) => target == tid,
        (Join { .. }, Join { .. }) => false,
        (Join { .. } | Finish { .. }, _) | (_, Join { .. } | Finish { .. }) => false,
        // Sleep/CondvarTimeout pairs were handled up front.
        (Sleep | CondvarTimeout, _) => true,
    }
}

/// One recorded access for the race check: the accessing thread's own
/// epoch at access time plus everything a report needs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Access {
    pub(crate) tid: Tid,
    pub(crate) epoch: u64,
    pub(crate) kind: AccessKind,
    pub(crate) order: Ordering,
    pub(crate) site: &'static Location<'static>,
}

impl Access {
    fn describe(&self) -> String {
        format!(
            "{}({}) by thread {} at {}:{}",
            self.kind.label(),
            order_label(self.order),
            self.tid,
            self.site.file(),
            self.site.line()
        )
    }
}

/// Per-atomic-object detector state. For each (thread, read/write)
/// slot the latest access is kept, plus the latest *Relaxed* access
/// when a stronger one has since overwritten it — epochs are
/// monotone, so if the latest access is ordered before a later
/// conflicting access, every older one is too; only the Relaxed flag
/// of an overwritten access can change a verdict.
#[derive(Debug, Default)]
pub(crate) struct AtomicObj {
    /// Joined clocks of all release writes (the object's
    /// synchronizes-with frontier).
    pub(crate) sync: VClock,
    writes: Vec<Option<Access>>,
    relaxed_writes: Vec<Option<Access>>,
    reads: Vec<Option<Access>>,
    relaxed_reads: Vec<Option<Access>>,
}

fn slot(v: &mut Vec<Option<Access>>, tid: Tid) -> &mut Option<Access> {
    if v.len() <= tid {
        v.resize(tid + 1, None);
    }
    &mut v[tid]
}

impl AtomicObj {
    /// Records `access` and returns the first conflicting prior access
    /// that is unordered by happens-before and Relaxed on at least one
    /// side (`clock` is the accessing thread's clock, already bumped
    /// and acquire-joined for this access).
    pub(crate) fn check_and_record(&mut self, access: Access, clock: &VClock) -> Option<Access> {
        let mut hit: Option<Access> = None;
        {
            let mut consider = |prev: &Option<Access>| {
                if hit.is_some() {
                    return;
                }
                let Some(p) = prev else { return };
                if p.tid == access.tid {
                    return;
                }
                // Conflicting = same object (given), at least one write.
                if !(p.kind.is_write() || access.kind.is_write()) {
                    return;
                }
                // Ordered iff the accessor has seen the prior access's
                // epoch through some happens-before path.
                if clock.get(p.tid) >= p.epoch {
                    return;
                }
                // Both sides non-Relaxed = synchronization traffic.
                if p.order != Ordering::Relaxed && access.order != Ordering::Relaxed {
                    return;
                }
                hit = Some(*p);
            };
            for t in 0..self
                .writes
                .len()
                .max(self.reads.len())
                .max(self.relaxed_writes.len())
                .max(self.relaxed_reads.len())
            {
                consider(self.writes.get(t).unwrap_or(&None));
                consider(self.relaxed_writes.get(t).unwrap_or(&None));
                if access.kind.is_write() {
                    consider(self.reads.get(t).unwrap_or(&None));
                    consider(self.relaxed_reads.get(t).unwrap_or(&None));
                }
            }
        }
        // Record (RMW counts as a write: its epoch covers both halves).
        let (latest, relaxed) = if access.kind.is_write() {
            (&mut self.writes, &mut self.relaxed_writes)
        } else {
            (&mut self.reads, &mut self.relaxed_reads)
        };
        if access.order == Ordering::Relaxed {
            *slot(relaxed, access.tid) = Some(access);
        } else if slot(latest, access.tid).is_some_and(|p| p.order == Ordering::Relaxed) {
            *slot(relaxed, access.tid) = slot(latest, access.tid).take();
        }
        *slot(latest, access.tid) = Some(access);
        hit
    }
}

/// Renders the race-report message; both access sites are named so
/// the offending pair can be found (and justified or fixed) directly.
pub(crate) fn race_message(obj: usize, prev: &Access, cur: &Access) -> String {
    format!(
        "data race on atomic #{obj}: {} is unordered (happens-before) with {} — \
         a Relaxed access relies on scheduling for correctness; add synchronization \
         or allow it via Builder::allow_race(\"<site>\") with a justification",
        prev.describe(),
        cur.describe()
    )
}

/// `true` when either access site matches an allowlist pattern
/// (substring of `file` or `file:line`).
pub(crate) fn race_allowed(patterns: &[String], a: &Access, b: &Access) -> bool {
    let sa = format!("{}:{}", a.site.file(), a.site.line());
    let sb = format!("{}:{}", b.site.file(), b.site.line());
    patterns
        .iter()
        .any(|p| !p.is_empty() && (sa.contains(p.as_str()) || sb.contains(p.as_str())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[track_caller]
    fn here() -> &'static Location<'static> {
        Location::caller()
    }

    fn acc(tid: Tid, epoch: u64, kind: AccessKind, order: Ordering) -> Access {
        Access {
            tid,
            epoch,
            kind,
            order,
            site: here(),
        }
    }

    #[test]
    fn vclock_join_and_bump() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        assert_eq!(a.bump(0), 1);
        assert_eq!(a.bump(0), 2);
        assert_eq!(b.bump(3), 1);
        assert!(a.join(&b), "learning a new component changes the clock");
        assert!(!a.join(&b), "re-joining the same clock is a no-op");
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(3), 1);
        assert_eq!(a.get(7), 0);
    }

    #[test]
    fn unordered_relaxed_writes_race() {
        let mut obj = AtomicObj::default();
        let mut c0 = VClock::new();
        let mut c1 = VClock::new();
        let e0 = c0.bump(0);
        assert!(obj
            .check_and_record(acc(0, e0, AccessKind::Rmw, Ordering::Relaxed), &c0)
            .is_none());
        let e1 = c1.bump(1);
        let hit = obj.check_and_record(acc(1, e1, AccessKind::Rmw, Ordering::Relaxed), &c1);
        assert!(hit.is_some(), "unordered Relaxed RMWs must race");
        assert_eq!(hit.unwrap().tid, 0);
    }

    #[test]
    fn hb_ordered_relaxed_accesses_do_not_race() {
        let mut obj = AtomicObj::default();
        let mut c0 = VClock::new();
        let e0 = c0.bump(0);
        obj.check_and_record(acc(0, e0, AccessKind::Store, Ordering::Relaxed), &c0);
        // Thread 1 joins thread 0's clock (e.g. via a mutex) before
        // accessing: ordered, no race.
        let mut c1 = VClock::new();
        c1.join(&c0);
        let e1 = c1.bump(1);
        assert!(obj
            .check_and_record(acc(1, e1, AccessKind::Load, Ordering::Relaxed), &c1)
            .is_none());
    }

    #[test]
    fn unordered_seqcst_pair_is_synchronization_not_a_race() {
        let mut obj = AtomicObj::default();
        let mut c0 = VClock::new();
        let mut c1 = VClock::new();
        let e0 = c0.bump(0);
        obj.check_and_record(acc(0, e0, AccessKind::Store, Ordering::SeqCst), &c0);
        let e1 = c1.bump(1);
        assert!(obj
            .check_and_record(acc(1, e1, AccessKind::Load, Ordering::SeqCst), &c1)
            .is_none());
    }

    #[test]
    fn reads_do_not_conflict_with_reads() {
        let mut obj = AtomicObj::default();
        let mut c0 = VClock::new();
        let mut c1 = VClock::new();
        let e0 = c0.bump(0);
        obj.check_and_record(acc(0, e0, AccessKind::Load, Ordering::Relaxed), &c0);
        let e1 = c1.bump(1);
        assert!(obj
            .check_and_record(acc(1, e1, AccessKind::Load, Ordering::Relaxed), &c1)
            .is_none());
    }

    #[test]
    fn overwritten_relaxed_access_still_races() {
        // Thread 0: Relaxed store, then SeqCst store. Thread 1's
        // unordered SeqCst load must still be flagged against the
        // shadowed Relaxed store.
        let mut obj = AtomicObj::default();
        let mut c0 = VClock::new();
        let e = c0.bump(0);
        obj.check_and_record(acc(0, e, AccessKind::Store, Ordering::Relaxed), &c0);
        let e = c0.bump(0);
        obj.check_and_record(acc(0, e, AccessKind::Store, Ordering::SeqCst), &c0);
        let mut c1 = VClock::new();
        let e1 = c1.bump(1);
        let hit = obj.check_and_record(acc(1, e1, AccessKind::Load, Ordering::SeqCst), &c1);
        assert!(hit.is_some(), "shadowed Relaxed store must still be found");
        assert_eq!(hit.unwrap().order, Ordering::Relaxed);
    }

    #[test]
    fn dependence_relation_basics() {
        use Op::*;
        let w = |obj| Atomic {
            obj,
            kind: AccessKind::Store,
        };
        let r = |obj| Atomic {
            obj,
            kind: AccessKind::Load,
        };
        assert!(dependent(&w(0), &r(0)));
        assert!(dependent(&w(0), &w(0)));
        assert!(!dependent(&r(0), &r(0)), "loads commute");
        assert!(!dependent(&w(0), &w(1)), "distinct objects commute");
        assert!(dependent(&MutexLock { mid: 0 }, &MutexUnlock { mid: 0 }));
        assert!(!dependent(&MutexLock { mid: 0 }, &MutexLock { mid: 1 }));
        assert!(dependent(
            &CondvarNotify { cid: 2 },
            &CondvarWait { cid: 2, mid: 0 }
        ));
        assert!(!dependent(&CondvarNotify { cid: 2 }, &w(0)));
        assert!(dependent(&Join { target: 3 }, &Finish { tid: 3 }));
        assert!(!dependent(&Join { target: 3 }, &Finish { tid: 4 }));
        assert!(!dependent(&Yield, &w(0)));
        assert!(!dependent(&Spawn, &w(0)));
        assert!(dependent(&Sleep, &w(0)), "clock advancers never commute");
        assert!(dependent(&CondvarTimeout, &w(1)));
        assert!(
            !dependent(&Yield, &Sleep),
            "yield commutes even with clock advancers"
        );
    }

    #[test]
    fn allowlist_matches_either_site() {
        let a = acc(0, 1, AccessKind::Rmw, Ordering::Relaxed);
        let b = acc(1, 1, AccessKind::Load, Ordering::Relaxed);
        assert!(race_allowed(&["race.rs".into()], &a, &b));
        assert!(!race_allowed(&["nonexistent.rs".into()], &a, &b));
        assert!(!race_allowed(&[String::new()], &a, &b));
    }
}
