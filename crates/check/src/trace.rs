//! Replayable schedule traces.
//!
//! A failing schedule is fully determined by the exploration seed
//! (which fixes candidate rotation at every decision) and the
//! sequence of candidate indices chosen at each decision point. The
//! printable form — `qtc1:<seed hex>:<c0.c1.c2...>` — is what a test
//! failure prints and what [`crate::Builder::replay`] parses back.

use std::fmt;
use std::str::FromStr;

/// A printable, parsable token identifying one exact interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceToken {
    /// Exploration seed (fixes candidate rotation per decision).
    pub seed: u64,
    /// Candidate index chosen at each decision point, in order.
    pub choices: Vec<u32>,
}

impl fmt::Display for TraceToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qtc1:{:x}:", self.seed)?;
        if self.choices.is_empty() {
            return write!(f, "-");
        }
        for (i, c) in self.choices.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Error parsing a [`TraceToken`] from its printed form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError(String);

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace token: {}", self.0)
    }
}

impl std::error::Error for ParseTraceError {}

impl FromStr for TraceToken {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.trim().splitn(3, ':');
        let magic = parts.next().unwrap_or("");
        if magic != "qtc1" {
            return Err(ParseTraceError(format!(
                "expected 'qtc1:' prefix, got '{magic}'"
            )));
        }
        let seed_str = parts
            .next()
            .ok_or_else(|| ParseTraceError("missing seed field".into()))?;
        let seed = u64::from_str_radix(seed_str, 16)
            .map_err(|e| ParseTraceError(format!("bad seed '{seed_str}': {e}")))?;
        let choices_str = parts
            .next()
            .ok_or_else(|| ParseTraceError("missing choices field".into()))?;
        let choices = if choices_str == "-" || choices_str.is_empty() {
            Vec::new()
        } else {
            choices_str
                .split('.')
                .map(|c| {
                    c.parse::<u32>()
                        .map_err(|e| ParseTraceError(format!("bad choice '{c}': {e}")))
                })
                .collect::<Result<Vec<u32>, _>>()?
        };
        Ok(TraceToken { seed, choices })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_display() {
        let t = TraceToken {
            seed: 0x51AD_C0DE,
            choices: vec![0, 2, 1, 0, 3],
        };
        let s = t.to_string();
        assert_eq!(s, "qtc1:51adc0de:0.2.1.0.3");
        assert_eq!(s.parse::<TraceToken>().unwrap(), t);
    }

    #[test]
    fn round_trips_empty_choices() {
        let t = TraceToken {
            seed: 7,
            choices: vec![],
        };
        let s = t.to_string();
        assert_eq!(s, "qtc1:7:-");
        assert_eq!(s.parse::<TraceToken>().unwrap(), t);
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<TraceToken>().is_err());
        assert!("qtc2:0:-".parse::<TraceToken>().is_err());
        assert!("qtc1:zz:-".parse::<TraceToken>().is_err());
        assert!("qtc1:0:a.b".parse::<TraceToken>().is_err());
    }
}
