//! The workspace invariant linter behind the `qtag-lint` binary.
//!
//! A lexical pass over `crates/*/src` (plus the vendored crossbeam
//! shim) enforcing the repo's concurrency and accounting rules:
//!
//! - **R1 counter-coverage**: every integer/atomic counter field in a
//!   `*Stats` struct must appear (word-boundary match) in at least one
//!   test region — conservation identities are only trustworthy if a
//!   test actually reads the counter. The rule extends to the metrics
//!   registry: `counters!` macro fields (`name: counter("help")`) and
//!   metric-name string literals passed to `registry.counter(...)` /
//!   `.gauge(...)` / `.histogram(...)` / `.counter_fn(...)` /
//!   `.gauge_fn(...)` must likewise be read by at least one test
//!   (prefix-parameterised names like `{prefix}_acked_total` match on
//!   their suffix).
//! - **R2 relaxed-rmw-justified**: every read-modify-write atomic op
//!   with `Ordering::Relaxed` needs an adjacent `// ordering:` comment
//!   saying why relaxed is enough (typically: monotone counter whose
//!   exact read is ordered by a join or channel handoff).
//! - **R3 no-stray-wall-clock**: `Instant::now()` / `SystemTime::now()`
//!   only in clock abstractions (`*clock.rs`, or an `Instant` imported
//!   from a `sync::time` facade, which is virtual under `qtag_check`),
//!   binaries (`src/bin/`), or test regions — everywhere else
//!   wall-clock reads make behavior untestable and unmodelable.
//! - **R4 facade-routing**: crates that route synchronization through
//!   a `sync` facade (qtag-server, qtag-collectd, qtag-store, vendored
//!   crossbeam) must not reach for `std::sync::Mutex`/`parking_lot`/
//!   raw atomics / `std::thread::spawn` outside the facade file
//!   itself.
//! - **R5 reactor-no-blocking**: event-loop files (`*/reactor.rs`)
//!   must not call blocking primitives — `thread::sleep`,
//!   `write_all`/`read_exact`, socket timeouts, blocking
//!   `.lock()`/`.recv()` — outside test regions. One stalled callback
//!   stalls every connection on that worker, so the event loop only
//!   gets non-blocking reads, cursor-tracked partial writes, and
//!   `try_recv` hand-offs; sleeps and deadline waits belong to the
//!   acceptor (`collector.rs`) or the poll timeout.
//! - **R6 tick-no-alloc**: render hot-path files (the engine's tick
//!   loop and the spatial index) must not heap-allocate per frame —
//!   `Vec::new`/`vec![`/`HashMap::new`/`format!`/`.collect()`/
//!   `.resize(`/… are banned outside an allowlist of setup and
//!   teardown functions (`new`, `attach_script`, `rebuild`, …) plus
//!   `tick_naive`, which is the deliberately-allocating measured
//!   baseline. The per-frame path works exclusively through reused
//!   scratch buffers (`clear()` + `push()` retain capacity), which is
//!   what lets one process hold a million resident sessions.
//! - **R7 model-coverage**: every facade crate (the R4 set) must ship
//!   a `tests/check_models.rs` schedule-exploration suite, and the
//!   crate's package must be listed on CI's `--cfg qtag_check`
//!   `cargo test` sweep. Routing a crate's synchronization through the
//!   facade is only worth the indirection if the checker actually
//!   explores that crate's interleavings on every push — a facade
//!   without models is unverified surface area.
//!
//! Findings are aggregated to stable keys (`rule|path|detail|count`,
//! no line numbers, so unrelated edits don't churn the file) and
//! compared against the checked-in `qtag-lint.baseline`: new findings
//! are denied, stale baseline entries are warned about, and
//! `--update-baseline` rewrites the file. Existing violations are
//! thereby triaged, not ignored.
//!
//! Purely lexical by design: no syn/proc-macro dependency (the crate
//! is dependency-free), comment lines are skipped, and test regions
//! (`tests/` files and everything after the first `#[cfg(test)]`) are
//! exempt from R2–R4 and *are* the corpus for R1.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation at a concrete site (line is for display only;
/// baseline keys deliberately exclude it).
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    /// Repo-relative path, `/`-separated.
    pub path: String,
    pub line: usize,
    /// Stable description of the site (field, function/op, token).
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.path, self.line, self.detail
        )
    }
}

const RMW_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    ".swap(",
];

/// Crates whose synchronization must route through their `sync`
/// facade module (R4).
const FACADE_CRATES: &[&str] = &[
    "crates/server/src",
    "crates/collectd/src",
    "crates/obs/src",
    "crates/store/src",
    "vendor/crossbeam/src",
];

const FACADE_BYPASS_TOKENS: &[&str] = &[
    "parking_lot::",
    "std::sync::Mutex",
    "std::sync::Condvar",
    "std::sync::atomic",
    "std::thread::spawn",
    "std::thread::JoinHandle",
];

/// Blocking primitives banned from event-loop files (R5). Lexical
/// like everything else: `.recv()` catches blocking channel waits
/// (`try_recv`/`recv_timeout` don't match the parenthesized form),
/// and the timeout setters catch any attempt to drive a reactor
/// socket through blocking reads-with-deadline.
const REACTOR_BLOCKING_TOKENS: &[&str] = &[
    "thread::sleep",
    ".write_all(",
    ".read_exact(",
    ".set_read_timeout(",
    ".set_write_timeout(",
    ".lock()",
    ".recv()",
    ".join()",
];

/// Files whose non-test code is the per-frame render hot path (R6).
const HOT_PATH_FILES: &[&str] = &["render/src/engine.rs", "render/src/spatial.rs"];

/// Heap-allocating constructs banned from the render tick path (R6).
/// Lexical: `.push(`/`.clear(` are deliberately absent — on a reused
/// scratch buffer they retain capacity and are the sanctioned idiom.
const TICK_ALLOC_TOKENS: &[&str] = &[
    "Vec::new(",
    "vec![",
    "HashMap::new(",
    "HashSet::new(",
    "BTreeMap::new(",
    "Box::new(",
    "String::new(",
    "format!(",
    ".to_string(",
    ".to_vec(",
    ".to_owned(",
    ".collect(",
    "with_capacity(",
    ".resize(",
    ".entry(",
];

/// Functions in hot-path files allowed to allocate (R6): construction,
/// script attach/detach, outbox draining, slot growth in the index's
/// mutation path, grid rebuilds — none of them run on the per-frame
/// fast path. `tick_naive` is the measured full-walk baseline and
/// allocates by design (its doc comment says "do not optimise it").
const TICK_ALLOC_ALLOWLIST: &[(&str, &str)] = &[
    ("render/src/engine.rs", "new"),
    ("render/src/engine.rs", "attach_script"),
    ("render/src/engine.rs", "probe_paint_counts"),
    ("render/src/engine.rs", "drain_outbox"),
    ("render/src/engine.rs", "click_at"),
    ("render/src/engine.rs", "tick_naive"),
    ("render/src/spatial.rs", "new"),
    ("render/src/spatial.rs", "insert"),
    ("render/src/spatial.rs", "rebuild"),
];

struct SourceFile {
    /// Repo-relative, `/`-separated.
    rel: String,
    lines: Vec<String>,
    /// Index of the first `#[cfg(test)]` line (everything from there
    /// to EOF is test region), or `lines.len()` if none.
    test_start: usize,
}

fn is_comment_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("//") || t.starts_with("/*") || t.starts_with('*')
}

fn word_boundary_contains(haystack: &str, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let before_ok = start == 0 || {
            let c = bytes[start - 1] as char;
            !c.is_alphanumeric() && c != '_'
        };
        let after_ok = end == bytes.len() || {
            let c = bytes[end] as char;
            !c.is_alphanumeric() && c != '_'
        };
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            // Never descend into build artifacts.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn load_file(root: &Path, path: &Path) -> Option<SourceFile> {
    let text = fs::read_to_string(path).ok()?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let lines: Vec<String> = text.lines().map(|l| l.to_string()).collect();
    let test_start = lines
        .iter()
        .position(|l| l.contains("#[cfg(test)]"))
        .unwrap_or(lines.len());
    Some(SourceFile {
        rel,
        lines,
        test_start,
    })
}

/// Collects the source files each rule scans plus the R1 test corpus.
struct Workspace {
    sources: Vec<SourceFile>,
    /// Concatenated test-region text (tests/ files + `#[cfg(test)]`
    /// tails of src files) for R1 coverage lookups.
    test_corpus: String,
}

fn gather(root: &Path) -> Workspace {
    let mut src_paths = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for c in dirs {
            // The checker is the sync/clock abstraction itself.
            if c.file_name().is_some_and(|n| n == "check") {
                continue;
            }
            walk_rs(&c.join("src"), &mut src_paths);
        }
    }
    walk_rs(&root.join("vendor/crossbeam/src"), &mut src_paths);

    let mut test_paths = Vec::new();
    walk_rs(&root.join("tests"), &mut test_paths);
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for c in entries.flatten() {
            walk_rs(&c.path().join("tests"), &mut test_paths);
        }
    }
    walk_rs(&root.join("vendor/crossbeam/tests"), &mut test_paths);

    let sources: Vec<SourceFile> = src_paths
        .iter()
        .filter_map(|p| load_file(root, p))
        .collect();

    let mut test_corpus = String::new();
    for p in &test_paths {
        if let Ok(text) = fs::read_to_string(p) {
            test_corpus.push_str(&text);
            test_corpus.push('\n');
        }
    }
    for f in &sources {
        for line in &f.lines[f.test_start..] {
            test_corpus.push_str(line);
            test_corpus.push('\n');
        }
    }
    Workspace {
        sources,
        test_corpus,
    }
}

fn nearest_fn(lines: &[String], at: usize) -> String {
    for line in lines[..=at.min(lines.len().saturating_sub(1))].iter().rev() {
        let t = line.trim_start();
        for prefix in ["pub fn ", "fn ", "pub(crate) fn ", "pub(super) fn "] {
            if let Some(rest) = t.strip_prefix(prefix) {
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    return name;
                }
            }
        }
    }
    "<top>".to_string()
}

fn check_r1(f: &SourceFile, corpus: &str, out: &mut Vec<Finding>) {
    let counter_types = [
        "AtomicU64",
        "AtomicUsize",
        "AtomicU32",
        "u64",
        "usize",
        "u32",
    ];
    let mut i = 0;
    while i < f.test_start {
        let line = &f.lines[i];
        let struct_name = line
            .split_whitespace()
            .skip_while(|w| *w != "struct")
            .nth(1)
            .map(|w| w.trim_end_matches(['{', '<']).trim().to_string());
        let is_stats_struct = !is_comment_line(line)
            && line.contains("struct ")
            && struct_name.as_deref().is_some_and(|n| n.ends_with("Stats"));
        if !is_stats_struct {
            i += 1;
            continue;
        }
        let struct_name = struct_name.unwrap();
        // Walk the struct body collecting counter fields.
        let mut j = i + 1;
        while j < f.test_start {
            let body = f.lines[j].trim();
            if body.starts_with('}') {
                break;
            }
            if !is_comment_line(body) && body.contains(':') {
                let field = body
                    .trim_start_matches("pub ")
                    .trim_start_matches("pub(crate) ")
                    .split(':')
                    .next()
                    .unwrap_or("")
                    .trim();
                let ty = body.split(':').nth(1).unwrap_or("").trim();
                let is_counter = counter_types
                    .iter()
                    .any(|t| ty == format!("{t},") || ty == *t || ty.starts_with(&format!("{t},")));
                let is_ident =
                    !field.is_empty() && field.chars().all(|c| c.is_alphanumeric() || c == '_');
                if is_counter && is_ident && !word_boundary_contains(corpus, field) {
                    out.push(Finding {
                        rule: "R1",
                        path: f.rel.clone(),
                        line: j + 1,
                        detail: format!("{struct_name}.{field} not read by any test"),
                    });
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    check_r1_registry(f, corpus, out);
}

/// First double-quoted string literal in `s` (no escape handling:
/// metric names and the `{prefix}` format shapes never contain one).
fn first_string_literal(s: &str) -> Option<&str> {
    let start = s.find('"')? + 1;
    let len = s[start..].find('"')?;
    Some(&s[start..start + len])
}

/// The registry half of R1: `counters!` macro fields and metric-name
/// literals at direct registration sites must be read by a test.
fn check_r1_registry(f: &SourceFile, corpus: &str, out: &mut Vec<Finding>) {
    const REGISTER_CALLS: &[&str] = &[
        ".counter(",
        ".counter_fn(",
        ".gauge(",
        ".gauge_fn(",
        ".histogram(",
    ];
    for i in 0..f.test_start {
        let line = &f.lines[i];
        if is_comment_line(line) {
            continue;
        }

        // `counters!` field syntax: `name: counter("help")` /
        // `name: gauge("help")`. The exported metric embeds the field
        // name, so covering the field covers the metric.
        for kind in [": counter(\"", ": gauge(\""] {
            let Some(pos) = line.find(kind) else {
                continue;
            };
            let field = line[..pos]
                .trim()
                .rsplit(|c: char| !c.is_alphanumeric() && c != '_')
                .next()
                .unwrap_or("");
            if !field.is_empty() && !word_boundary_contains(corpus, field) {
                out.push(Finding {
                    rule: "R1",
                    path: f.rel.clone(),
                    line: i + 1,
                    detail: format!("counters! field {field} not read by any test"),
                });
            }
        }

        // Direct registrations: the metric-name literal is the first
        // string in the call, possibly on a following line. Literal
        // names must appear verbatim in a test; `{prefix}_suffix`
        // shapes match on the suffix (any prefix counts as coverage).
        if !REGISTER_CALLS.iter().any(|c| line.contains(c)) {
            continue;
        }
        let window_end = (i + 3).min(f.test_start);
        let window = f.lines[i..window_end].join("\n");
        let after_call = REGISTER_CALLS
            .iter()
            .filter_map(|c| window.find(c).map(|p| p + c.len()))
            .min()
            .unwrap();
        let Some(name) = first_string_literal(&window[after_call..]) else {
            continue;
        };
        let covered = if let Some(rest) = name.strip_prefix('{') {
            // `{prefix}_acked_total` → require some full name ending
            // in `_acked_total`; doubly-dynamic shapes like
            // `{}_{}_total` are unverifiable lexically — skip.
            match rest.split_once('}') {
                Some((_, suffix)) if !suffix.is_empty() && !suffix.contains('{') => {
                    corpus.contains(suffix)
                }
                _ => continue,
            }
        } else if name.starts_with("qtag_") {
            word_boundary_contains(corpus, name)
        } else {
            // Not a metric name (help text or unrelated literal).
            continue;
        };
        if !covered {
            out.push(Finding {
                rule: "R1",
                path: f.rel.clone(),
                line: i + 1,
                detail: format!("registry metric {name} not read by any test"),
            });
        }
    }
}

fn check_r2(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.test_start {
        let line = &f.lines[i];
        if is_comment_line(line) {
            continue;
        }
        let Some(method) = RMW_METHODS.iter().find(|m| line.contains(**m)) else {
            continue;
        };
        // The ordering argument may sit on the next line or two.
        let window_end = (i + 3).min(f.test_start);
        let window = f.lines[i..window_end].join("\n");
        if !window.contains("Relaxed") {
            continue;
        }
        // Justified if `// ordering:` is on the line itself or in the
        // comment block directly above the statement (skipping at most
        // a few lines of a chained receiver expression).
        let mut justified = line.contains("// ordering:");
        let mut k = i;
        let mut hops = 0;
        while !justified && k > 0 && hops < 6 {
            k -= 1;
            hops += 1;
            let above = f.lines[k].trim();
            if above.starts_with("//") {
                if above.contains("ordering:") {
                    justified = true;
                }
            } else if above.ends_with(';') || above.ends_with('{') || above.ends_with('}') {
                // Crossed a statement boundary without finding a
                // comment block: stop looking.
                break;
            }
        }
        if !justified {
            out.push(Finding {
                rule: "R2",
                path: f.rel.clone(),
                line: i + 1,
                detail: format!(
                    "{}/{} Relaxed RMW without '// ordering:' justification",
                    nearest_fn(&f.lines, i),
                    method.trim_matches(['.', '('])
                ),
            });
        }
    }
}

fn check_r3(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.rel.ends_with("clock.rs") || f.rel.contains("/src/bin/") {
        return;
    }
    // An `Instant` imported from a `sync::time` facade IS a clock
    // abstraction (virtual under qtag_check), so `Instant::now()` is
    // fine there; `SystemTime::now()` has no facade and stays flagged.
    let facade_instant = f.lines[..f.test_start]
        .iter()
        .any(|l| l.trim_start().starts_with("use ") && l.contains("sync::time::"));
    for i in 0..f.test_start {
        let line = &f.lines[i];
        if is_comment_line(line) {
            continue;
        }
        for token in ["Instant::now()", "SystemTime::now()"] {
            if token.starts_with("Instant") && facade_instant {
                continue;
            }
            if line.contains(token) {
                out.push(Finding {
                    rule: "R3",
                    path: f.rel.clone(),
                    line: i + 1,
                    detail: format!(
                        "{} in {} (wall clock outside a clock abstraction)",
                        token.trim_end_matches("()"),
                        nearest_fn(&f.lines, i)
                    ),
                });
            }
        }
    }
}

fn check_r4(f: &SourceFile, out: &mut Vec<Finding>) {
    if !FACADE_CRATES.iter().any(|c| f.rel.starts_with(c)) {
        return;
    }
    if f.rel.ends_with("/sync.rs") {
        return;
    }
    for i in 0..f.test_start {
        let line = &f.lines[i];
        if is_comment_line(line) {
            continue;
        }
        for token in FACADE_BYPASS_TOKENS {
            if line.contains(token) {
                out.push(Finding {
                    rule: "R4",
                    path: f.rel.clone(),
                    line: i + 1,
                    detail: format!("{token} bypasses the sync facade"),
                });
            }
        }
    }
}

fn check_r5(f: &SourceFile, out: &mut Vec<Finding>) {
    if !f.rel.ends_with("/reactor.rs") {
        return;
    }
    for i in 0..f.test_start {
        let line = &f.lines[i];
        if is_comment_line(line) {
            continue;
        }
        for token in REACTOR_BLOCKING_TOKENS {
            if line.contains(token) {
                out.push(Finding {
                    rule: "R5",
                    path: f.rel.clone(),
                    line: i + 1,
                    detail: format!(
                        "{} blocks the event loop in {}",
                        token.trim_matches(['.', '(']),
                        nearest_fn(&f.lines, i)
                    ),
                });
            }
        }
    }
}

fn check_r6(f: &SourceFile, out: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.iter().any(|h| f.rel.ends_with(h)) {
        return;
    }
    for i in 0..f.test_start {
        let line = &f.lines[i];
        if is_comment_line(line) {
            continue;
        }
        for token in TICK_ALLOC_TOKENS {
            if !line.contains(token) {
                continue;
            }
            let func = nearest_fn(&f.lines, i);
            let allowed = TICK_ALLOC_ALLOWLIST
                .iter()
                .any(|(file, name)| f.rel.ends_with(file) && *name == func);
            if !allowed {
                out.push(Finding {
                    rule: "R6",
                    path: f.rel.clone(),
                    line: i + 1,
                    detail: format!(
                        "{} heap-allocates in render hot path fn {}",
                        token.trim_matches(['.', '(', '[', '!']),
                        func
                    ),
                });
            }
        }
    }
}

/// Package names run by `cargo test` lines under `--cfg qtag_check`
/// in the CI workflow text. The `--cfg` typically lives in a step's
/// `env:` block adjacent to the `run:` line, so the match window
/// spans a few lines around each `cargo test`.
fn qtag_check_sweep_packages(ci: &str) -> Vec<String> {
    let lines: Vec<&str> = ci.lines().collect();
    let mut pkgs = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if is_comment_line(line) || !line.contains("cargo test") {
            continue;
        }
        let lo = i.saturating_sub(4);
        let hi = (i + 5).min(lines.len());
        if !lines[lo..hi].iter().any(|l| l.contains("--cfg qtag_check")) {
            continue;
        }
        let mut rest = *line;
        while let Some(pos) = rest.find("-p ") {
            let tail = &rest[pos + 3..];
            let pkg: String = tail
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '-')
                .collect();
            if !pkg.is_empty() {
                pkgs.push(pkg);
            }
            rest = tail;
        }
    }
    pkgs
}

/// R7 model-coverage: each facade crate must ship a
/// `tests/check_models.rs` suite and appear on CI's qtag_check sweep.
fn check_r7(root: &Path, out: &mut Vec<Finding>) {
    const CI_PATH: &str = ".github/workflows/ci.yml";
    let ci = fs::read_to_string(root.join(CI_PATH)).unwrap_or_default();
    let swept = qtag_check_sweep_packages(&ci);
    for src in FACADE_CRATES {
        let crate_dir = src.trim_end_matches("/src");
        let models = format!("{crate_dir}/tests/check_models.rs");
        if !root.join(&models).is_file() {
            out.push(Finding {
                rule: "R7",
                path: models,
                line: 1,
                detail: format!("facade crate {crate_dir} ships no check_models.rs suite"),
            });
        }
        let manifest =
            fs::read_to_string(root.join(crate_dir).join("Cargo.toml")).unwrap_or_default();
        let Some(pkg) = manifest.lines().find_map(|l| {
            l.trim()
                .strip_prefix("name = \"")
                .and_then(|r| r.split('"').next())
        }) else {
            continue;
        };
        if !swept.iter().any(|s| s == pkg) {
            out.push(Finding {
                rule: "R7",
                path: CI_PATH.to_string(),
                line: 1,
                detail: format!("{pkg} missing from the --cfg qtag_check model sweep"),
            });
        }
    }
}

/// Runs all rules over the workspace rooted at `root`.
pub fn run(root: &Path) -> Vec<Finding> {
    let ws = gather(root);
    let mut findings = Vec::new();
    for f in &ws.sources {
        check_r1(f, &ws.test_corpus, &mut findings);
        check_r2(f, &mut findings);
        check_r3(f, &mut findings);
        check_r4(f, &mut findings);
        check_r5(f, &mut findings);
        check_r6(f, &mut findings);
    }
    check_r7(root, &mut findings);
    findings.sort_by(|a, b| {
        (a.rule, &a.path, a.line, &a.detail).cmp(&(b.rule, &b.path, b.line, &b.detail))
    });
    findings
}

/// Aggregates findings to stable baseline keys: `rule|path|detail`
/// mapped to occurrence count. Line numbers are deliberately absent so
/// unrelated edits don't churn the baseline.
pub fn aggregate(findings: &[Finding]) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for f in findings {
        *map.entry(format!("{}|{}|{}", f.rule, f.path, f.detail))
            .or_insert(0) += 1;
    }
    map
}

/// Parses a baseline file (lines of `rule|path|detail|count`; `#`
/// comments and blanks ignored).
pub fn parse_baseline(text: &str) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, count)) = line.rsplit_once('|') else {
            continue;
        };
        let count = count.trim().parse::<usize>().unwrap_or(1);
        map.insert(key.to_string(), count);
    }
    map
}

/// Renders an aggregate map back to baseline-file form.
pub fn render_baseline(map: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# qtag-lint baseline: triaged pre-existing findings (rule|path|detail|count).\n\
         # New findings beyond these counts fail CI; regenerate with\n\
         # `cargo run -p qtag-check --bin qtag-lint -- --update-baseline`.\n",
    );
    for (key, count) in map {
        out.push_str(&format!("{key}|{count}\n"));
    }
    out
}

/// Comparison outcome against a baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Keys whose current count exceeds the baselined count (new debt
    /// — denied).
    pub new: Vec<(String, usize, usize)>,
    /// Baselined keys no longer found (stale — warn so the baseline
    /// gets tightened).
    pub stale: Vec<String>,
}

pub fn diff(current: &BTreeMap<String, usize>, baseline: &BTreeMap<String, usize>) -> BaselineDiff {
    let mut d = BaselineDiff::default();
    for (key, &count) in current {
        let base = baseline.get(key).copied().unwrap_or(0);
        if count > base {
            d.new.push((key.clone(), count, base));
        }
    }
    for key in baseline.keys() {
        if !current.contains_key(key) {
            d.stale.push(key.clone());
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_boundary_matching() {
        assert!(word_boundary_contains(
            "a + beacons_sent == b",
            "beacons_sent"
        ));
        assert!(!word_boundary_contains(
            "total_beacons_sent",
            "beacons_sent"
        ));
        assert!(!word_boundary_contains(
            "beacons_sent_total",
            "beacons_sent"
        ));
        assert!(word_boundary_contains("beacons_sent", "beacons_sent"));
        assert!(!word_boundary_contains("", "x"));
    }

    #[test]
    fn baseline_round_trip() {
        let mut map = BTreeMap::new();
        map.insert("R2|crates/x/src/a.rs|f/fetch_add".to_string(), 3);
        map.insert("R3|crates/y/src/b.rs|Instant::now in g".to_string(), 1);
        let text = render_baseline(&map);
        assert_eq!(parse_baseline(&text), map);
    }

    #[test]
    fn diff_flags_new_and_stale() {
        let mut cur = BTreeMap::new();
        cur.insert("R2|a|x".to_string(), 2);
        cur.insert("R3|b|y".to_string(), 1);
        let mut base = BTreeMap::new();
        base.insert("R2|a|x".to_string(), 1);
        base.insert("R4|c|z".to_string(), 1);
        let d = diff(&cur, &base);
        assert_eq!(d.new.len(), 2); // R2 count grew, R3 unbaselined
        assert_eq!(d.stale, vec!["R4|c|z".to_string()]);
    }

    #[test]
    fn r1_flags_uncovered_counters_macro_fields() {
        let f = SourceFile {
            rel: "crates/x/src/stats.rs".into(),
            lines: vec![
                "qtag_obs::counters! {".into(),
                "    pub struct FooStats / FooStatsSnapshot {".into(),
                "        frames_seen: counter(\"Frames seen.\"),".into(),
                "        depth_now: gauge(\"Live depth.\"),".into(),
                "    }".into(),
                "}".into(),
            ],
            test_start: 6,
        };
        let mut out = Vec::new();
        check_r1(&f, "assert_eq!(snap.frames_seen, 4);", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].detail.contains("depth_now"));
    }

    #[test]
    fn r1_flags_uncovered_registry_metric_literals() {
        let f = SourceFile {
            rel: "crates/x/src/metrics.rs".into(),
            lines: vec![
                "fn register(registry: &Registry, prefix: &str) {".into(),
                "    registry.histogram(".into(),
                "        \"qtag_x_latency_us\",".into(),
                "        \"Help text only.\",".into(),
                "    );".into(),
                "    registry.counter(&format!(\"{prefix}_acked_total\"), \"h\");".into(),
                "    registry.gauge(&format!(\"{prefix}_pending\"), \"h\");".into(),
                "    registry.counter_fn(&format!(\"{}_{}_total\", prefix, f), \"h\", || 0);"
                    .into(),
                "}".into(),
            ],
            test_start: 9,
        };
        let mut out = Vec::new();
        // Corpus covers the histogram verbatim and the acked suffix
        // under some concrete prefix; `{prefix}_pending` is uncovered
        // and the doubly-dynamic `{}_{}_total` shape is skipped.
        check_r1(
            &f,
            "registry.get(\"qtag_x_latency_us\"); get(\"qtag_sender_acked_total\");",
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].detail.contains("{prefix}_pending"), "{out:?}");
    }

    #[test]
    fn r2_accepts_justified_and_flags_bare() {
        let f = SourceFile {
            rel: "crates/x/src/a.rs".into(),
            lines: vec![
                "fn bump(s: &Stats) {".into(),
                "    // ordering: monotone counter, exact read ordered by join".into(),
                "    s.n.fetch_add(1, Ordering::Relaxed);".into(),
                "    s.m.fetch_add(1, Ordering::Relaxed);".into(),
                "}".into(),
            ],
            test_start: 5,
        };
        let mut out = Vec::new();
        check_r2(&f, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn r3_allows_clock_files_and_bins() {
        let mk = |rel: &str| SourceFile {
            rel: rel.into(),
            lines: vec!["fn t() { let x = Instant::now(); }".into()],
            test_start: 1,
        };
        let mut out = Vec::new();
        check_r3(&mk("crates/render/src/clock.rs"), &mut out);
        check_r3(&mk("crates/bench/src/bin/loadgen.rs"), &mut out);
        assert!(out.is_empty());
        check_r3(&mk("crates/server/src/ingest.rs"), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn r5_flags_blocking_calls_only_in_reactor_files() {
        let lines: Vec<String> = vec![
            "fn pump(rx: &Receiver<Conn>, io: &mut TcpStream) {".into(),
            "    let c = rx.recv(); // blocking hand-off wait".into(),
            "    io.write_all(&[1]).unwrap();".into(),
            "    io.set_read_timeout(None).unwrap();".into(),
            "    thread::sleep(POLL);".into(),
            "    let n = rx.try_recv(); // non-blocking: fine".into(),
            "}".into(),
        ];
        let mut out = Vec::new();
        // Same tokens outside an event-loop file are R5-exempt (the
        // threaded path blocks by design).
        check_r5(
            &SourceFile {
                rel: "crates/collectd/src/connection.rs".into(),
                lines: lines.clone(),
                test_start: lines.len(),
            },
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        let test_start = lines.len();
        check_r5(
            &SourceFile {
                rel: "crates/collectd/src/reactor.rs".into(),
                lines,
                test_start,
            },
            &mut out,
        );
        assert_eq!(out.len(), 4, "{out:?}");
        assert!(out.iter().all(|f| f.rule == "R5"));
        assert!(out.iter().any(|f| f.detail.contains("recv")), "{out:?}");
        assert!(
            out.iter().any(|f| f.detail.contains("thread::sleep")),
            "{out:?}"
        );
    }

    #[test]
    fn r5_exempts_test_regions() {
        let f = SourceFile {
            rel: "crates/collectd/src/reactor.rs".into(),
            lines: vec![
                "fn pump() {}".into(),
                "#[cfg(test)]".into(),
                "mod tests {".into(),
                "    fn t() { std::thread::sleep(D); }".into(),
                "}".into(),
            ],
            test_start: 1,
        };
        let mut out = Vec::new();
        check_r5(&f, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r6_flags_allocation_only_in_hot_path_files() {
        let lines: Vec<String> = vec![
            "fn tick_indexed(&mut self) {".into(),
            "    let mut extra = Vec::new();".into(),
            "    let ids: Vec<u32> = xs.iter().collect();".into(),
            "    self.query_scratch.clear(); // reuse: fine".into(),
            "    self.query_scratch.push(3); // reuse: fine".into(),
            "}".into(),
            "fn tick_naive(&mut self) {".into(),
            "    let mut m = HashMap::new(); // measured baseline".into(),
            "}".into(),
            "pub fn attach_script(&mut self) {".into(),
            "    self.pages.push(Vec::new()); // setup path".into(),
            "}".into(),
        ];
        let mut out = Vec::new();
        // Same tokens outside a hot-path file are R6-exempt.
        check_r6(
            &SourceFile {
                rel: "crates/server/src/ingest.rs".into(),
                lines: lines.clone(),
                test_start: lines.len(),
            },
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        let test_start = lines.len();
        check_r6(
            &SourceFile {
                rel: "crates/render/src/engine.rs".into(),
                lines,
                test_start,
            },
            &mut out,
        );
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|f| f.rule == "R6"));
        assert!(out.iter().all(|f| f.detail.contains("tick_indexed")));
        assert!(out.iter().any(|f| f.detail.contains("Vec::new")), "{out:?}");
        assert!(out.iter().any(|f| f.detail.contains("collect")), "{out:?}");
    }

    #[test]
    fn r6_exempts_test_regions_and_spatial_mutation_paths() {
        let f = SourceFile {
            rel: "crates/render/src/spatial.rs".into(),
            lines: vec![
                "pub fn insert(&mut self, id: u32, rect: Rect) {".into(),
                "    self.items.resize(slot + 1, None); // slot growth".into(),
                "}".into(),
                "pub fn query(&self, rect: &Rect, out: &mut Vec<u32>) {".into(),
                "    out.clear();".into(),
                "}".into(),
                "#[cfg(test)]".into(),
                "mod tests {".into(),
                "    fn t() { let v = vec![1, 2]; }".into(),
                "}".into(),
            ],
            test_start: 6,
        };
        let mut out = Vec::new();
        check_r6(&f, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r6_flags_query_path_allocation_in_the_index() {
        let f = SourceFile {
            rel: "crates/render/src/spatial.rs".into(),
            lines: vec![
                "pub fn query(&self, rect: &Rect) -> Vec<u32> {".into(),
                "    self.cells.iter().flatten().copied().collect()".into(),
                "}".into(),
            ],
            test_start: 3,
        };
        let mut out = Vec::new();
        check_r6(&f, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].detail.contains("query"));
    }

    #[test]
    fn r7_sweep_parser_reads_packages_near_the_cfg() {
        let ci = "\
      - name: Ported-code models (--cfg qtag_check)\n\
        run: cargo test -q -p qtag-check -p crossbeam -p qtag-store\n\
        env:\n\
          RUSTFLAGS: --cfg qtag_check\n\
      - name: Plain suite (no cfg nearby)\n\
        run: echo spacer\n\
        # pad the window so the qtag_check above is out of range\n\
        # pad\n\
        # pad\n\
      - name: Far-away test\n\
        run: cargo test -q -p qtag-wire\n";
        let pkgs = qtag_check_sweep_packages(ci);
        assert_eq!(pkgs, vec!["qtag-check", "crossbeam", "qtag-store"]);
    }

    #[test]
    fn r3_allows_facade_instant_but_not_system_time() {
        let f = SourceFile {
            rel: "vendor/crossbeam/src/lib.rs".into(),
            lines: vec![
                "use crate::sync::time::Instant;".into(),
                "fn t() { let a = Instant::now(); }".into(),
                "fn u() { let b = SystemTime::now(); }".into(),
            ],
            test_start: 3,
        };
        let mut out = Vec::new();
        check_r3(&f, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].detail.contains("SystemTime"));
    }
}
