//! Runs the built-in qtag-check models and reports exploration
//! throughput (schedules/sec per model). The output is recorded in
//! `results/qtag_check.txt` so future PRs can spot exploration-budget
//! regressions.
//!
//! ```text
//! cargo run --release -p qtag-check --bin qtag-models
//! ```
//!
//! Must-fail models (the PR-1 lost-wakeup replica with the fix
//! reverted, AB-BA deadlock, the Relaxed-handoff race canary) are
//! asserted to fail; everything else is asserted to pass under the
//! full bounded-DFS budget. Exit status 1 if any expectation is
//! violated. `QTAG_CHECK_DPOR=0` disables sleep-set reduction — the
//! before/after table in `results/qtag_check_dpor.txt` is two runs of
//! this binary.

use qtag_check::{models, Builder, FailureKind};
use std::process::ExitCode;
use std::time::Instant;

struct Row {
    name: &'static str,
    expect: &'static str,
    outcome: String,
    schedules: u64,
    steps: u64,
    pruned: u64,
    secs: f64,
    ok: bool,
}

fn run_model(
    name: &'static str,
    must_fail: Option<FailureKind>,
    b: &Builder,
    f: impl Fn() + Send + Sync + 'static,
) -> Row {
    let t0 = Instant::now();
    let result = b.try_check(f);
    let secs = t0.elapsed().as_secs_f64();
    match (result, must_fail) {
        (Ok(report), None) => Row {
            name,
            expect: "pass",
            outcome: format!(
                "pass ({})",
                if report.complete {
                    "exhaustive"
                } else {
                    "budget"
                }
            ),
            schedules: report.schedules,
            steps: report.steps,
            pruned: report.pruned,
            secs,
            ok: true,
        },
        (Ok(report), Some(kind)) => Row {
            name,
            expect: "fail",
            outcome: format!("UNEXPECTED PASS (wanted {kind})"),
            schedules: report.schedules,
            steps: report.steps,
            pruned: report.pruned,
            secs,
            ok: false,
        },
        (Err(failure), None) => Row {
            name,
            expect: "pass",
            outcome: format!("UNEXPECTED {} [{}]", failure.kind, failure.trace),
            schedules: failure.schedule,
            steps: 0,
            pruned: 0,
            secs,
            ok: false,
        },
        (Err(failure), Some(kind)) => {
            let ok = failure.kind == kind;
            Row {
                name,
                expect: "fail",
                outcome: if ok {
                    format!(
                        "fail as expected ({}, schedule {})",
                        failure.kind, failure.schedule
                    )
                } else {
                    format!("WRONG FAILURE {} (wanted {kind})", failure.kind)
                },
                schedules: failure.schedule,
                steps: 0,
                pruned: 0,
                secs,
                ok,
            }
        }
    }
}

fn main() -> ExitCode {
    let b = Builder::default();
    // Three-plus-thread models have DFS trees in the millions of
    // schedules; explore those CHESS-style with a preemption bound
    // (empirically, almost all real races need very few involuntary
    // context switches to manifest).
    let pb2 = Builder::bounded(2);
    println!(
        "qtag-models: seed={:#x} max_schedules={} max_steps={} (pb2 = preemption bound 2)",
        b.seed, b.max_schedules, b.max_steps
    );
    println!();

    let rows = vec![
        run_model(
            "lost_wakeup_pr1_bug",
            Some(FailureKind::Deadlock),
            &b,
            models::mini_channel_last_sender_drop(false),
        ),
        run_model(
            "lost_wakeup_fixed",
            None,
            &b,
            models::mini_channel_last_sender_drop(true),
        ),
        run_model(
            "abba_deadlock",
            Some(FailureKind::Deadlock),
            &b,
            models::abba_deadlock(),
        ),
        run_model(
            "mpsc_conservation_2x1_pb2",
            None,
            &pb2,
            models::mpsc_conservation(2, 1),
        ),
        run_model("mutex_counter_2x2", None, &b, models::mutex_counter(2, 2)),
        run_model("store_buffer_sc", None, &b, models::store_buffer_sc()),
        run_model("condvar_handoff", None, &b, models::condvar_handoff()),
        run_model("recv_timeout_fires", None, &b, models::recv_timeout_fires()),
        // Race-detector canary: the unpublished Relaxed handoff must
        // be reported as a data race, its published twin must pass.
        run_model(
            "relaxed_handoff_race",
            Some(FailureKind::Race),
            &b,
            models::relaxed_counter_handoff(false),
        ),
        run_model(
            "relaxed_handoff_fixed",
            None,
            &b,
            models::relaxed_counter_handoff(true),
        ),
        // All-commuting model: the sleep-set reduction's best case
        // (and the headline row of results/qtag_check_dpor.txt).
        run_model(
            "independent_counters_3",
            None,
            &b,
            models::independent_counters(3),
        ),
    ];

    println!(
        "{:<24} {:>6} {:>10} {:>10} {:>8} {:>8} {:>11}  outcome",
        "model", "expect", "schedules", "steps", "pruned", "secs", "sched/sec"
    );
    let mut all_ok = true;
    for r in &rows {
        let rate = if r.secs > 0.0 {
            r.schedules as f64 / r.secs
        } else {
            f64::INFINITY
        };
        println!(
            "{:<24} {:>6} {:>10} {:>10} {:>8} {:>8.3} {:>11.0}  {}",
            r.name, r.expect, r.schedules, r.steps, r.pruned, r.secs, rate, r.outcome
        );
        all_ok &= r.ok;
    }
    println!();
    if all_ok {
        println!("qtag-models: all expectations held");
        ExitCode::SUCCESS
    } else {
        println!("qtag-models: EXPECTATION VIOLATED (see rows above)");
        ExitCode::FAILURE
    }
}
