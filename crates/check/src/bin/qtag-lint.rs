//! Workspace invariant linter. See `qtag_check::lint` for the rules.
//!
//! ```text
//! cargo run -p qtag-check --bin qtag-lint                  # check against baseline
//! cargo run -p qtag-check --bin qtag-lint -- --update-baseline
//! cargo run -p qtag-check --bin qtag-lint -- --root /path/to/repo
//! ```
//!
//! Exit status: 0 clean (stale baseline entries only warn), 1 new
//! findings beyond the baseline, 2 usage/IO error.

use qtag_check::lint;
use std::path::PathBuf;
use std::process::ExitCode;

fn default_root() -> PathBuf {
    // crates/check -> crates -> repo root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut root = default_root();
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("qtag-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => update = true,
            "--help" | "-h" => {
                eprintln!("usage: qtag-lint [--root DIR] [--update-baseline]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("qtag-lint: unknown argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }

    let findings = lint::run(&root);
    let current = lint::aggregate(&findings);
    let baseline_path = root.join("qtag-lint.baseline");

    if update {
        if let Err(e) = std::fs::write(&baseline_path, lint::render_baseline(&current)) {
            eprintln!("qtag-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "qtag-lint: baselined {} finding keys ({} sites) into {}",
            current.len(),
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => lint::parse_baseline(&text),
        Err(_) => Default::default(),
    };
    let diff = lint::diff(&current, &baseline);

    for key in &diff.stale {
        eprintln!("qtag-lint: warning: stale baseline entry (fixed? tighten the baseline): {key}");
    }

    if diff.new.is_empty() {
        println!(
            "qtag-lint: clean — {} sites across {} keys, all baselined ({} stale entries)",
            findings.len(),
            current.len(),
            diff.stale.len()
        );
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "qtag-lint: {} new finding key(s) beyond baseline:",
        diff.new.len()
    );
    for (key, cur, base) in &diff.new {
        eprintln!("  {key} (now {cur}, baselined {base})");
        for f in &findings {
            if format!("{}|{}|{}", f.rule, f.path, f.detail) == *key {
                eprintln!("    at {}:{}", f.path, f.line);
            }
        }
    }
    eprintln!("qtag-lint: fix the sites above or, for triaged debt, run with --update-baseline");
    ExitCode::FAILURE
}
