//! Shimmed synchronization primitives: `Mutex`, `Condvar`, atomics,
//! `thread`, and `time::Instant` with the same shape as their
//! `std`/`parking_lot` counterparts, routed through the model-checker
//! scheduler *only* when the calling thread belongs to a model
//! execution.
//!
//! Outside a model (no thread-local execution context) every type
//! delegates straight to `std`, so a binary compiled with
//! `--cfg qtag_check` still runs all of its ordinary tests
//! unperturbed; only code invoked under [`crate::Builder::check`]
//! gets controlled scheduling. Consuming crates expose these types
//! behind a `sync` facade module that swaps between
//! `parking_lot`/`std` and this module on `cfg(qtag_check)`.
//!
//! Semantics under a model:
//! - every lock/unlock, condvar wait/notify, atomic access, spawn and
//!   join is a *visible operation* — a scheduling decision point;
//! - atomic *values* are sequentially consistent regardless of the
//!   `Ordering` argument (weak-memory value exploration is out of
//!   scope, documented in DESIGN.md §14), but the `Ordering` and the
//!   caller's source location are recorded per access and feed the
//!   vector-clock happens-before race detector: a `Relaxed` access
//!   that conflicts with another access unordered by HB fails the
//!   schedule;
//! - `Instant::now()` reads the execution's logical clock and is not
//!   a decision point; `Condvar::wait_timeout` waiters are
//!   schedulable, and scheduling one models the timeout firing.

use crate::rt::{self, Execution, Tid, Wake};
use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::Arc as StdArc;
use std::time::Duration;

pub use std::sync::{Arc, Weak};

type Ctx = (StdArc<Execution>, Tid);

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn enter_model(exec: StdArc<Execution>, tid: Tid) {
    CURRENT.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

pub(crate) fn exit_model() {
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Whether the calling thread is currently inside a model execution.
pub(crate) fn in_model() -> bool {
    CURRENT.try_with(|c| c.borrow().is_some()).unwrap_or(false)
}

fn ctx() -> Option<Ctx> {
    CURRENT.try_with(|c| c.borrow().clone()).unwrap_or(None)
}

/// Lazily binds a shim object to the *current* execution: objects can
/// be created outside any model (statics, captured state) and reused
/// across executions, so the model-side id is resolved per execution
/// serial, not at construction.
struct ModelRef(StdAtomicU64);

enum RefKind {
    Mutex,
    Condvar,
    Atomic,
}

impl ModelRef {
    const fn new() -> Self {
        ModelRef(StdAtomicU64::new(0))
    }

    fn resolve(&self, exec: &StdArc<Execution>, kind: RefKind) -> usize {
        use std::sync::atomic::Ordering::Relaxed;
        let serial = exec.serial & 0xFFFF_FFFF;
        let packed = self.0.load(Relaxed);
        if packed != 0 && packed >> 32 == serial {
            return (packed & 0xFFFF_FFFF) as usize;
        }
        let id = match kind {
            RefKind::Mutex => exec.register_mutex(),
            RefKind::Condvar => exec.register_condvar(),
            RefKind::Atomic => exec.register_atomic(),
        };
        // Only the token-holding thread executes model code, so this
        // store cannot race with another resolve on the same object.
        self.0.store((serial << 32) | id as u64, Relaxed);
        id
    }
}

// ---------------------------------------------------------------- Mutex

/// Dual-mode mutex with a `parking_lot`-shaped API: `lock()` returns
/// the guard directly (no poison `Result`).
///
/// The data lives in an `UnsafeCell`; exclusion comes from the OS
/// mutex outside a model and from model-level ownership (enforced by
/// the single-token scheduler) inside one. Keeping model-mode data
/// access off any OS lock matters for teardown: when an execution
/// aborts, unwinding destructors may touch a mutex whose model owner
/// is parked forever, and a real lock there would hang the process.
/// A single object must not be locked from model and non-model
/// threads concurrently (no workspace code does this).
pub struct Mutex<T: ?Sized> {
    model: ModelRef,
    os: std::sync::Mutex<()>,
    data: std::cell::UnsafeCell<T>,
}

// Mirror std: the lock makes T shareable iff T is Send.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// Held in non-model mode; `None` under a model (exclusion is
    /// model ownership) and for untracked teardown access.
    os: Option<std::sync::MutexGuard<'a, ()>>,
    model: Option<(StdArc<Execution>, Tid, usize)>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            model: ModelRef::new(),
            os: std::sync::Mutex::new(()),
            data: std::cell::UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn os_lock(&self) -> std::sync::MutexGuard<'_, ()> {
        self.os.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match ctx() {
            Some((exec, me)) => {
                let mid = self.model.resolve(&exec, RefKind::Mutex);
                if exec.mutex_lock(me, mid) {
                    MutexGuard {
                        lock: self,
                        os: None,
                        model: Some((exec, me, mid)),
                    }
                } else {
                    // Unwinding teardown of an aborted execution:
                    // best-effort untracked access so destructors can
                    // finish; the execution's results are discarded.
                    MutexGuard {
                        lock: self,
                        os: None,
                        model: None,
                    }
                }
            }
            None => MutexGuard {
                lock: self,
                os: Some(self.os_lock()),
                model: None,
            },
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match ctx() {
            Some((exec, me)) => {
                let mid = self.model.resolve(&exec, RefKind::Mutex);
                if !exec.mutex_try_lock(me, mid) {
                    return None;
                }
                Some(MutexGuard {
                    lock: self,
                    os: None,
                    model: Some((exec, me, mid)),
                })
            }
            None => match self.os.try_lock() {
                Ok(g) => Some(MutexGuard {
                    lock: self,
                    os: Some(g),
                    model: None,
                }),
                Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                    lock: self,
                    os: Some(e.into_inner()),
                    model: None,
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
            },
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Non-model peek only: Debug must not become a model decision
        // point, and (like std) prints `<locked>` under contention.
        match self.os.try_lock() {
            Ok(_g) => {
                let data = unsafe { &*self.data.get() };
                f.debug_struct("Mutex").field("data", &data).finish()
            }
            _ => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // Safety: exclusion is the held OS guard (non-model), model
        // ownership (single-token scheduler), or — with both `None` —
        // abort teardown, where no other thread executes model code.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // Safety: as for Deref.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.os.take());
        if let Some((exec, me, mid)) = self.model.take() {
            exec.mutex_unlock(me, mid);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// -------------------------------------------------------------- Condvar

/// Result of a [`Condvar::wait_timeout`] (std's equivalent cannot be
/// constructed outside std, hence our own).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Dual-mode condition variable. The API takes and returns the shim
/// [`MutexGuard`] so that a model-side wait can atomically release
/// the model mutex and enqueue (std semantics), which is what makes
/// notify-outside-the-lock lost wakeups explorable.
pub struct Condvar {
    model: ModelRef,
    std: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            model: ModelRef::new(),
            std: std::sync::Condvar::new(),
        }
    }

    fn wait_inner<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Option<Duration>,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        if std::thread::panicking() {
            // Waiting inside an unwinding destructor would park a
            // dying thread; report a timeout and let teardown proceed.
            return (guard, WaitTimeoutResult { timed_out: true });
        }
        match guard.model.take() {
            Some((exec, me, mid)) => {
                let cid = self.model.resolve(&exec, RefKind::Condvar);
                let lock = guard.lock;
                // Nothing else to release: under a model the guard
                // holds no OS lock, and the model-level atomic
                // unlock-and-enqueue inside `condvar_wait` is the
                // whole handoff.
                drop(guard);
                let wake = exec.condvar_wait(me, cid, mid, timeout);
                let reacquired = exec.mutex_lock_after_wait(me, mid);
                (
                    MutexGuard {
                        lock,
                        os: None,
                        model: reacquired.then_some((exec, me, mid)),
                    },
                    WaitTimeoutResult {
                        timed_out: wake == Wake::Timeout,
                    },
                )
            }
            None => {
                let lock = guard.lock;
                let os = guard.os.take().expect("guard accessed after release");
                drop(guard);
                match timeout {
                    None => {
                        let os = self.std.wait(os).unwrap_or_else(|e| e.into_inner());
                        (
                            MutexGuard {
                                lock,
                                os: Some(os),
                                model: None,
                            },
                            WaitTimeoutResult { timed_out: false },
                        )
                    }
                    Some(dur) => {
                        let (os, res) = self
                            .std
                            .wait_timeout(os, dur)
                            .unwrap_or_else(|e| e.into_inner());
                        (
                            MutexGuard {
                                lock,
                                os: Some(os),
                                model: None,
                            },
                            WaitTimeoutResult {
                                timed_out: res.timed_out(),
                            },
                        )
                    }
                }
            }
        }
    }

    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait_inner(guard, None).0
    }

    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        self.wait_inner(guard, Some(dur))
    }

    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> MutexGuard<'a, T>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self.wait(guard);
        }
        guard
    }

    pub fn notify_one(&self) {
        match ctx() {
            Some((exec, me)) => {
                let cid = self.model.resolve(&exec, RefKind::Condvar);
                exec.condvar_notify(me, cid, false);
            }
            None => self.std.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match ctx() {
            Some((exec, me)) => {
                let cid = self.model.resolve(&exec, RefKind::Condvar);
                exec.condvar_notify(me, cid, true);
            }
            None => self.std.notify_all(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// -------------------------------------------------------------- atomics

pub mod atomic {
    use super::{ctx, ModelRef, RefKind};
    use crate::race::AccessKind;
    use std::panic::Location;
    pub use std::sync::atomic::Ordering;

    macro_rules! shim_atomic_int {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Dual-mode atomic; every access is a model decision
            /// point. The model executes atomic *values* sequentially
            /// consistently whatever `Ordering` is passed, but records
            /// the ordering, access kind, and caller location per
            /// access for the happens-before race detector.
            pub struct $name {
                model: ModelRef,
                inner: $std,
            }

            impl $name {
                pub const fn new(v: $prim) -> Self {
                    Self {
                        model: ModelRef::new(),
                        inner: <$std>::new(v),
                    }
                }

                #[inline]
                #[track_caller]
                fn op(&self, kind: AccessKind, order: Ordering) {
                    if let Some((exec, me)) = ctx() {
                        let obj = self.model.resolve(&exec, RefKind::Atomic);
                        exec.op_atomic(me, obj, kind, order, Location::caller());
                    }
                }

                #[track_caller]
                pub fn load(&self, order: Ordering) -> $prim {
                    self.op(AccessKind::Load, order);
                    self.inner.load(order)
                }

                #[track_caller]
                pub fn store(&self, val: $prim, order: Ordering) {
                    self.op(AccessKind::Store, order);
                    self.inner.store(val, order)
                }

                #[track_caller]
                pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                    self.op(AccessKind::Rmw, order);
                    self.inner.swap(val, order)
                }

                #[track_caller]
                pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    self.op(AccessKind::Rmw, order);
                    self.inner.fetch_add(val, order)
                }

                #[track_caller]
                pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                    self.op(AccessKind::Rmw, order);
                    self.inner.fetch_sub(val, order)
                }

                #[track_caller]
                pub fn fetch_and(&self, val: $prim, order: Ordering) -> $prim {
                    self.op(AccessKind::Rmw, order);
                    self.inner.fetch_and(val, order)
                }

                #[track_caller]
                pub fn fetch_or(&self, val: $prim, order: Ordering) -> $prim {
                    self.op(AccessKind::Rmw, order);
                    self.inner.fetch_or(val, order)
                }

                #[track_caller]
                pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                    self.op(AccessKind::Rmw, order);
                    self.inner.fetch_max(val, order)
                }

                #[track_caller]
                pub fn fetch_min(&self, val: $prim, order: Ordering) -> $prim {
                    self.op(AccessKind::Rmw, order);
                    self.inner.fetch_min(val, order)
                }

                /// Recorded as an RMW with the *success* ordering — a
                /// conservative simplification (a failed CAS is really
                /// a load with the failure ordering, but the model
                /// cannot know the outcome before the decision point,
                /// and treating it as the stronger op only suppresses
                /// false race reports, never creates them).
                #[track_caller]
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.op(AccessKind::Rmw, success);
                    self.inner.compare_exchange(current, new, success, failure)
                }

                #[track_caller]
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.op(AccessKind::Rmw, success);
                    // Weak CAS never fails spuriously under the model:
                    // spurious failure is scheduling nondeterminism the
                    // explorer does not control.
                    self.inner.compare_exchange(current, new, success, failure)
                }

                pub fn into_inner(self) -> $prim {
                    self.inner.into_inner()
                }

                pub fn get_mut(&mut self) -> &mut $prim {
                    self.inner.get_mut()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(<$prim>::default())
                }
            }

            impl From<$prim> for $name {
                fn from(v: $prim) -> Self {
                    Self::new(v)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    std::fmt::Debug::fmt(&self.inner, f)
                }
            }
        };
    }

    shim_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    shim_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    shim_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    shim_atomic_int!(AtomicI64, std::sync::atomic::AtomicI64, i64);

    /// Dual-mode `AtomicBool`; see the integer shims for semantics.
    pub struct AtomicBool {
        model: ModelRef,
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub const fn new(v: bool) -> Self {
            Self {
                model: ModelRef::new(),
                inner: std::sync::atomic::AtomicBool::new(v),
            }
        }

        #[inline]
        #[track_caller]
        fn op(&self, kind: AccessKind, order: Ordering) {
            if let Some((exec, me)) = ctx() {
                let obj = self.model.resolve(&exec, RefKind::Atomic);
                exec.op_atomic(me, obj, kind, order, Location::caller());
            }
        }

        #[track_caller]
        pub fn load(&self, order: Ordering) -> bool {
            self.op(AccessKind::Load, order);
            self.inner.load(order)
        }

        #[track_caller]
        pub fn store(&self, val: bool, order: Ordering) {
            self.op(AccessKind::Store, order);
            self.inner.store(val, order)
        }

        #[track_caller]
        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            self.op(AccessKind::Rmw, order);
            self.inner.swap(val, order)
        }

        #[track_caller]
        pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
            self.op(AccessKind::Rmw, order);
            self.inner.fetch_or(val, order)
        }

        #[track_caller]
        pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
            self.op(AccessKind::Rmw, order);
            self.inner.fetch_and(val, order)
        }

        /// See the integer shims: recorded as an RMW with the success
        /// ordering.
        #[track_caller]
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.op(AccessKind::Rmw, success);
            self.inner.compare_exchange(current, new, success, failure)
        }

        pub fn into_inner(self) -> bool {
            self.inner.into_inner()
        }

        pub fn get_mut(&mut self) -> &mut bool {
            self.inner.get_mut()
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl From<bool> for AtomicBool {
        fn from(v: bool) -> Self {
            Self::new(v)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&self.inner, f)
        }
    }
}

// --------------------------------------------------------------- thread

pub mod thread {
    use super::{ctx, rt};
    use std::sync::Arc as StdArc;
    use std::time::Duration;

    /// Dual-mode join handle.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        model: Option<(StdArc<rt::Execution>, rt::Tid)>,
    }

    impl<T> JoinHandle<T> {
        /// Joins the thread. Inside a model this is a visible
        /// (blocking) operation; the scheduler explores schedules in
        /// which other threads run to completion first.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some((exec, target)) = &self.model {
                if let Some((jexec, me)) = ctx() {
                    debug_assert_eq!(jexec.serial, exec.serial, "join across executions");
                    if !exec.join(me, *target) {
                        // Unwinding teardown: the target may be parked
                        // forever in an aborted execution; never block
                        // a dying thread on it.
                        return Err(Box::new(
                            "model execution aborted; join skipped during unwind".to_string(),
                        ));
                    }
                }
            }
            self.inner.join()
        }

        pub fn is_finished(&self) -> bool {
            match &self.model {
                Some((exec, target)) => exec.is_finished(*target),
                None => self.inner.is_finished(),
            }
        }

        pub fn thread(&self) -> &std::thread::Thread {
            self.inner.thread()
        }
    }

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("JoinHandle").finish_non_exhaustive()
        }
    }

    /// Dual-mode `thread::spawn`. Inside a model the new thread is
    /// registered with the execution and runs under the scheduler
    /// token; outside it is a plain OS thread.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match ctx() {
            // Spawning from an unwinding destructor falls through to a
            // plain OS thread (no ctx inheritance): the execution is
            // being torn down and must not gain new model threads.
            Some((exec, me)) if !std::thread::panicking() => {
                let (tid, inner) = rt::model_spawn(&exec, me, f);
                JoinHandle {
                    inner,
                    model: Some((exec, tid)),
                }
            }
            _ => JoinHandle {
                inner: std::thread::spawn(f),
                model: None,
            },
        }
    }

    /// A pure scheduling decision point inside a model; a real
    /// `yield_now` outside. Touches no shared object, so it is
    /// independent of everything for partial-order reduction.
    pub fn yield_now() {
        match ctx() {
            Some((exec, me)) => exec.op_yield(me),
            None => std::thread::yield_now(),
        }
    }

    /// Advances the execution's logical clock inside a model (no real
    /// delay); sleeps for real outside.
    pub fn sleep(dur: Duration) {
        match ctx() {
            Some((exec, me)) => exec.op_sleep(me, dur),
            None => std::thread::sleep(dur),
        }
    }
}

// ----------------------------------------------------------------- time

pub mod time {
    use super::ctx;
    use std::cmp::Ordering as CmpOrdering;
    use std::ops::{Add, AddAssign};

    pub use std::time::Duration;

    /// Dual-mode instant: wall-clock outside a model, the execution's
    /// logical microsecond clock inside. Reading the clock is *not* a
    /// scheduling decision point — only timed waits advance it.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Instant {
        Real(std::time::Instant),
        Virtual(u64),
    }

    impl Instant {
        pub fn now() -> Instant {
            match ctx() {
                Some((exec, _)) => Instant::Virtual(exec.clock_us()),
                None => Instant::Real(std::time::Instant::now()),
            }
        }

        pub fn elapsed(&self) -> Duration {
            Instant::now().saturating_duration_since(*self)
        }

        pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
            match (*self, earlier) {
                (Instant::Real(a), Instant::Real(b)) => a.saturating_duration_since(b),
                (Instant::Virtual(a), Instant::Virtual(b)) => {
                    Duration::from_micros(a.saturating_sub(b))
                }
                _ => panic!("compared a real Instant with a virtual one"),
            }
        }

        pub fn checked_duration_since(&self, earlier: Instant) -> Option<Duration> {
            match (*self, earlier) {
                (Instant::Real(a), Instant::Real(b)) => a.checked_duration_since(b),
                (Instant::Virtual(a), Instant::Virtual(b)) => {
                    a.checked_sub(b).map(Duration::from_micros)
                }
                _ => panic!("compared a real Instant with a virtual one"),
            }
        }
    }

    impl Add<Duration> for Instant {
        type Output = Instant;
        fn add(self, rhs: Duration) -> Instant {
            match self {
                Instant::Real(i) => Instant::Real(i + rhs),
                Instant::Virtual(us) => Instant::Virtual(
                    us.saturating_add(u64::try_from(rhs.as_micros()).unwrap_or(u64::MAX)),
                ),
            }
        }
    }

    impl AddAssign<Duration> for Instant {
        fn add_assign(&mut self, rhs: Duration) {
            *self = *self + rhs;
        }
    }

    impl PartialOrd for Instant {
        fn partial_cmp(&self, other: &Instant) -> Option<CmpOrdering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for Instant {
        fn cmp(&self, other: &Instant) -> CmpOrdering {
            match (self, other) {
                (Instant::Real(a), Instant::Real(b)) => a.cmp(b),
                (Instant::Virtual(a), Instant::Virtual(b)) => a.cmp(b),
                _ => panic!("compared a real Instant with a virtual one"),
            }
        }
    }
}
