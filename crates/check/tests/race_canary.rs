//! Satellite: the race-detector canary. A deliberately unsynchronized
//! Relaxed counter handoff (styled after the kept PR-1 lost-wakeup
//! model) must be reported as a data race naming *both* access sites,
//! in perpetuity — if this test starts passing the detector has gone
//! blind. The synchronized twin of the same model must pass, and the
//! post-join Relaxed read (the workspace's "stat, read after join"
//! pattern) must never be flagged.

use qtag_check::{models, Builder, FailureKind};

#[test]
fn unsynchronized_relaxed_handoff_is_reported_as_a_race() {
    let failure = Builder::default()
        .try_check(models::relaxed_counter_handoff(false))
        .expect_err("the unsynchronized handoff must race");
    assert_eq!(failure.kind, FailureKind::Race);
    // Both the worker's fetch_add and the spawner's glimpse load live
    // in models.rs; the report must name each so the pair can be
    // found directly.
    assert_eq!(
        failure
            .message
            .matches("crates/check/src/models.rs")
            .count(),
        2,
        "both access sites must be named: {}",
        failure.message
    );
    assert!(
        failure.message.contains("rmw(Relaxed)"),
        "{}",
        failure.message
    );
    assert!(
        failure.message.contains("load(Relaxed)"),
        "{}",
        failure.message
    );
}

#[test]
fn the_racy_schedule_replays_from_its_trace() {
    let b = Builder::default();
    let failure = b
        .try_check(models::relaxed_counter_handoff(false))
        .expect_err("must race");
    let replayed = b
        .replay(&failure.trace, models::relaxed_counter_handoff(false))
        .expect_err("replay must reproduce the race");
    assert_eq!(replayed.kind, FailureKind::Race);
    assert_eq!(replayed.message, failure.message);
}

#[test]
fn synchronized_handoff_passes_every_schedule() {
    // Same interleavings, but the increment is AcqRel and the glimpse
    // Acquire: synchronization traffic, never a race. The post-join
    // Relaxed load is ordered by the join edge in both variants.
    let report = Builder::default().check(models::relaxed_counter_handoff(true));
    assert!(report.complete);
    assert_eq!(report.races, 0, "nothing to tolerate: all pairs ordered");
    assert!(
        report.hb_edges > 0,
        "the Acquire glimpse must learn an edge"
    );
}

#[test]
fn allowlisted_race_is_tolerated_and_counted() {
    let report = Builder::default()
        .allow_race("crates/check/src/models.rs")
        .check(models::relaxed_counter_handoff(false));
    assert!(report.complete);
    assert!(
        report.races > 0,
        "the tolerated racy pair must be surfaced in the report"
    );
}

#[test]
fn disabling_the_detector_reverts_to_plain_exploration() {
    let report = Builder {
        race_detector: false,
        ..Builder::default()
    }
    .check(models::relaxed_counter_handoff(false));
    assert!(report.complete);
    assert!(report.races > 0, "observed but not failed");
}
