//! Satellite: soundness guards for the sleep-set reduction.
//!
//! 1. **Equivalence property** (proptest over seeds × model
//!    parameters): reduced and unreduced exploration must agree on the
//!    verdict — both pass, or both fail with the same failure kind
//!    (deadlock stays deadlock, race stays race). Sleep sets only drop
//!    interleavings that permute independent operations, so no failure
//!    class can become unreachable; the reduced run may visit fewer
//!    schedules, never more.
//!
//! 2. **Budget regression**: pruned (sleep-set-redundant) and aborted
//!    executions must not burn `max_schedules` budget — a tree whose
//!    completed-schedule count equals the cap still reports
//!    `complete: true` even though pruned executions also ran.

use proptest::prelude::*;
use qtag_check::{models, Builder};

/// Large enough that every model here exhausts its tree even without
/// reduction — the comparison is meaningless against a capped run.
const EXHAUSTIVE: u64 = 1_000_000;

fn reduced(seed: u64) -> Builder {
    Builder {
        seed,
        dpor: true,
        max_schedules: EXHAUSTIVE,
        ..Builder::default()
    }
}

fn unreduced(seed: u64) -> Builder {
    Builder {
        seed,
        dpor: false,
        max_schedules: EXHAUSTIVE,
        ..Builder::default()
    }
}

/// Runs the model under both modes and asserts verdict equivalence.
fn assert_equivalent<F, G>(seed: u64, make: G)
where
    G: Fn() -> F,
    F: Fn() + Send + Sync + 'static,
{
    let r = reduced(seed).try_check(make());
    let u = unreduced(seed).try_check(make());
    match (&r, &u) {
        (Ok(rr), Ok(ur)) => {
            assert!(
                rr.schedules <= ur.schedules,
                "reduction must never explore more: {} > {}",
                rr.schedules,
                ur.schedules
            );
            assert_eq!(rr.complete, ur.complete);
        }
        (Err(rf), Err(uf)) => {
            assert_eq!(
                rf.kind, uf.kind,
                "both modes must find the same failure class"
            );
        }
        (Ok(_), Err(uf)) => panic!(
            "UNSOUND: unreduced DFS found a {} the reduced exploration missed",
            uf.kind
        ),
        (Err(rf), Ok(_)) => panic!(
            "reduction invented a failure the full tree does not contain: {}",
            rf.kind
        ),
    }
}

proptest! {
    // Each case explores two full decision trees; keep the model
    // parameters small and the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn passing_models_agree(seed in any::<u64>(), threads in 2usize..=3) {
        assert_equivalent(seed, || models::mutex_counter(threads, 1));
        assert_equivalent(seed, || models::independent_counters(threads));
        assert_equivalent(seed, models::condvar_handoff);
    }

    #[test]
    fn failing_models_agree(seed in any::<u64>()) {
        assert_equivalent(seed, models::abba_deadlock);
        assert_equivalent(seed, || models::mini_channel_last_sender_drop(false));
        assert_equivalent(seed, || models::relaxed_counter_handoff(false));
    }
}

#[test]
fn reduction_prunes_independent_interleavings_at_least_5x() {
    // The headline claim on a model made of commuting operations:
    // schedule count drops by at least 5× with identical verdicts.
    let r = reduced(0x51AD_C0DE).check(models::independent_counters(3));
    let u = unreduced(0x51AD_C0DE).check(models::independent_counters(3));
    assert!(r.complete && u.complete);
    assert!(
        r.schedules * 5 <= u.schedules,
        "expected ≥5× reduction, got {} vs {}",
        r.schedules,
        u.schedules
    );
    assert!(r.pruned > 0, "the reduction must actually have pruned");
}

#[test]
fn pruned_runs_do_not_burn_schedule_budget() {
    // Establish how many completed schedules the reduced tree has,
    // then re-run with the budget set exactly there: the pruned
    // executions interleaved through the DFS must not push the run
    // over budget, so exploration still completes.
    let full = reduced(7).check(models::independent_counters(3));
    assert!(full.complete && full.pruned > 0);
    let tight = Builder {
        max_schedules: full.schedules,
        ..reduced(7)
    }
    .check(models::independent_counters(3));
    assert!(
        tight.complete,
        "{} pruned executions burned schedule budget",
        tight.pruned
    );
    assert_eq!(tight.schedules, full.schedules);
    assert_eq!(tight.pruned, full.pruned);
}
