//! Satellite: scheduler determinism. Same seed + same model must give
//! a byte-identical exploration (digest over every schedule's decision
//! vector), and a failing model must replay to the same interleaving
//! from its printed trace token.

use qtag_check::{models, Builder, FailureKind, TraceToken};

#[test]
fn same_seed_same_model_identical_exploration() {
    let b = Builder {
        seed: 0xDEC0DE,
        preemption_bound: Some(2),
        max_schedules: 2_048,
        ..Builder::default()
    };
    let a = b.check(models::mpsc_conservation(2, 1));
    let c = b.check(models::mpsc_conservation(2, 1));
    assert_eq!(a.schedules, c.schedules);
    assert_eq!(a.steps, c.steps);
    assert_eq!(a.digest, c.digest, "exploration must be byte-identical");
}

#[test]
fn different_seeds_still_exhaust_the_same_tree() {
    let unreduced = |seed| Builder {
        seed,
        dpor: false,
        ..Builder::default()
    };
    let a = unreduced(1).check(models::mutex_counter(2, 1));
    let b = unreduced(2).check(models::mutex_counter(2, 1));
    // Rotation permutes visit order (digests may differ) but the raw
    // DFS still covers the same complete tree.
    assert!(a.complete && b.complete);
    assert_eq!(a.schedules, b.schedules);

    // Under sleep-set reduction the *number* of representatives kept
    // per equivalence class depends on visit order, so counts may
    // differ by seed — but exploration still terminates complete and
    // never explores more than the full tree.
    let ra = Builder {
        seed: 1,
        ..Builder::default()
    }
    .check(models::mutex_counter(2, 1));
    let rb = Builder {
        seed: 2,
        ..Builder::default()
    }
    .check(models::mutex_counter(2, 1));
    assert!(ra.complete && rb.complete);
    assert!(ra.schedules <= a.schedules);
    assert!(rb.schedules <= b.schedules);
}

#[test]
fn failing_model_replays_from_its_printed_token() {
    let b = Builder {
        seed: 0xB0B,
        ..Builder::default()
    };
    let failure = b
        .try_check(models::mini_channel_last_sender_drop(false))
        .expect_err("the PR-1 bug must fail");
    assert_eq!(failure.kind, FailureKind::Deadlock);

    // Parse the token back from its *printed* form, as a developer
    // pasting it out of a CI log would.
    let printed = failure.trace.to_string();
    let token: TraceToken = printed.parse().expect("token must round-trip");
    assert_eq!(token, failure.trace);

    // Replaying runs exactly one schedule and reproduces the same
    // failure kind on the same interleaving.
    let replayed = b
        .replay(&token, models::mini_channel_last_sender_drop(false))
        .expect_err("replay must reproduce the failure");
    assert_eq!(replayed.kind, failure.kind);
    assert_eq!(replayed.schedule, 1, "replay runs a single schedule");
    assert_eq!(
        replayed.trace, failure.trace,
        "replay must follow the identical interleaving"
    );
}

#[test]
fn replaying_a_passing_schedule_passes() {
    let b = Builder::default();
    let token = TraceToken {
        seed: b.seed,
        choices: vec![],
    };
    // An empty prefix replays the first DFS schedule; a correct model
    // passes on it.
    let report = b
        .replay(&token, models::mini_channel_last_sender_drop(true))
        .expect("first schedule of the fixed model must pass");
    assert_eq!(report.schedules, 1);
}

#[test]
fn failure_display_carries_the_trace() {
    let failure = Builder::default()
        .try_check(models::abba_deadlock())
        .expect_err("must deadlock");
    let msg = failure.to_string();
    assert!(msg.contains("replay trace: qtc1:"), "display: {msg}");
}
