//! Core scheduler semantics: mutual exclusion, SC atomics, condvar
//! handoff, deadlock detection, timed waits. These run in plain
//! builds (the shims are runtime-switched), so tier-1 `cargo test`
//! exercises the model checker itself.

use qtag_check::sync::atomic::{AtomicU64, Ordering};
use qtag_check::sync::{thread, Arc, Mutex};
use qtag_check::{models, Builder, FailureKind};

#[test]
fn mutex_counter_is_exact_in_every_schedule() {
    let report = Builder::default().check(models::mutex_counter(2, 1));
    assert!(report.complete, "small model should exhaust its tree");
    assert!(report.schedules > 1, "must explore more than one schedule");
}

#[test]
fn store_buffer_never_sees_both_zeros_under_sc() {
    let report = Builder::default().check(models::store_buffer_sc());
    assert!(report.complete);
    // The three SC-reachable outcomes must all be visited.
    let seen = Arc::new(std::sync::Mutex::new(std::collections::BTreeSet::new()));
    let sink = Arc::clone(&seen);
    Builder::default().check(move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let t1 = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            thread::spawn(move || {
                x.store(1, Ordering::SeqCst);
                y.load(Ordering::SeqCst)
            })
        };
        let t2 = {
            let (x, y) = (Arc::clone(&x), Arc::clone(&y));
            thread::spawn(move || {
                y.store(1, Ordering::SeqCst);
                x.load(Ordering::SeqCst)
            })
        };
        let r1 = t1.join().unwrap();
        let r2 = t2.join().unwrap();
        // Collection state is plain std (invisible to the scheduler):
        // it accumulates across executions on purpose.
        sink.lock().unwrap().insert((r1, r2));
    });
    let seen = seen.lock().unwrap();
    assert!(seen.contains(&(1, 1)), "outcomes seen: {seen:?}");
    assert!(seen.contains(&(0, 1)), "outcomes seen: {seen:?}");
    assert!(seen.contains(&(1, 0)), "outcomes seen: {seen:?}");
    assert!(!seen.contains(&(0, 0)), "SC must forbid (0,0): {seen:?}");
}

#[test]
fn condvar_handoff_never_loses_the_wakeup() {
    let report = Builder::default().check(models::condvar_handoff());
    assert!(report.complete);
}

#[test]
fn abba_deadlock_is_detected() {
    let failure = Builder::default()
        .try_check(models::abba_deadlock())
        .expect_err("AB-BA lock inversion must deadlock in some schedule");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("deadlock"),
        "message: {}",
        failure.message
    );
}

#[test]
fn assertion_failures_are_reported_with_a_trace() {
    let failure = Builder::default()
        .try_check(|| {
            let v = Arc::new(Mutex::new(0u64));
            let w = Arc::clone(&v);
            let t = thread::spawn(move || *w.lock() += 1);
            // Racy read: in the schedule where the spawned thread has
            // not yet run, the assertion below fails.
            let observed = *v.lock();
            t.join().unwrap();
            assert_eq!(observed, 1, "observed the pre-increment value");
        })
        .expect_err("some schedule must observe 0");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("pre-increment"));
    assert!(!failure.trace.to_string().is_empty());
}

#[test]
fn timed_wait_fires_when_nothing_notifies() {
    let report = Builder::default().check(models::recv_timeout_fires());
    assert!(report.complete);
}

#[test]
fn livelock_hits_the_step_budget() {
    let b = Builder {
        max_steps: 200,
        ..Builder::default()
    };
    let failure = b
        .try_check(|| {
            let stop = Arc::new(AtomicU64::new(0));
            // Spin that no schedule ever satisfies.
            while stop.load(Ordering::SeqCst) == 0 {
                thread::yield_now();
            }
        })
        .expect_err("unbounded spin must exhaust the step budget");
    assert_eq!(failure.kind, FailureKind::StepBudget);
}

#[test]
fn preemption_bound_caps_exploration() {
    let unbounded = Builder::default().check(models::mutex_counter(2, 1));
    let bounded = Builder::bounded(1).check(models::mutex_counter(2, 1));
    assert!(
        bounded.schedules < unbounded.schedules,
        "preemption bound must shrink the tree ({} vs {})",
        bounded.schedules,
        unbounded.schedules
    );
}

#[test]
fn conservation_holds_across_all_schedules() {
    // Full DFS on this 3-thread model runs to millions of schedules;
    // bound preemptions CHESS-style for a tractable sound-for-races
    // slice of the tree.
    let report = Builder::bounded(2).check(models::mpsc_conservation(2, 1));
    assert!(report.schedules > 10, "schedules: {}", report.schedules);
}
