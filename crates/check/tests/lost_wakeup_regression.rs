//! The PR-1 lost-wakeup race as a must-fail/must-pass model pair.
//!
//! PR 1's review found (by eyeball) that the vendored crossbeam
//! channel's `Sender`/`Receiver` `Drop` notified the condvar *without*
//! holding the queue mutex, so the notification could land between a
//! receiver's "senders != 0" check and its enqueue on the condvar —
//! a lost wakeup that could hang `Collector::shutdown` forever.
//!
//! `models::mini_channel_last_sender_drop(false)` replicates the buggy
//! drop path; the model checker must find the deadlocking interleaving
//! deterministically. With `true` (the shipped fix: notify under the
//! queue lock) every schedule must terminate. The same scenario also
//! runs against the *real* vendored channel in
//! `vendor/crossbeam/tests/check_models.rs` under `--cfg qtag_check`.

use qtag_check::{models, Builder, FailureKind};

#[test]
fn buggy_drop_path_deadlocks_under_some_schedule() {
    let failure = Builder::default()
        .try_check(models::mini_channel_last_sender_drop(false))
        .expect_err("notify outside the queue lock must lose a wakeup");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    assert!(
        failure.message.contains("BlockedCondvar"),
        "the stuck thread should be parked on the condvar: {}",
        failure.message
    );
}

#[test]
fn fixed_drop_path_terminates_in_every_schedule() {
    let report = Builder::default().check(models::mini_channel_last_sender_drop(true));
    assert!(
        report.complete,
        "the fixed model must exhaust its schedule tree under the default budget"
    );
    assert!(report.schedules > 1);
}

#[test]
fn buggy_failure_is_reproducible_across_runs() {
    let b = Builder::default();
    let f1 = b
        .try_check(models::mini_channel_last_sender_drop(false))
        .expect_err("run 1");
    let f2 = b
        .try_check(models::mini_channel_last_sender_drop(false))
        .expect_err("run 2");
    assert_eq!(
        f1.trace, f2.trace,
        "same seed must find the same failing interleaving"
    );
    assert_eq!(f1.schedule, f2.schedule);
}
