//! The device/environment population.
//!
//! Stand-in for the paper's production traffic mix. The four
//! (site type × OS) slices of Table 2 differ in two structural ways:
//!
//! * how often the serving environment breaks *any* tag (user bounces
//!   before a measurement window completes, or the tag script fetch
//!   fails) — this bounds **Q-Tag's** measured rate;
//! * how often the environment is *verifier-hostile* (sandboxed webview
//!   SDK loading on apps; no native viewability API on old browsers) —
//!   this additionally suppresses the **commercial** measured rate,
//!   most strongly in Android apps.
//!
//! The per-slice constants below are calibrated against Table 2 of the
//! paper so that the *mechanistic* simulation reproduces its marginals;
//! each constant's doc comment derives it. Everything downstream
//! (Figure 3, Table 2, §6.1) is measured from simulation output, not
//! copied.

use qtag_render::{ApiCapabilities, CpuLoadModel, DeviceProfile, EngineConfig, RenderMode};
use qtag_wire::{OsKind, SiteType};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Traffic-mix and failure parameters for one (site type, OS) slice.
#[derive(Debug, Clone, Copy)]
pub struct SliceParams {
    /// Slice the parameters describe.
    pub site_type: SiteType,
    /// Device OS.
    pub os: OsKind,
    /// Share of total traffic (the four shares sum to 1).
    pub share: f64,
    /// Probability the user abandons the page before any measurement
    /// window completes (< 100 ms session). Derived from Table 2's
    /// Q-Tag column: `bounce ≈ 1 − qtag_rate / ((1−fetch_fail)(1−loss))`.
    pub bounce_rate: f64,
    /// Probability a tag's script fetch fails (CDN hiccup, race with
    /// unload); independent per tag. Industry-typical ~1.5 %.
    pub tag_fetch_fail: f64,
    /// Probability the environment is verifier-hostile: on `App`, the
    /// webview sandboxes third-party SDK loading; on `Browser`, the
    /// browser is too old to expose a native viewability API (and the
    /// serving path is cross-origin, so geometry walks fail too).
    /// Derived from Table 2: `legacy ≈ 1 − commercial_rate / qtag_rate`.
    pub legacy_env_rate: f64,
    /// Per-beacon transport loss on this slice's networks.
    pub beacon_loss: f64,
}

/// Configuration of the whole population.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// The four mobile slices.
    pub slices: Vec<SliceParams>,
    /// Mean CPU load across devices (paint-rate degradation).
    pub mean_cpu_load: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            slices: vec![
                // App / Android — Table 2 row 1: Q-Tag 90.6 %, commercial
                // 53.4 %. bounce = 1 − 0.906/0.975 ≈ 0.071;
                // legacy = 1 − 0.534/0.906 ≈ 0.411 (2019 Android webview
                // fragmentation).
                SliceParams {
                    site_type: SiteType::App,
                    os: OsKind::Android,
                    share: 0.35,
                    bounce_rate: 0.071,
                    tag_fetch_fail: 0.015,
                    legacy_env_rate: 0.411,
                    beacon_loss: 0.010,
                },
                // App / iOS — Q-Tag 97.0 %, commercial 83.8 %.
                // bounce = 1 − 0.970/0.975 ≈ 0.005; legacy ≈ 0.136.
                SliceParams {
                    site_type: SiteType::App,
                    os: OsKind::Ios,
                    share: 0.15,
                    bounce_rate: 0.005,
                    tag_fetch_fail: 0.015,
                    legacy_env_rate: 0.136,
                    beacon_loss: 0.010,
                },
                // Browser / Android — Q-Tag 94.4 %, commercial 86.7 %.
                // bounce ≈ 0.032; legacy ≈ 0.082.
                SliceParams {
                    site_type: SiteType::Browser,
                    os: OsKind::Android,
                    share: 0.30,
                    bounce_rate: 0.032,
                    tag_fetch_fail: 0.015,
                    legacy_env_rate: 0.082,
                    beacon_loss: 0.010,
                },
                // Browser / iOS — Q-Tag 94.6 %, commercial 91.1 %.
                // bounce ≈ 0.030; legacy ≈ 0.037.
                SliceParams {
                    site_type: SiteType::Browser,
                    os: OsKind::Ios,
                    share: 0.20,
                    bounce_rate: 0.030,
                    tag_fetch_fail: 0.015,
                    legacy_env_rate: 0.037,
                    beacon_loss: 0.010,
                },
            ],
            mean_cpu_load: 0.15,
        }
    }
}

/// One sampled serving environment.
#[derive(Debug, Clone)]
pub struct EnvSample {
    /// Placement type.
    pub site_type: SiteType,
    /// Device OS.
    pub os: OsKind,
    /// The session abandons before any measurement completes.
    pub bounce: bool,
    /// Q-Tag's script fetch failed.
    pub qtag_fetch_fail: bool,
    /// The verifier's script fetch failed.
    pub verifier_fetch_fail: bool,
    /// Environment is verifier-hostile (see [`SliceParams`]).
    pub legacy_env: bool,
    /// Per-beacon loss on this session's network.
    pub beacon_loss: f64,
    /// Device CPU load during the session.
    pub cpu_load: f64,
}

impl EnvSample {
    /// The render-engine device profile for this environment.
    pub fn device_profile(&self) -> DeviceProfile {
        let mut p = match self.site_type {
            SiteType::App => DeviceProfile::in_app_webview(self.os, !self.legacy_env),
            SiteType::Browser => DeviceProfile::mobile_browser(self.os),
        };
        if self.site_type == SiteType::Browser && self.legacy_env {
            // Old mobile browser: verifier SDK loads but has no native
            // viewability API (and the serving path is cross-origin).
            p.caps = ApiCapabilities {
                native_viewability_api: false,
                animation_frames: true,
                verifier_sdk_loads: true,
            };
        }
        p
    }

    /// Engine configuration for this environment.
    pub fn engine_config(&self, seed: u64) -> EngineConfig {
        EngineConfig {
            profile: self.device_profile(),
            cpu: CpuLoadModel::Constant(self.cpu_load),
            seed,
            mode: RenderMode::Indexed,
        }
    }
}

/// Samples serving environments from the configured mix.
#[derive(Debug, Clone)]
pub struct Population {
    cfg: PopulationConfig,
}

impl Population {
    /// Builds a population.
    pub fn new(cfg: PopulationConfig) -> Self {
        let total: f64 = cfg.slices.iter().map(|s| s.share).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "slice shares must sum to 1, got {total}"
        );
        Population { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &PopulationConfig {
        &self.cfg
    }

    /// Draws one serving environment.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> EnvSample {
        let mut pick = rng.gen_range(0.0..1.0);
        let mut slice = &self.cfg.slices[self.cfg.slices.len() - 1];
        for s in &self.cfg.slices {
            if pick < s.share {
                slice = s;
                break;
            }
            pick -= s.share;
        }
        // CPU load: half the devices idle-ish, the rest spread around the
        // configured mean (clamped well below paint starvation).
        let cpu_load = if rng.gen_bool(0.5) {
            rng.gen_range(0.0..0.1)
        } else {
            (self.cfg.mean_cpu_load + rng.gen_range(-0.1..0.35f64)).clamp(0.0, 0.6)
        };
        EnvSample {
            site_type: slice.site_type,
            os: slice.os,
            bounce: rng.gen_bool(slice.bounce_rate),
            qtag_fetch_fail: rng.gen_bool(slice.tag_fetch_fail),
            verifier_fetch_fail: rng.gen_bool(slice.tag_fetch_fail),
            legacy_env: rng.gen_bool(slice.legacy_env_rate),
            beacon_loss: slice.beacon_loss,
            cpu_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_shares_sum_to_one() {
        let p = Population::new(PopulationConfig::default());
        let total: f64 = p.config().slices.iter().map(|s| s.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_respects_shares() {
        let p = Population::new(PopulationConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mut app_android = 0;
        for _ in 0..n {
            let e = p.sample(&mut rng);
            if e.site_type == SiteType::App && e.os == OsKind::Android {
                app_android += 1;
            }
        }
        let frac = app_android as f64 / n as f64;
        assert!((frac - 0.35).abs() < 0.02, "App/Android share {frac}");
    }

    #[test]
    fn android_apps_have_most_legacy_envs() {
        let p = Population::new(PopulationConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut counts: std::collections::HashMap<(SiteType, OsKind), (u64, u64)> =
            std::collections::HashMap::new();
        for _ in 0..40_000 {
            let e = p.sample(&mut rng);
            let entry = counts.entry((e.site_type, e.os)).or_default();
            entry.0 += 1;
            if e.legacy_env {
                entry.1 += 1;
            }
        }
        let rate = |st, os| {
            let (n, l) = counts[&(st, os)];
            l as f64 / n as f64
        };
        let aa = rate(SiteType::App, OsKind::Android);
        assert!((aa - 0.411).abs() < 0.03, "App/Android legacy rate {aa}");
        assert!(aa > rate(SiteType::App, OsKind::Ios));
        assert!(aa > rate(SiteType::Browser, OsKind::Android));
    }

    #[test]
    fn legacy_app_env_blocks_verifier_sdk_only() {
        let env = EnvSample {
            site_type: SiteType::App,
            os: OsKind::Android,
            bounce: false,
            qtag_fetch_fail: false,
            verifier_fetch_fail: false,
            legacy_env: true,
            beacon_loss: 0.0,
            cpu_load: 0.0,
        };
        let p = env.device_profile();
        assert!(!p.caps.verifier_sdk_loads);
        assert!(p.caps.animation_frames, "Q-Tag substrate survives");
    }

    #[test]
    fn legacy_browser_env_keeps_sdk_but_drops_native_api() {
        let env = EnvSample {
            site_type: SiteType::Browser,
            os: OsKind::Android,
            bounce: false,
            qtag_fetch_fail: false,
            verifier_fetch_fail: false,
            legacy_env: true,
            beacon_loss: 0.0,
            cpu_load: 0.0,
        };
        let p = env.device_profile();
        assert!(p.caps.verifier_sdk_loads);
        assert!(!p.caps.native_viewability_api);
    }

    #[test]
    #[should_panic(expected = "slice shares must sum to 1")]
    fn bad_shares_panic() {
        let mut cfg = PopulationConfig::default();
        cfg.slices[0].share = 0.9;
        Population::new(cfg);
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Population::new(PopulationConfig::default());
        let sample = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..10).map(|_| p.sample(&mut rng).os).collect::<Vec<_>>()
        };
        assert_eq!(sample(5), sample(5));
    }
}
