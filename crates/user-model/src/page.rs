//! Publisher-page geometry.

use qtag_geometry::{Rect, Size};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Where the ad slot sits relative to the first viewport.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotPlacement {
    /// Fully inside the first viewport ("above the fold").
    AboveFold,
    /// Reachable only by scrolling.
    BelowFold,
}

/// One concrete publisher page for a session.
#[derive(Debug, Clone)]
pub struct PageModel {
    /// Page document size (width = viewport width).
    pub doc_size: Size,
    /// The ad slot rectangle in page document coordinates.
    pub slot: Rect,
    /// Above/below the fold at page load.
    pub placement: SlotPlacement,
}

impl PageModel {
    /// Generates a page for a viewport of `viewport` containing a slot
    /// for a creative of `creative` size.
    ///
    /// * Page length: 1.5–5 viewports (mobile articles / feeds).
    /// * Slot position: with probability `above_fold_share` uniformly
    ///   inside the first viewport, otherwise uniformly below it.
    ///   Publishers sell premium above-fold placements; campaigns differ
    ///   in how much of them they buy, which is the main driver of
    ///   cross-campaign viewability spread (Figure 3b's error bars).
    pub fn generate(
        viewport: Size,
        creative: Size,
        above_fold_share: f64,
        rng: &mut ChaCha8Rng,
    ) -> PageModel {
        let height = viewport.height * rng.gen_range(1.5..5.0);
        let doc_size = Size::new(viewport.width, height);
        let max_y = (height - creative.height).max(0.0);
        let fold_max_y = (viewport.height - creative.height).max(0.0);
        let above = rng.gen_bool(above_fold_share.clamp(0.0, 1.0));
        let y = if above {
            rng.gen_range(0.0..=fold_max_y.max(f64::MIN_POSITIVE))
        } else {
            // Start strictly below the 50 %-visible line so a "below
            // fold" draw is genuinely below the fold at page load.
            let lo = (viewport.height - 0.49 * creative.height).min(max_y);
            rng.gen_range(lo..=max_y.max(lo + f64::MIN_POSITIVE))
        };
        let x = ((viewport.width - creative.width) / 2.0).max(0.0);
        PageModel {
            doc_size,
            slot: Rect::new(x, y, creative.width, creative.height),
            placement: if y + creative.height * 0.5 <= viewport.height {
                SlotPlacement::AboveFold
            } else {
                SlotPlacement::BelowFold
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    const VP: Size = Size {
        width: 360.0,
        height: 684.0,
    };

    #[test]
    fn slot_always_inside_document() {
        let mut r = rng(1);
        for _ in 0..500 {
            let p = PageModel::generate(VP, Size::MEDIUM_RECTANGLE, 0.3, &mut r);
            assert!(p.slot.min_y() >= 0.0);
            assert!(p.slot.max_y() <= p.doc_size.height + 1e-9);
            assert!(p.slot.max_x() <= p.doc_size.width + 1e-9);
        }
    }

    #[test]
    fn above_fold_share_is_respected() {
        let mut r = rng(2);
        let n = 4000;
        let above = (0..n)
            .filter(|_| {
                let p = PageModel::generate(VP, Size::MOBILE_BANNER, 0.4, &mut r);
                p.placement == SlotPlacement::AboveFold
            })
            .count();
        let frac = above as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.05, "above-fold fraction {frac}");
    }

    #[test]
    fn zero_share_means_everything_below_fold() {
        let mut r = rng(3);
        for _ in 0..200 {
            let p = PageModel::generate(VP, Size::MOBILE_BANNER, 0.0, &mut r);
            assert_eq!(p.placement, SlotPlacement::BelowFold);
        }
    }

    #[test]
    fn page_length_in_band() {
        let mut r = rng(4);
        for _ in 0..200 {
            let p = PageModel::generate(VP, Size::MEDIUM_RECTANGLE, 0.3, &mut r);
            let viewports = p.doc_size.height / VP.height;
            assert!((1.5..=5.0).contains(&viewports));
        }
    }
}
