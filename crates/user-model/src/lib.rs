//! # qtag-user
//!
//! The synthetic audience: stand-in for the proprietary production
//! traffic of the paper's §5 evaluation (12 M ads, 99 campaigns,
//! audiences across the US, Mexico, Colombia, Spain, UK, Germany, …).
//!
//! Three layers:
//!
//! * [`Population`] — the device/environment mix (OS × browser ×
//!   site-type, webview modernity, CPU-load distribution). The mix is
//!   calibrated so that *mechanistic* simulation of both tags reproduces
//!   the marginals the paper reports (Table 2); every calibrated
//!   constant carries a doc comment citing its source;
//! * [`PageModel`] — publisher page geometry: page length, where the ad
//!   slot sits (above/below the fold), overlays;
//! * [`SessionBehavior`] — what the user does: scroll depth (how far
//!   down the page they ever get), dwell times between scroll steps, tab
//!   switches and app backgrounding. Drawn from long-tailed
//!   distributions (log-normal dwell, mixture scroll depth) seeded per
//!   impression, so campaign-level rates emerge from user behaviour
//!   rather than being hard-coded.
//!
//! [`SessionSim`] assembles a `qtag-render` engine for one impression:
//! builds the page with the served ad's double iframe, attaches tags,
//! scripts the user's scroll/dwell timeline, and runs it to completion.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod behavior;
mod page;
mod population;
mod session;
mod week;

pub use behavior::{BehaviorConfig, SessionBehavior, UserAction};
pub use page::{PageModel, SlotPlacement};
pub use population::{EnvSample, Population, PopulationConfig, SliceParams};
pub use session::{SessionOutcome, SessionSim};
pub use week::{TrafficPattern, WEEK_DAYS};
