//! Weekly traffic patterns.
//!
//! The paper's production dataset spans one week of monitoring (§5).
//! Ad traffic is strongly diurnal — volume peaks in the evening, dips
//! overnight — and slightly weekly (weekends differ from weekdays).
//! [`TrafficPattern`] models that intensity curve and samples impression
//! arrival times from it, so the weekly-timeline experiment sees
//! realistic volume waves rather than a uniform smear.

use qtag_render::SimTime;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Seconds per hour/day/week of simulated time.
const HOUR_S: u64 = 3_600;
/// Hours in a day.
const DAY_H: u64 = 24;
/// Days in the monitoring window.
pub const WEEK_DAYS: u64 = 7;

/// A piecewise-constant weekly intensity curve (one weight per hour of
/// the week, 168 values).
#[derive(Debug, Clone)]
pub struct TrafficPattern {
    /// Relative intensity per hour-of-week; need not be normalised.
    weights: Vec<f64>,
    /// Prefix sums for inverse-CDF sampling.
    cumulative: Vec<f64>,
}

impl TrafficPattern {
    /// Builds a pattern from 168 hourly weights.
    ///
    /// # Panics
    /// Panics unless exactly 168 non-negative weights with a positive
    /// sum are provided.
    pub fn from_hourly_weights(weights: Vec<f64>) -> Self {
        assert_eq!(
            weights.len(),
            (WEEK_DAYS * DAY_H) as usize,
            "168 hourly weights"
        );
        assert!(
            weights.iter().all(|w| *w >= 0.0),
            "weights must be non-negative"
        );
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "total intensity must be positive");
        TrafficPattern {
            weights,
            cumulative,
        }
    }

    /// A typical mobile-traffic week: overnight trough (02–06 h),
    /// morning ramp, lunchtime bump, evening peak (19–22 h); weekends
    /// flatter with a later peak.
    pub fn typical_week() -> Self {
        let mut weights = Vec::with_capacity((WEEK_DAYS * DAY_H) as usize);
        for day in 0..WEEK_DAYS {
            let weekend = day >= 5;
            for hour in 0..DAY_H {
                let base: f64 = match hour {
                    0..=1 => 0.45,
                    2..=5 => 0.20,
                    6..=8 => 0.70,
                    9..=11 => 0.95,
                    12..=13 => 1.10,
                    14..=17 => 0.95,
                    18 => 1.15,
                    19..=21 => 1.40,
                    22 => 1.05,
                    _ => 0.70,
                };
                // Weekends: flatter daytime, stronger late evening.
                let w = if weekend {
                    match hour {
                        9..=17 => base * 0.85,
                        19..=23 => base * 1.10,
                        _ => base,
                    }
                } else {
                    base
                };
                weights.push(w);
            }
        }
        TrafficPattern::from_hourly_weights(weights)
    }

    /// Relative intensity for an hour-of-week index.
    pub fn intensity(&self, hour_of_week: u64) -> f64 {
        self.weights[(hour_of_week % (WEEK_DAYS * DAY_H)) as usize]
    }

    /// Samples one impression arrival time within the week,
    /// ∝ the intensity curve (uniform within the chosen hour).
    pub fn sample_arrival(&self, rng: &mut ChaCha8Rng) -> SimTime {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        let hour = self
            .cumulative
            .partition_point(|c| *c < x)
            .min(self.weights.len() - 1) as u64;
        let offset_s = rng.gen_range(0..HOUR_S);
        SimTime::from_micros((hour * HOUR_S + offset_s) * 1_000_000)
    }

    /// Hour-of-week (0–167) of a timestamp.
    pub fn hour_of(t: SimTime) -> u64 {
        (t.as_micros() / 1_000_000 / HOUR_S) % (WEEK_DAYS * DAY_H)
    }

    /// Day-of-week (0–6) of a timestamp.
    pub fn day_of(t: SimTime) -> u64 {
        (t.as_micros() / 1_000_000 / (HOUR_S * DAY_H)) % WEEK_DAYS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn typical_week_has_full_coverage() {
        let p = TrafficPattern::typical_week();
        assert_eq!(p.weights.len(), 168);
        assert!(p.weights.iter().all(|w| *w > 0.0));
    }

    #[test]
    fn evening_peak_beats_overnight_trough() {
        let p = TrafficPattern::typical_week();
        assert!(p.intensity(20) > 2.0 * p.intensity(3));
    }

    #[test]
    fn arrivals_follow_the_curve() {
        let p = TrafficPattern::typical_week();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 50_000;
        let mut overnight = 0u32; // hours 2–5 of any day
        let mut evening = 0u32; // hours 19–21 of any day
        for _ in 0..n {
            let t = p.sample_arrival(&mut rng);
            let hour_of_day = TrafficPattern::hour_of(t) % 24;
            match hour_of_day {
                2..=5 => overnight += 1,
                19..=21 => evening += 1,
                _ => {}
            }
        }
        assert!(
            evening > 3 * overnight,
            "evening {evening} vs overnight {overnight}"
        );
    }

    #[test]
    fn arrivals_stay_within_the_week() {
        let p = TrafficPattern::typical_week();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..1000 {
            let t = p.sample_arrival(&mut rng);
            assert!(t.as_micros() < WEEK_DAYS * DAY_H * HOUR_S * 1_000_000);
        }
    }

    #[test]
    fn day_and_hour_helpers_agree() {
        let t = SimTime::from_micros(((2 * 24 + 7) * 3600) * 1_000_000); // day 2, 07:00
        assert_eq!(TrafficPattern::day_of(t), 2);
        assert_eq!(TrafficPattern::hour_of(t), 2 * 24 + 7);
    }

    #[test]
    #[should_panic(expected = "168 hourly weights")]
    fn wrong_weight_count_panics() {
        TrafficPattern::from_hourly_weights(vec![1.0; 24]);
    }
}
