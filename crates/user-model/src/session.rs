//! One impression, end to end: page build, tag attach, user timeline.

use crate::behavior::{BehaviorConfig, SessionBehavior, UserAction};
use crate::page::PageModel;
use crate::population::EnvSample;
use qtag_adtech::{embed_served_ad, ServedAd, ServingOrigins};
use qtag_core::{QTag, QTagConfig};
use qtag_dom::{Origin, Page, Screen, Tab, TabId, WindowId, WindowKind};
use qtag_geometry::{Rect, Size, Vector};
use qtag_render::{
    Engine, PlaybackAction, PlaybackCommand, ScriptId, SimDuration, SimTime, VideoPlayer,
    VideoPlayerConfig,
};
use qtag_verifier::{VerifierConfig, VerifierTag};
use qtag_wire::{AdFormat, Beacon, SiteType};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Everything one simulated session produced.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Beacons Q-Tag emitted (pre-transport; apply loss downstream).
    pub qtag_beacons: Vec<Beacon>,
    /// Beacons the commercial verifier emitted.
    pub verifier_beacons: Vec<Beacon>,
    /// The generated page geometry.
    pub page: PageModel,
    /// Wall-clock length of the session (simulated ms).
    pub duration_ms: u64,
    /// Clicks the user made on the creative.
    pub clicks: u32,
}

/// Session assembler/driver.
#[derive(Debug, Clone)]
pub struct SessionSim {
    /// Behaviour distributions.
    pub behavior: BehaviorConfig,
    /// Share of slots the campaign buys above the fold (campaign
    /// placement quality; drives viewability spread across campaigns).
    pub above_fold_share: f64,
    /// Attach Q-Tag to the creative.
    pub attach_qtag: bool,
    /// Attach the commercial verifier to the creative.
    pub attach_verifier: bool,
    /// Per-dwell click probability while the ad is ≥50 % in the
    /// viewport. Clicks on culled ads are structurally impossible (the
    /// engine only dispatches clicks to composited, in-viewport
    /// content), which is precisely why "CTR depend\[s\] on the
    /// viewability rate" (§2.2).
    pub click_hazard_per_visible_dwell: f64,
}

impl Default for SessionSim {
    fn default() -> Self {
        SessionSim {
            behavior: BehaviorConfig::default(),
            above_fold_share: 0.30,
            attach_qtag: true,
            attach_verifier: true,
            click_hazard_per_visible_dwell: 0.01,
        }
    }
}

impl SessionSim {
    /// Runs one impression's session. Deterministic per `(ad, env, seed)`.
    pub fn run(&self, ad: &ServedAd, env: &EnvSample, seed: u64) -> SessionOutcome {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let profile = env.device_profile();
        let viewport = Size::new(
            profile.screen.width,
            (profile.screen.height - profile.chrome_height).max(0.0),
        );

        // Publisher page with the served ad embedded in the double
        // cross-domain iframe.
        let page_model =
            PageModel::generate(viewport, ad.creative_size, self.above_fold_share, &mut rng);
        let mut page = Page::new(Origin::https("publisher.example"), page_model.doc_size);
        let origins = ServingOrigins::default();
        let placement = embed_served_ad(&mut page, page_model.slot, ad, &origins)
            .expect("markup embedding on a fresh page");
        let tag_origin = Origin::parse(&origins.dsp).expect("valid dsp origin");

        // Window/tab per site type.
        let mut screen = Screen::new(profile.screen);
        let full = Rect::new(0.0, 0.0, profile.screen.width, profile.screen.height);
        let (window, tab): (WindowId, Option<TabId>) = match env.site_type {
            SiteType::Browser => {
                let w = screen.add_window(
                    WindowKind::Browser {
                        tabs: vec![Tab::new(page)],
                        active: TabId(0),
                    },
                    full,
                    profile.chrome_height,
                );
                (w, Some(TabId(0)))
            }
            SiteType::App => {
                let w =
                    screen.add_window(WindowKind::AppWebView { page }, full, profile.chrome_height);
                (w, None)
            }
        };

        let mut engine = Engine::new(env.engine_config(seed ^ 0x9E37_79B9), screen);

        // Attach tags (each independently subject to fetch failure).
        let creative_rect = placement.creative_rect;
        let mut qtag_id: Option<ScriptId> = None;
        if self.attach_qtag && !env.qtag_fetch_fail {
            let mut cfg = QTagConfig::new(ad.impression_id, ad.campaign_id.0, creative_rect);
            if ad.format == AdFormat::Video {
                cfg = cfg.video();
            }
            let mut tag = QTag::new(cfg);
            if ad.format == AdFormat::Video {
                tag = tag.with_player(Self::video_player(seed));
            }
            qtag_id = Some(
                engine
                    .attach_script(
                        window,
                        tab,
                        placement.dsp_frame,
                        tag_origin.clone(),
                        Box::new(tag),
                    )
                    .expect("attach qtag"),
            );
        }
        let mut verifier_id: Option<ScriptId> = None;
        if self.attach_verifier && !env.verifier_fetch_fail {
            let cfg =
                VerifierConfig::new(ad.impression_id, ad.campaign_id.0, creative_rect, ad.format);
            verifier_id = Some(
                engine
                    .attach_script(
                        window,
                        tab,
                        placement.dsp_frame,
                        tag_origin,
                        Box::new(VerifierTag::new(cfg)),
                    )
                    .expect("attach verifier"),
            );
        }

        // Drive the user timeline.
        let behavior = if env.bounce {
            SessionBehavior::bounce()
        } else {
            SessionBehavior::generate(
                &self.behavior,
                page_model.doc_size.height,
                viewport.height,
                &mut rng,
            )
        };
        let mut overlay: Option<WindowId> = None;
        let mut clicks = 0u32;
        for action in &behavior.actions {
            match action {
                UserAction::Dwell(ms) => {
                    engine.run_for(SimDuration::from_millis(*ms));
                    // After reading a screenful, the user may click an ad
                    // they can see.
                    if self.click_hazard_per_visible_dwell > 0.0
                        && rand::Rng::gen_bool(&mut rng, self.click_hazard_per_visible_dwell)
                    {
                        if let Some(center) = Self::creative_center_in_viewport(
                            &engine,
                            window,
                            tab,
                            placement.dsp_frame,
                            creative_rect,
                        ) {
                            let hit = engine
                                .click_at(window, tab, center)
                                .expect("click dispatch");
                            if hit > 0 {
                                clicks += 1;
                            }
                        }
                    }
                }
                UserAction::ScrollTo(y) => {
                    engine
                        .scroll_page_to(window, tab, Vector::new(0.0, *y))
                        .expect("scroll session page");
                }
                UserAction::SwitchAway(ms) => {
                    // Another app comes to the foreground, fully covering
                    // the page; then the user returns.
                    let ov = match overlay {
                        Some(ov) => {
                            engine.screen_mut().restore(ov).expect("restore overlay");
                            ov
                        }
                        None => {
                            let ov =
                                engine
                                    .screen_mut()
                                    .add_window(WindowKind::OpaqueApp, full, 0.0);
                            overlay = Some(ov);
                            ov
                        }
                    };
                    engine.run_for(SimDuration::from_millis(*ms));
                    engine.screen_mut().minimize(ov).expect("hide overlay");
                }
                UserAction::Leave => break,
            }
        }

        // Collect beacons per tag.
        let mut qtag_beacons = Vec::new();
        let mut verifier_beacons = Vec::new();
        for out in engine.drain_outbox() {
            if Some(out.script) == qtag_id {
                qtag_beacons.push(out.beacon);
            } else if Some(out.script) == verifier_id {
                verifier_beacons.push(out.beacon);
            }
        }

        SessionOutcome {
            qtag_beacons,
            verifier_beacons,
            page: page_model,
            duration_ms: behavior.duration_ms(),
            clicks,
        }
    }

    /// Deterministic playback schedule for a video impression. The
    /// player autoplays with a healthy connection (fill faster than
    /// real time, so it never rebuffers); roughly a third of sessions,
    /// by seed, take a short mid-roll pause — which resets the
    /// 2-second continuous-playback timer in the tag.
    fn video_player(seed: u64) -> VideoPlayer {
        let at = |ms: u64| SimTime::from_micros(ms * 1_000);
        let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut script = vec![PlaybackCommand {
            at: at(0),
            action: PlaybackAction::Play,
        }];
        if h.is_multiple_of(3) {
            let pause_ms = 2_500 + (h >> 8) % 2_000;
            script.push(PlaybackCommand {
                at: at(pause_ms),
                action: PlaybackAction::Pause,
            });
            script.push(PlaybackCommand {
                at: at(pause_ms + 800),
                action: PlaybackAction::Play,
            });
        }
        VideoPlayer::new(
            VideoPlayerConfig {
                duration: SimDuration::from_secs(30),
                initial_buffer: SimDuration::from_millis(1_500 + (h >> 16) % 1_500),
                fill_permille: 1_200,
                resume_watermark: SimDuration::from_millis(500),
            },
            script,
        )
    }

    /// The creative's centre in viewport coordinates, when ≥ 50 % of it
    /// is currently inside the viewport (the click-eligible condition).
    fn creative_center_in_viewport(
        engine: &Engine,
        window: WindowId,
        tab: Option<TabId>,
        frame: qtag_dom::FrameId,
        creative_rect: Rect,
    ) -> Option<qtag_geometry::Point> {
        let w = engine.screen().window(window).ok()?;
        let page = match (&tab, &w.kind) {
            (Some(t), WindowKind::Browser { tabs, .. }) => {
                tabs.get(t.index()).map(|tb| &tb.page)?
            }
            (None, WindowKind::AppWebView { page }) => page,
            _ => return None,
        };
        let vp = w.viewport_size();
        let visible = qtag_render::rect_in_viewport(page, frame, creative_rect, vp).ok()??;
        if visible.area() < creative_rect.area() * 0.5 {
            return None;
        }
        Some(visible.center())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{Population, PopulationConfig};
    use qtag_adtech::CampaignId;
    use qtag_wire::{EventKind, OsKind};

    fn ad() -> ServedAd {
        ServedAd {
            impression_id: 1,
            campaign_id: CampaignId(1),
            creative_size: Size::MOBILE_BANNER,
            format: AdFormat::Display,
            paid_cpm_milli: 800,
        }
    }

    fn healthy_env(site_type: SiteType) -> EnvSample {
        EnvSample {
            site_type,
            os: OsKind::Android,
            bounce: false,
            qtag_fetch_fail: false,
            verifier_fetch_fail: false,
            legacy_env: false,
            beacon_loss: 0.0,
            cpu_load: 0.0,
        }
    }

    fn has(beacons: &[Beacon], e: EventKind) -> bool {
        beacons.iter().any(|b| b.event == e)
    }

    #[test]
    fn healthy_browser_session_measures_with_both_tags() {
        let sim = SessionSim {
            above_fold_share: 1.0, // force above the fold
            ..SessionSim::default()
        };
        let out = sim.run(&ad(), &healthy_env(SiteType::Browser), 7);
        assert!(has(&out.qtag_beacons, EventKind::Measurable));
        assert!(has(&out.verifier_beacons, EventKind::Measurable));
        assert!(
            has(&out.qtag_beacons, EventKind::InView),
            "above-fold ad must be viewed"
        );
        assert!(has(&out.verifier_beacons, EventKind::InView));
    }

    #[test]
    fn bounce_session_yields_tagloaded_only() {
        let mut env = healthy_env(SiteType::Browser);
        env.bounce = true;
        let out = SessionSim::default().run(&ad(), &env, 8);
        assert!(has(&out.qtag_beacons, EventKind::TagLoaded));
        assert!(!has(&out.qtag_beacons, EventKind::Measurable));
        assert!(out.duration_ms < 100);
    }

    #[test]
    fn legacy_app_env_silences_verifier_but_not_qtag() {
        let mut env = healthy_env(SiteType::App);
        env.legacy_env = true;
        let sim = SessionSim {
            above_fold_share: 1.0,
            ..SessionSim::default()
        };
        let out = sim.run(&ad(), &env, 9);
        assert!(has(&out.qtag_beacons, EventKind::InView));
        assert!(
            out.verifier_beacons.is_empty(),
            "sandboxed SDK stays silent"
        );
    }

    #[test]
    fn fetch_failures_drop_one_tag_independently() {
        let mut env = healthy_env(SiteType::Browser);
        env.qtag_fetch_fail = true;
        let out = SessionSim::default().run(&ad(), &env, 10);
        assert!(out.qtag_beacons.is_empty());
        assert!(!out.verifier_beacons.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let env = healthy_env(SiteType::Browser);
        let a = SessionSim::default().run(&ad(), &env, 11);
        let b = SessionSim::default().run(&ad(), &env, 11);
        assert_eq!(a.qtag_beacons, b.qtag_beacons);
        assert_eq!(a.verifier_beacons, b.verifier_beacons);
    }

    fn video_ad() -> ServedAd {
        ServedAd {
            impression_id: 2,
            campaign_id: CampaignId(2),
            creative_size: Size::MEDIUM_RECTANGLE,
            format: AdFormat::Video,
            paid_cpm_milli: 2000,
        }
    }

    #[test]
    fn video_session_views_under_continuous_playback() {
        let sim = SessionSim {
            above_fold_share: 1.0,
            ..SessionSim::default()
        };
        // Several seeds so both player schedules (straight-through and
        // mid-roll pause) occur; a long-enough dwell must still view.
        let mut viewed = 0;
        for seed in 0..12 {
            let out = sim.run(&video_ad(), &healthy_env(SiteType::Browser), seed);
            if has(&out.qtag_beacons, EventKind::InView) {
                viewed += 1;
                assert!(has(&out.qtag_beacons, EventKind::Measurable));
            }
        }
        assert!(
            viewed > 0,
            "no video session ever met the 2 s continuous bar"
        );
    }

    #[test]
    fn video_sessions_are_deterministic_per_seed() {
        let env = healthy_env(SiteType::Browser);
        let a = SessionSim::default().run(&video_ad(), &env, 21);
        let b = SessionSim::default().run(&video_ad(), &env, 21);
        assert_eq!(a.qtag_beacons, b.qtag_beacons);
    }

    #[test]
    fn population_driven_sessions_run_clean() {
        // Smoke over the real population mix: no panics, sane beacons.
        let pop = Population::new(PopulationConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let sim = SessionSim::default();
        for i in 0..30 {
            let env = pop.sample(&mut rng);
            let out = sim.run(&ad(), &env, 1000 + i);
            for b in out.qtag_beacons.iter().chain(&out.verifier_beacons) {
                assert!(b.validate().is_ok());
                assert_eq!(b.impression_id, 1);
            }
        }
    }
}
