//! User session behaviour: scroll, dwell, switch, leave.

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rand_distr::{Distribution, LogNormal};

/// Parameters of the behaviour distributions.
#[derive(Debug, Clone)]
pub struct BehaviorConfig {
    /// Median dwell per scroll stop, ms (log-normal). Mobile reading
    /// behaviour: a few seconds per screenful.
    pub median_dwell_ms: f64,
    /// Log-normal sigma of the dwell distribution.
    pub dwell_sigma: f64,
    /// Probability the user never scrolls at all (reads only the first
    /// viewport, then leaves).
    pub no_scroll_rate: f64,
    /// Given the user scrolls, the fraction of the scrollable range they
    /// reach is `U(min_depth, 1)`.
    pub min_depth: f64,
    /// Probability of a mid-session tab/app switch (the user comes back
    /// after `switch_away_ms`).
    pub tab_switch_rate: f64,
    /// How long a switch-away lasts, ms.
    pub switch_away_ms: u64,
    /// Scroll step as a fraction of the viewport height.
    pub scroll_step: f64,
}

impl Default for BehaviorConfig {
    fn default() -> Self {
        BehaviorConfig {
            median_dwell_ms: 2_600.0,
            dwell_sigma: 0.6,
            no_scroll_rate: 0.35,
            min_depth: 0.10,
            tab_switch_rate: 0.05,
            switch_away_ms: 3_000,
            scroll_step: 0.7,
        }
    }
}

/// One step of a session timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UserAction {
    /// Stay put for the given time.
    Dwell(u64),
    /// Scroll the page to absolute offset `y` (instantaneous jump; the
    /// sub-second kinetics of scrolling are below the standard's 1 s
    /// resolution).
    ScrollTo(f64),
    /// Switch to another tab / background the app for the given time,
    /// then return.
    SwitchAway(u64),
    /// Close the page. Always the final action.
    Leave,
}

/// A generated session timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionBehavior {
    /// Actions in order; ends with [`UserAction::Leave`].
    pub actions: Vec<UserAction>,
}

impl SessionBehavior {
    /// A sub-100 ms bounce: the user closes the page before any
    /// measurement window can complete.
    pub fn bounce() -> Self {
        SessionBehavior {
            actions: vec![UserAction::Dwell(60), UserAction::Leave],
        }
    }

    /// Generates a browsing session over a page `page_height` px long
    /// seen through a viewport `viewport_height` px tall.
    pub fn generate(
        cfg: &BehaviorConfig,
        page_height: f64,
        viewport_height: f64,
        rng: &mut ChaCha8Rng,
    ) -> SessionBehavior {
        let dwell_dist = LogNormal::new(cfg.median_dwell_ms.ln(), cfg.dwell_sigma)
            .expect("valid log-normal parameters");
        let dwell =
            |rng: &mut ChaCha8Rng| -> u64 { dwell_dist.sample(rng).clamp(300.0, 30_000.0) as u64 };

        let mut actions = Vec::new();
        actions.push(UserAction::Dwell(dwell(rng)));

        let max_scroll = (page_height - viewport_height).max(0.0);
        if max_scroll > 0.0 && !rng.gen_bool(cfg.no_scroll_rate) {
            let depth = rng.gen_range(cfg.min_depth..=1.0) * max_scroll;
            let step = cfg.scroll_step * viewport_height;
            let mut y = 0.0;
            while y < depth {
                y = (y + step).min(depth);
                actions.push(UserAction::ScrollTo(y));
                actions.push(UserAction::Dwell(dwell(rng)));
            }
        }

        if rng.gen_bool(cfg.tab_switch_rate) {
            actions.push(UserAction::SwitchAway(cfg.switch_away_ms));
            actions.push(UserAction::Dwell(dwell(rng)));
        }

        actions.push(UserAction::Leave);
        SessionBehavior { actions }
    }

    /// Total simulated session length, ms.
    pub fn duration_ms(&self) -> u64 {
        self.actions
            .iter()
            .map(|a| match a {
                UserAction::Dwell(ms) | UserAction::SwitchAway(ms) => *ms,
                _ => 0,
            })
            .sum()
    }

    /// The deepest scroll offset in the timeline.
    pub fn max_scroll(&self) -> f64 {
        self.actions
            .iter()
            .filter_map(|a| match a {
                UserAction::ScrollTo(y) => Some(*y),
                _ => None,
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn sessions_end_with_leave() {
        let mut r = rng(1);
        for _ in 0..100 {
            let s = SessionBehavior::generate(&BehaviorConfig::default(), 3000.0, 684.0, &mut r);
            assert_eq!(s.actions.last(), Some(&UserAction::Leave));
        }
    }

    #[test]
    fn bounce_is_under_100ms() {
        assert!(SessionBehavior::bounce().duration_ms() < 100);
    }

    #[test]
    fn scroll_depth_never_exceeds_page() {
        let mut r = rng(2);
        for _ in 0..300 {
            let s = SessionBehavior::generate(&BehaviorConfig::default(), 2500.0, 684.0, &mut r);
            assert!(s.max_scroll() <= 2500.0 - 684.0 + 1e-9);
        }
    }

    #[test]
    fn no_scroll_rate_produces_static_sessions() {
        let cfg = BehaviorConfig {
            no_scroll_rate: 1.0,
            tab_switch_rate: 0.0,
            ..BehaviorConfig::default()
        };
        let mut r = rng(3);
        let s = SessionBehavior::generate(&cfg, 3000.0, 684.0, &mut r);
        assert_eq!(s.max_scroll(), 0.0);
        assert_eq!(s.actions.len(), 2, "dwell + leave");
    }

    #[test]
    fn dwells_are_plausible() {
        let mut r = rng(4);
        for _ in 0..200 {
            let s = SessionBehavior::generate(&BehaviorConfig::default(), 3000.0, 684.0, &mut r);
            for a in &s.actions {
                if let UserAction::Dwell(ms) = a {
                    assert!((300..=30_000).contains(ms));
                }
            }
        }
    }

    #[test]
    fn short_page_never_scrolls() {
        let mut r = rng(5);
        let s = SessionBehavior::generate(&BehaviorConfig::default(), 600.0, 684.0, &mut r);
        assert_eq!(s.max_scroll(), 0.0);
    }
}
