//! The Selenium-automation fault model.
//!
//! §4.2: "the reported 6.6 % wrong results occur in tests type (4) and
//! (5). In those specific instances … we are not able to register any
//! event … we hypothesize the failure might be associated with the
//! automation process with Selenium WebDriver" (confirmed by manual
//! repetitions that always pass). The faults live in the *harness*, not
//! the tag — so this model drops the harness-side event capture, leaving
//! the tag's behaviour untouched.

use crate::scenario::{Scenario, ScenarioOutcome};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Per-run automation fault injection.
#[derive(Debug, Clone, Copy)]
pub struct AutomationFaults {
    /// Probability that a *test 4 or 5* run loses its event capture.
    ///
    /// Derived from the paper: 6.6 % of the ≈ 36 120 runs fail, all of
    /// them in tests 4–5. Those two tests contribute 12 000 runs (500
    /// reps × 2 formats × 6 pairs × 2 tests; test 6 runs only 10 reps)
    /// ⇒ per-run fault rate within them ≈ 0.066 × 36 120 / 12 000
    /// ≈ 0.199.
    pub fault_rate: f64,
}

impl AutomationFaults {
    /// The paper-calibrated fault model.
    pub fn paper() -> Self {
        AutomationFaults { fault_rate: 0.199 }
    }

    /// A perfect harness (manual runs).
    pub fn none() -> Self {
        AutomationFaults { fault_rate: 0.0 }
    }

    /// Applies the model to one run: on a fault, the harness records no
    /// events at all (the paper's exact failure signature).
    pub fn apply(
        &self,
        scenario: Scenario,
        outcome: ScenarioOutcome,
        rng: &mut ChaCha8Rng,
    ) -> ScenarioOutcome {
        let fault_prone = matches!(scenario, Scenario::MovedOffScreen | Scenario::PageScrolled);
        if fault_prone && rng.gen_bool(self.fault_rate) {
            ScenarioOutcome::default() // nothing registered
        } else {
            outcome
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn ok_outcome() -> ScenarioOutcome {
        ScenarioOutcome {
            in_view: true,
            out_of_view: true,
            any_event: true,
        }
    }

    #[test]
    fn faults_only_hit_tests_four_and_five() {
        let faults = AutomationFaults { fault_rate: 1.0 };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for s in Scenario::ALL {
            let out = faults.apply(s, ok_outcome(), &mut rng);
            if matches!(s, Scenario::MovedOffScreen | Scenario::PageScrolled) {
                assert!(!out.any_event, "{s:?} should be wiped");
            } else {
                assert_eq!(out, ok_outcome(), "{s:?} must be untouched");
            }
        }
    }

    #[test]
    fn fault_rate_zero_is_transparent() {
        let faults = AutomationFaults::none();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for s in Scenario::ALL {
            assert_eq!(faults.apply(s, ok_outcome(), &mut rng), ok_outcome());
        }
    }

    #[test]
    fn paper_rate_reproduces_headline_accuracy_structure() {
        // Under the paper's rep mix (tests 4–5 are 12 000 of 36 120
        // runs) the calibrated rate yields the 6.6 % headline failure
        // share; with equal reps per scenario the share is
        // (2/7) × fault_rate.
        let faults = AutomationFaults::paper();
        assert!((faults.fault_rate * 12_000.0 / 36_120.0 - 0.066).abs() < 0.002);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut failures = 0u32;
        let runs_per_scenario = 4000;
        for s in Scenario::ALL {
            for _ in 0..runs_per_scenario {
                if !faults.apply(s, ok_outcome(), &mut rng).any_event {
                    failures += 1;
                }
            }
        }
        let rate = f64::from(failures) / (7.0 * f64::from(runs_per_scenario));
        let expected = 2.0 / 7.0 * faults.fault_rate;
        assert!(
            (rate - expected).abs() < 0.01,
            "overall fault share {rate} vs {expected}"
        );
    }
}
