//! The additional lab tests of §4.3.

use qtag_adtech::BlockerKind;
use qtag_core::{QTag, QTagConfig};
use qtag_dom::{Origin, Page, Screen, Tab, TabId, WindowKind};
use qtag_geometry::{Point, Rect, Size};
use qtag_render::{CpuLoadModel, DeviceProfile, Engine, EngineConfig, RenderMode, SimDuration};
use qtag_wire::{EventKind, OsKind};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

/// Result of the random-placement accuracy test.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct PlacementOutcome {
    /// Placements evaluated.
    pub cases: u32,
    /// Cases where the tag's in-view decision matched ground truth.
    pub agreements: u32,
    /// Mismatches whose true visible fraction sat within ±3 % of the
    /// 50 % threshold — the area-estimator's known resolution band.
    pub boundary_mismatches: u32,
    /// Mismatches outside that band (real errors).
    pub hard_mismatches: u32,
}

impl PlacementOutcome {
    /// Agreement rate.
    pub fn accuracy(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            f64::from(self.agreements) / f64::from(self.cases)
        }
    }
}

/// §4.3 "In-view event accuracy": a double iframe with Q-Tag placed at
/// `n` random positions (wholly visible, partially visible, and
/// out-of-view); each static scene runs for 2.5 s and the tag's decision
/// is compared against the oracle's exact visible fraction.
pub fn run_random_placement_test(n: u32, seed: u64) -> PlacementOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let creative = Size::MEDIUM_RECTANGLE;
    let mut outcome = PlacementOutcome::default();

    for i in 0..n {
        // Position spans well beyond the viewport on both axes so the
        // sweep covers fully-in, partially-in and fully-out placements.
        let x: f64 = rng.gen_range(-350.0..1400.0);
        let y: f64 = rng.gen_range(-300.0..1100.0);

        let mut page = Page::new(
            Origin::https("testing-site.example"),
            Size::new(1280.0, 3000.0),
        );
        let ssp = page.create_frame(Origin::https("wrapper.example"), creative);
        // Slot may stick out of the document; clamp into the doc canvas
        // horizontally (a real layout cannot place content at negative
        // document x, while *viewport* overflow comes from scrolling).
        // Vertical negatives are modelled by pre-scrolling instead.
        let slot = Rect::new(x.max(0.0), y.max(0.0), creative.width, creative.height);
        page.embed_iframe(page.root(), ssp, slot)
            .expect("embed ssp");
        let dsp = page.create_frame(Origin::https("dsp.example"), creative);
        page.embed_iframe(ssp, dsp, Rect::from_origin_size(Point::ORIGIN, creative))
            .expect("embed dsp");
        // Emulate a negative intended y-offset by scrolling the page
        // down by the overshoot.
        let scroll = qtag_geometry::Vector::new(0.0, (-y).max(0.0));

        let mut screen = Screen::desktop();
        let window = screen.add_window(
            WindowKind::Browser {
                tabs: vec![Tab::new(page)],
                active: TabId(0),
            },
            Rect::new(0.0, 0.0, 1280.0, 880.0),
            80.0,
        );
        let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
        if scroll.dy > 0.0 {
            engine
                .scroll_page_to(window, Some(TabId(0)), scroll)
                .expect("pre-scroll");
        }

        let cfg = QTagConfig::new(
            u64::from(i) + 1,
            1,
            Rect::from_origin_size(Point::ORIGIN, creative),
        );
        engine
            .attach_script(
                window,
                Some(TabId(0)),
                dsp,
                Origin::https("dsp.example"),
                Box::new(QTag::new(cfg)),
            )
            .expect("attach");

        // Oracle: exact visible fraction of the creative.
        let truth = engine
            .true_visibility(
                window,
                Some(TabId(0)),
                dsp,
                Rect::from_origin_size(Point::ORIGIN, creative),
            )
            .expect("oracle")
            .fraction;
        let expect_in_view = truth >= 0.5;

        engine.run_for(SimDuration::from_millis(2_500));
        let reported_in_view = engine
            .drain_outbox()
            .iter()
            .any(|b| b.beacon.event == EventKind::InView);

        outcome.cases += 1;
        if reported_in_view == expect_in_view {
            outcome.agreements += 1;
        } else if (truth - 0.5).abs() <= 0.03 {
            outcome.boundary_mismatches += 1;
        } else {
            outcome.hard_mismatches += 1;
        }
    }
    outcome
}

/// Result of the mobile in-app test.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct InAppOutcome {
    /// Creative sizes tested.
    pub cases: u32,
    /// Sizes where the tag correctly notified viewability.
    pub correct: u32,
}

/// §4.3 "Mobile in-app ads": Q-Tag inside a webview-hosted creative
/// (the Creative Preview scenario) for two creative sizes, each fully
/// in view — the tag must notify the viewability measure correctly.
pub fn run_inapp_test(seed: u64) -> InAppOutcome {
    let mut outcome = InAppOutcome::default();
    for (i, creative) in [Size::MEDIUM_RECTANGLE, Size::MOBILE_BANNER]
        .iter()
        .enumerate()
    {
        let mut page = Page::new(Origin::https("app.preview"), Size::new(360.0, 1200.0));
        let ad = page.create_frame(Origin::https("dsp.example"), *creative);
        let x = ((360.0 - creative.width) / 2.0).max(0.0);
        page.embed_iframe(
            page.root(),
            ad,
            Rect::new(x, 80.0, creative.width, creative.height),
        )
        .expect("embed");
        let mut screen = Screen::phone();
        let window = screen.add_window(
            WindowKind::AppWebView { page },
            Rect::new(0.0, 0.0, 360.0, 740.0),
            56.0,
        );
        let mut engine = Engine::new(
            EngineConfig {
                profile: DeviceProfile::in_app_webview(OsKind::Android, true),
                cpu: CpuLoadModel::idle(),
                seed: seed + i as u64,
                mode: RenderMode::Indexed,
            },
            screen,
        );
        let cfg = QTagConfig::new(
            i as u64 + 1,
            1,
            Rect::from_origin_size(Point::ORIGIN, *creative),
        );
        engine
            .attach_script(
                window,
                None,
                ad,
                Origin::https("dsp.example"),
                Box::new(QTag::new(cfg)),
            )
            .expect("attach");
        engine.run_for(SimDuration::from_secs(2));
        let in_view = engine
            .drain_outbox()
            .iter()
            .any(|b| b.beacon.event == EventKind::InView);
        outcome.cases += 1;
        if in_view {
            outcome.correct += 1;
        }
    }
    outcome
}

/// Result of the adblocker / Brave test.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct AdblockOutcome {
    /// Delivery attempts (blocker × ad type × position).
    pub attempts: u32,
    /// Attempts where the connection was blocked and neither ad nor tag
    /// deployed.
    pub blocked: u32,
    /// Beacons that reached the collector anyway (must be 0).
    pub stray_beacons: u32,
}

/// §4.3 "In-view event with adblockers and Brave": 50 random positions ×
/// 3 ad types per blocker; with the delivery path severed, neither the
/// ad nor Q-Tag may deploy, and no beacon may ever be emitted.
pub fn run_adblock_test(seed: u64) -> AdblockOutcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut outcome = AdblockOutcome::default();
    let creatives = [
        Size::MEDIUM_RECTANGLE,
        Size::new(970.0, 250.0),
        Size::VIDEO_PLAYER,
    ];

    for blocker in [BlockerKind::AdblockPlus, BlockerKind::Brave] {
        for creative in creatives {
            for _ in 0..50 {
                let y = rng.gen_range(0.0..2000.0);
                outcome.attempts += 1;

                let mut page = Page::new(
                    Origin::https("testing-site.example"),
                    Size::new(1280.0, 3000.0),
                );
                let mut screen = Screen::desktop();
                let window;
                let mut deployed_frame = None;
                if blocker.ad_delivery_possible() {
                    let ad = page.create_frame(Origin::https("dsp.example"), creative);
                    page.embed_iframe(
                        page.root(),
                        ad,
                        Rect::new(100.0, y, creative.width, creative.height),
                    )
                    .expect("embed");
                    deployed_frame = Some(ad);
                    window = screen.add_window(
                        WindowKind::Browser {
                            tabs: vec![Tab::new(page)],
                            active: TabId(0),
                        },
                        Rect::new(0.0, 0.0, 1280.0, 880.0),
                        80.0,
                    );
                } else {
                    // The third-party request never leaves the machine:
                    // the page renders without the ad or the tag.
                    outcome.blocked += 1;
                    window = screen.add_window(
                        WindowKind::Browser {
                            tabs: vec![Tab::new(page)],
                            active: TabId(0),
                        },
                        Rect::new(0.0, 0.0, 1280.0, 880.0),
                        80.0,
                    );
                }
                let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
                if let Some(frame) = deployed_frame {
                    let cfg =
                        QTagConfig::new(1, 1, Rect::from_origin_size(Point::ORIGIN, creative));
                    engine
                        .attach_script(
                            window,
                            Some(TabId(0)),
                            frame,
                            Origin::https("dsp.example"),
                            Box::new(QTag::new(cfg)),
                        )
                        .expect("attach");
                }
                engine.run_for(SimDuration::from_secs(2));
                outcome.stray_beacons += engine.drain_outbox().len() as u32;
            }
        }
    }
    outcome
}

/// §4.3 "Privacy-enhanced browsers": third-party cookies blocked, but
/// Q-Tag is cookie-free JavaScript and must operate normally. Returns
/// `true` when the tag measured and registered in-view as usual.
pub fn run_privacy_browser_test(seed: u64) -> bool {
    let blocker = BlockerKind::PrivacyBrowser;
    assert!(blocker.ad_delivery_possible());
    assert!(blocker.cookies_blocked());

    let creative = Size::MEDIUM_RECTANGLE;
    let mut page = Page::new(
        Origin::https("testing-site.example"),
        Size::new(1280.0, 3000.0),
    );
    let ad = page.create_frame(Origin::https("dsp.example"), creative);
    page.embed_iframe(
        page.root(),
        ad,
        Rect::new(200.0, 150.0, creative.width, creative.height),
    )
    .expect("embed");
    let mut screen = Screen::desktop();
    let window = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(
        EngineConfig {
            seed,
            ..EngineConfig::default_desktop()
        },
        screen,
    );
    let cfg = QTagConfig::new(1, 1, Rect::from_origin_size(Point::ORIGIN, creative));
    engine
        .attach_script(
            window,
            Some(TabId(0)),
            ad,
            Origin::https("dsp.example"),
            Box::new(QTag::new(cfg)),
        )
        .expect("attach");
    engine.run_for(SimDuration::from_secs(2));
    let events: Vec<_> = engine
        .drain_outbox()
        .into_iter()
        .map(|b| b.beacon.event)
        .collect();
    events.contains(&EventKind::Measurable) && events.contains(&EventKind::InView)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_placements_agree_with_oracle() {
        let out = run_random_placement_test(150, 11);
        assert_eq!(out.cases, 150);
        assert_eq!(out.hard_mismatches, 0, "{out:?}");
        assert!(out.accuracy() > 0.97, "accuracy {}", out.accuracy());
    }

    #[test]
    fn inapp_both_sizes_notify() {
        let out = run_inapp_test(3);
        assert_eq!(out.cases, 2);
        assert_eq!(out.correct, 2);
    }

    #[test]
    fn adblockers_block_everything() {
        let out = run_adblock_test(5);
        assert_eq!(out.attempts, 300);
        assert_eq!(
            out.blocked, 300,
            "every blocked attempt must sever delivery"
        );
        assert_eq!(out.stray_beacons, 0);
    }

    #[test]
    fn privacy_browsers_do_not_affect_qtag() {
        assert!(run_privacy_browser_test(7));
    }
}
