//! # qtag-certify
//!
//! The lab-validation harness of §4: the seven ABC/JICWEBS certification
//! scenarios (Table 1), the browser × OS matrix, the Selenium-automation
//! fault model, and the extra tests of §4.3 (random placements, mobile
//! in-app, adblockers, privacy browsers).
//!
//! Each scenario is a deterministic script over a `qtag-render` engine:
//! build the test page (ad inside a **double cross-domain iframe**, §4.2),
//! attach Q-Tag, drive the browser (resize/scroll/move/obscure/switch),
//! and grade the collected beacons against Table 1's "correct result"
//! column.
//!
//! The paper's 6.6 % failures "occur in tests type (4) and (5)" where
//! "we are not able to register any event", attributed to the Selenium
//! automation, not the tag — reproduced by [`AutomationFaults`], which
//! kills the harness-side event collection with a per-run probability in
//! exactly those two scenarios.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod adversarial;
mod extras;
mod faults;
mod harness;
mod mobile;
mod scenario;

pub use adversarial::{
    run_adversarial, run_adversarial_matrix, AdversarialOutcome, AdversarialScenario,
    ScenarioReport,
};
pub use mobile::{run_mobile_scenario, MobileScenario};

pub use extras::{
    run_adblock_test, run_inapp_test, run_privacy_browser_test, run_random_placement_test,
    AdblockOutcome, InAppOutcome, PlacementOutcome,
};
pub use faults::AutomationFaults;
pub use harness::{run_certification, CertificationMatrix, CertificationResults, RunGrade};
pub use scenario::{AdFormatUnderTest, BrowserOsPair, Scenario, ScenarioOutcome};
