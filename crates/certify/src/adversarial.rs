//! Adversarial page scenarios with independent ground-truth oracles.
//!
//! The Table 1 certification scenarios (see [`crate::Scenario`]) drive
//! friendly browser-level perturbations. This module drives the *hostile*
//! cases from the view-fraud literature — z-order occluders, sticky
//! headers, carousel slot rotation, lazy-loaded below-fold iframes,
//! pop-over consent dialogs — plus the paper's video standard (≥ 50 %
//! visible for ≥ 2 s of **continuous playback**) under play / pause /
//! rebuffer / seek schedules.
//!
//! Every scenario runs twice in one engine session:
//!
//! * the **measured** side is the ordinary Q-Tag, sampling the repaint
//!   side channel and emitting beacons;
//! * the **truth** side is an oracle that never looks at the tag: it
//!   samples [`qtag_render::Engine::true_visibility`] (full geometric
//!   pipeline: screen clips, window occlusion, in-page overlays) and its
//!   own copy of the scripted [`VideoPlayer`], feeding an independent
//!   [`ViewabilityMachine`].
//!
//! The interesting rows are the ones where the two sides *disagree by
//! design*: the repaint side channel cannot see same-page overlays
//! (browsers keep painting occluded elements), so
//! [`AdversarialScenario::ZOrderOccluder`] is measured as viewable while
//! the ground truth says it never was. That gap is a property of the
//! paper's technique, not a bug — the matrix pins it down as an expected
//! constant so CI catches any drift in either pipeline.

use crate::BrowserOsPair;
use qtag_core::{QTag, QTagConfig, ViewabilityMachine};
use qtag_dom::{Element, ElementKind, ElementRef, Origin, Page, Screen, Tab, TabId, WindowKind};
use qtag_geometry::{Point, Rect, Size, Vector};
use qtag_render::{
    CpuLoadModel, DeviceProfile, Engine, EngineConfig, PlaybackAction, PlaybackCommand, RenderMode,
    SimDuration, SimTime, VideoPlayer, VideoPlayerConfig,
};
use qtag_wire::{AdFormat, EventKind};
use serde::Serialize;

/// The adversarial scenario matrix: four video playback schedules and
/// five hostile display-page patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum AdversarialScenario {
    /// Healthy video: plays straight through. Viewable.
    VideoPlaythrough,
    /// Video paused at 1 s, resumed at 2.5 s: the pause resets the 2 s
    /// continuous run, but the post-resume run completes. Viewable.
    VideoPauseResume,
    /// Video on a dead connection: 1.2 s of buffer, then a permanent
    /// stall. The continuous run never reaches 2 s. Not viewable.
    VideoRebufferStarved,
    /// Video seeked at 1.5 s: the seek flushes the buffer and breaks the
    /// run; playback resumes and completes a fresh 2 s run. Viewable.
    VideoSeekMidRun,
    /// A same-page overlay (z-index 5) covers the ad for the whole
    /// session. Ground truth: never viewable. The repaint side channel
    /// is blind to in-page overlays, so the tag measures viewable — the
    /// documented divergence of the technique.
    ZOrderOccluder,
    /// A sticky site header overlaps the top 40 % of the creative,
    /// leaving 60 % visible: above the 50 % threshold. Viewable.
    StickyHeader,
    /// A carousel rotates the ad slot: the creative occupies the
    /// in-viewport slot for only 800 ms per 2.4 s cycle, under the 1 s
    /// requirement. Not viewable — and the side channel agrees, because
    /// the rotated-out creative stops repainting.
    CarouselRotation,
    /// The ad iframe sits below the fold and the tag attaches lazily
    /// only after the user scrolls it into view. Viewable.
    LazyLoadBelowFold,
    /// A full-page consent dialog (z-index 100) covers everything for
    /// the first 4 s, then is dismissed. Ground truth becomes viewable
    /// only after dismissal; the blind side channel measures it earlier,
    /// but both verdicts agree. Viewable.
    ConsentDialog,
}

impl AdversarialScenario {
    /// All nine, video first.
    pub const ALL: [AdversarialScenario; 9] = [
        AdversarialScenario::VideoPlaythrough,
        AdversarialScenario::VideoPauseResume,
        AdversarialScenario::VideoRebufferStarved,
        AdversarialScenario::VideoSeekMidRun,
        AdversarialScenario::ZOrderOccluder,
        AdversarialScenario::StickyHeader,
        AdversarialScenario::CarouselRotation,
        AdversarialScenario::LazyLoadBelowFold,
        AdversarialScenario::ConsentDialog,
    ];

    /// Stable snake_case identifier (table rows, JSON keys).
    pub fn name(self) -> &'static str {
        match self {
            AdversarialScenario::VideoPlaythrough => "video_playthrough",
            AdversarialScenario::VideoPauseResume => "video_pause_resume",
            AdversarialScenario::VideoRebufferStarved => "video_rebuffer_starved",
            AdversarialScenario::VideoSeekMidRun => "video_seek_mid_run",
            AdversarialScenario::ZOrderOccluder => "z_order_occluder",
            AdversarialScenario::StickyHeader => "sticky_header",
            AdversarialScenario::CarouselRotation => "carousel_rotation",
            AdversarialScenario::LazyLoadBelowFold => "lazy_load_below_fold",
            AdversarialScenario::ConsentDialog => "consent_dialog",
        }
    }

    /// `"video"` or `"display"`.
    pub fn kind(self) -> &'static str {
        if self.is_video() {
            "video"
        } else {
            "display"
        }
    }

    fn is_video(self) -> bool {
        matches!(
            self,
            AdversarialScenario::VideoPlaythrough
                | AdversarialScenario::VideoPauseResume
                | AdversarialScenario::VideoRebufferStarved
                | AdversarialScenario::VideoSeekMidRun
        )
    }

    /// Whether the repaint side channel is structurally blind to this
    /// scenario's occlusion (same-page overlay above the ad for the
    /// decisive interval).
    pub fn side_channel_blind(self) -> bool {
        matches!(self, AdversarialScenario::ZOrderOccluder)
    }

    /// Ground-truth verdict the scripted scene guarantees.
    pub fn expected_truth_viewable(self) -> bool {
        !matches!(
            self,
            AdversarialScenario::VideoRebufferStarved
                | AdversarialScenario::ZOrderOccluder
                | AdversarialScenario::CarouselRotation
        )
    }

    /// Verdict the side channel is expected to measure. Differs from
    /// ground truth exactly on the blind scenarios.
    pub fn expected_measured_viewable(self) -> bool {
        self.expected_truth_viewable() || self.side_channel_blind()
    }

    /// Per-scenario tolerance on the observed rates (fraction of runs).
    pub fn tolerance(self) -> f64 {
        match self {
            // Slot rotation rides closest to the sampler's settling time.
            AdversarialScenario::CarouselRotation => 0.10,
            _ => 0.05,
        }
    }

    fn creative(self) -> Size {
        if self.is_video() {
            Size::VIDEO_PLAYER
        } else {
            Size::MEDIUM_RECTANGLE
        }
    }

    fn format(self) -> AdFormat {
        if self.is_video() {
            AdFormat::Video
        } else {
            AdFormat::Display
        }
    }

    /// Document-coordinate position of the ad slot.
    fn ad_position(self) -> Rect {
        let c = self.creative();
        let y = match self {
            AdversarialScenario::LazyLoadBelowFold => 1_800.0,
            _ => 150.0,
        };
        Rect::new(200.0, y, c.width, c.height)
    }

    fn duration_ms(self) -> u64 {
        match self {
            AdversarialScenario::CarouselRotation => 7_200,
            AdversarialScenario::ConsentDialog => 6_500,
            _ if self.is_video() => 6_500,
            _ => 6_000,
        }
    }

    /// The scripted player both the tag and the oracle run (video
    /// scenarios only). Two calls return identical machines, so the
    /// oracle's copy is independent of the tag's yet bit-equivalent.
    fn player(self) -> Option<VideoPlayer> {
        let at = |ms: u64| SimTime::from_micros(ms * 1_000);
        let (cfg, script) = match self {
            AdversarialScenario::VideoPlaythrough => (
                VideoPlayerConfig::default(),
                vec![PlaybackCommand {
                    at: at(0),
                    action: PlaybackAction::Play,
                }],
            ),
            AdversarialScenario::VideoPauseResume => (
                VideoPlayerConfig::default(),
                vec![
                    PlaybackCommand {
                        at: at(0),
                        action: PlaybackAction::Play,
                    },
                    PlaybackCommand {
                        at: at(1_000),
                        action: PlaybackAction::Pause,
                    },
                    PlaybackCommand {
                        at: at(2_500),
                        action: PlaybackAction::Play,
                    },
                ],
            ),
            AdversarialScenario::VideoRebufferStarved => (
                VideoPlayerConfig {
                    initial_buffer: SimDuration::from_millis(1_200),
                    fill_permille: 0,
                    ..VideoPlayerConfig::default()
                },
                vec![PlaybackCommand {
                    at: at(0),
                    action: PlaybackAction::Play,
                }],
            ),
            AdversarialScenario::VideoSeekMidRun => (
                VideoPlayerConfig::default(),
                vec![
                    PlaybackCommand {
                        at: at(0),
                        action: PlaybackAction::Play,
                    },
                    PlaybackCommand {
                        at: at(1_500),
                        action: PlaybackAction::Seek(SimDuration::from_secs(10)),
                    },
                ],
            ),
            _ => return None,
        };
        Some(VideoPlayer::new(cfg, script))
    }
}

/// What one adversarial run produced, truth and measurement side by side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct AdversarialOutcome {
    /// The independent oracle's verdict from scripted-scene geometry.
    pub truth_viewable: bool,
    /// The tag registered an in-view beacon.
    pub measured_viewable: bool,
    /// The tag registered an out-of-view beacon.
    pub measured_out_of_view: bool,
}

/// One row of the ground-truth-vs-measured accuracy table.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioReport {
    /// Stable scenario identifier.
    pub scenario: String,
    /// `"video"` or `"display"`.
    pub kind: String,
    /// Repetitions aggregated into the rates.
    pub runs: usize,
    /// Fraction of runs the oracle graded viewable.
    pub truth_rate: f64,
    /// Fraction of runs the tag measured viewable.
    pub measured_rate: f64,
    /// Scripted-scene expectation for `truth_rate`.
    pub expected_truth_rate: f64,
    /// Side-channel expectation for `measured_rate`.
    pub expected_measured_rate: f64,
    /// Allowed deviation of either rate from its expectation.
    pub tolerance: f64,
    /// Both rates within tolerance of their expectations.
    pub within_tolerance: bool,
    /// The measured-vs-truth gap is a designed side-channel blind spot.
    pub side_channel_blind: bool,
}

/// Runs one adversarial scenario once: builds the scripted page, attaches
/// the tag (lazily for [`AdversarialScenario::LazyLoadBelowFold`]), and
/// samples the ground-truth oracle every 100 ms alongside the tag's own
/// 10 Hz bookkeeping. Deterministic per `(scenario, pair, seed)`.
pub fn run_adversarial(
    scenario: AdversarialScenario,
    pair: BrowserOsPair,
    seed: u64,
) -> AdversarialOutcome {
    let creative = scenario.creative();
    let creative_rect = Rect::from_origin_size(Point::ORIGIN, creative);
    let ad_doc = scenario.ad_position();

    let mut page = Page::new(
        Origin::https("testing-site.example"),
        Size::new(1280.0, 3000.0),
    );
    let ssp = page.create_frame(Origin::https("wrapper.adnet.example"), creative);
    let ssp_ref = page
        .embed_iframe(page.root(), ssp, ad_doc)
        .expect("embed ssp");
    let dsp = page.create_frame(Origin::https("creative.dsp.example"), creative);
    page.embed_iframe(ssp, dsp, creative_rect)
        .expect("embed dsp");

    // Scenario furniture that exists before the session starts.
    let mut dialog_ref: Option<ElementRef> = None;
    match scenario {
        AdversarialScenario::ZOrderOccluder => {
            page.add_element(
                page.root(),
                Element::new("malicious-overlay", ElementKind::Overlay, ad_doc).with_z(5),
            )
            .expect("add occluder");
        }
        AdversarialScenario::StickyHeader => {
            // Overlaps document rows 0..250: the top 100 px of the
            // 250 px creative, leaving 60 % visible.
            page.add_element(
                page.root(),
                Element::new(
                    "sticky-header",
                    ElementKind::Overlay,
                    Rect::new(0.0, 0.0, 1280.0, 250.0),
                )
                .with_z(10),
            )
            .expect("add header");
        }
        AdversarialScenario::ConsentDialog => {
            let r = page
                .add_element(
                    page.root(),
                    Element::new(
                        "consent-dialog",
                        ElementKind::Overlay,
                        Rect::new(0.0, 0.0, 1280.0, 3000.0),
                    )
                    .with_z(100),
                )
                .expect("add dialog");
            dialog_ref = Some(r);
        }
        _ => {}
    }

    let mut screen = Screen::desktop();
    let window = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(100.0, 50.0, 1280.0, 880.0),
        80.0,
    );

    let mut engine = Engine::new(
        EngineConfig {
            profile: DeviceProfile::desktop(pair.browser, pair.os),
            cpu: CpuLoadModel::Noisy {
                base: 0.10,
                amplitude: 0.10,
            },
            seed,
            mode: RenderMode::Indexed,
        },
        screen,
    );

    let mut cfg = QTagConfig::new(1, 1, creative_rect);
    if scenario.is_video() {
        cfg = cfg.video();
    }
    let build_tag = |cfg: QTagConfig| {
        let tag = QTag::new(cfg);
        match scenario.player() {
            Some(p) => Box::new(tag.with_player(p)),
            None => Box::new(tag),
        }
    };
    if scenario != AdversarialScenario::LazyLoadBelowFold {
        engine
            .attach_script(
                window,
                Some(TabId(0)),
                dsp,
                Origin::https("creative.dsp.example"),
                build_tag(cfg.clone()),
            )
            .expect("attach qtag");
    }

    // The oracle: an independent machine fed by scripted-scene geometry
    // and its own copy of the playback script. It never reads the tag.
    let mut truth = ViewabilityMachine::for_format(scenario.format());
    let mut oracle_player = scenario.player();

    let step = SimDuration::from_millis(100);
    let steps = scenario.duration_ms() / 100;
    let carousel_out = Rect::new(
        ad_doc.origin.x,
        2_400.0,
        ad_doc.size.width,
        ad_doc.size.height,
    );
    for i in 0..steps {
        let t_ms = i * 100;
        // Scheduled in-page actions fire at the top of the step.
        match scenario {
            AdversarialScenario::CarouselRotation => {
                let phase = t_ms % 2_400;
                let rect = if phase == 0 && t_ms > 0 {
                    Some(ad_doc)
                } else if phase == 800 {
                    Some(carousel_out)
                } else {
                    None
                };
                if let Some(r) = rect {
                    let page = engine
                        .screen_mut()
                        .window_mut(window)
                        .expect("window")
                        .active_page_mut()
                        .expect("page");
                    page.element_mut(ssp_ref).expect("slot").rect = r;
                }
            }
            AdversarialScenario::LazyLoadBelowFold => {
                if t_ms == 1_000 {
                    engine
                        .scroll_page_to(window, Some(TabId(0)), Vector::new(0.0, 1_700.0))
                        .expect("scroll");
                }
                if t_ms == 1_200 {
                    engine
                        .attach_script(
                            window,
                            Some(TabId(0)),
                            dsp,
                            Origin::https("creative.dsp.example"),
                            build_tag(cfg.clone()),
                        )
                        .expect("lazy attach");
                }
            }
            AdversarialScenario::ConsentDialog if t_ms == 4_000 => {
                let page = engine
                    .screen_mut()
                    .window_mut(window)
                    .expect("window")
                    .active_page_mut()
                    .expect("page");
                page.element_mut(dialog_ref.expect("dialog ref"))
                    .expect("dialog")
                    .display = false;
            }
            _ => {}
        }

        engine.run_for(step);

        let now = engine.now();
        let playing = match oracle_player.as_mut() {
            Some(p) => {
                p.advance_to(now);
                p.playing()
            }
            None => true,
        };
        let vis = engine
            .true_visibility(window, Some(TabId(0)), dsp, creative_rect)
            .expect("truth query")
            .fraction;
        truth.update_with_playback(now, vis, playing);
    }

    let mut out = AdversarialOutcome {
        truth_viewable: truth.viewed(),
        ..AdversarialOutcome::default()
    };
    for b in engine.drain_outbox() {
        match b.beacon.event {
            EventKind::InView => out.measured_viewable = true,
            EventKind::OutOfView => out.measured_out_of_view = true,
            _ => {}
        }
    }
    out
}

/// Runs every scenario `runs_per_scenario` times (rotating through the
/// §4.2 browser × OS matrix, seeds derived from `base_seed`) and folds
/// the outcomes into one accuracy row per scenario.
pub fn run_adversarial_matrix(runs_per_scenario: usize, base_seed: u64) -> Vec<ScenarioReport> {
    AdversarialScenario::ALL
        .iter()
        .map(|&scenario| {
            let mut truth_hits = 0usize;
            let mut measured_hits = 0usize;
            for i in 0..runs_per_scenario {
                let pair = BrowserOsPair::ALL[i % BrowserOsPair::ALL.len()];
                let out = run_adversarial(scenario, pair, base_seed + 7_919 * i as u64);
                truth_hits += usize::from(out.truth_viewable);
                measured_hits += usize::from(out.measured_viewable);
            }
            let runs = runs_per_scenario.max(1);
            let truth_rate = truth_hits as f64 / runs as f64;
            let measured_rate = measured_hits as f64 / runs as f64;
            let expected_truth_rate = f64::from(u8::from(scenario.expected_truth_viewable()));
            let expected_measured_rate = f64::from(u8::from(scenario.expected_measured_viewable()));
            let tolerance = scenario.tolerance();
            let within_tolerance = (truth_rate - expected_truth_rate).abs() <= tolerance
                && (measured_rate - expected_measured_rate).abs() <= tolerance;
            ScenarioReport {
                scenario: scenario.name().to_string(),
                kind: scenario.kind().to_string(),
                runs: runs_per_scenario,
                truth_rate,
                measured_rate,
                expected_truth_rate,
                expected_measured_rate,
                tolerance,
                within_tolerance,
                side_channel_blind: scenario.side_channel_blind(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(s: AdversarialScenario) -> AdversarialOutcome {
        run_adversarial(s, BrowserOsPair::ALL[0], 11)
    }

    #[test]
    fn video_playthrough_agrees_viewable() {
        let out = run(AdversarialScenario::VideoPlaythrough);
        assert!(out.truth_viewable, "{out:?}");
        assert!(out.measured_viewable, "{out:?}");
    }

    #[test]
    fn video_pause_resume_agrees_viewable() {
        let out = run(AdversarialScenario::VideoPauseResume);
        assert!(out.truth_viewable, "{out:?}");
        assert!(out.measured_viewable, "{out:?}");
    }

    #[test]
    fn starved_rebuffer_agrees_not_viewable() {
        let out = run(AdversarialScenario::VideoRebufferStarved);
        assert!(!out.truth_viewable, "{out:?}");
        assert!(!out.measured_viewable, "{out:?}");
    }

    #[test]
    fn seek_breaks_then_completes_run() {
        let out = run(AdversarialScenario::VideoSeekMidRun);
        assert!(out.truth_viewable, "{out:?}");
        assert!(out.measured_viewable, "{out:?}");
    }

    #[test]
    fn z_order_occluder_exposes_side_channel_blind_spot() {
        let out = run(AdversarialScenario::ZOrderOccluder);
        assert!(
            !out.truth_viewable,
            "ground truth sees the overlay: {out:?}"
        );
        assert!(
            out.measured_viewable,
            "the repaint side channel is blind to in-page overlays: {out:?}"
        );
    }

    #[test]
    fn sticky_header_leaves_enough_visible() {
        let out = run(AdversarialScenario::StickyHeader);
        assert!(out.truth_viewable, "{out:?}");
        assert!(out.measured_viewable, "{out:?}");
    }

    #[test]
    fn carousel_rotation_agrees_not_viewable() {
        let out = run(AdversarialScenario::CarouselRotation);
        assert!(!out.truth_viewable, "800 ms slots < 1 s: {out:?}");
        assert!(!out.measured_viewable, "{out:?}");
    }

    #[test]
    fn lazy_load_below_fold_agrees_viewable() {
        let out = run(AdversarialScenario::LazyLoadBelowFold);
        assert!(out.truth_viewable, "{out:?}");
        assert!(out.measured_viewable, "{out:?}");
    }

    #[test]
    fn consent_dialog_agrees_viewable_after_dismissal() {
        let out = run(AdversarialScenario::ConsentDialog);
        assert!(out.truth_viewable, "{out:?}");
        assert!(out.measured_viewable, "{out:?}");
    }

    #[test]
    fn matrix_rows_stay_within_tolerance() {
        for row in run_adversarial_matrix(3, 42) {
            assert!(
                row.within_tolerance,
                "{}: truth {} (exp {}), measured {} (exp {})",
                row.scenario,
                row.truth_rate,
                row.expected_truth_rate,
                row.measured_rate,
                row.expected_measured_rate
            );
        }
    }

    #[test]
    fn expectations_are_internally_consistent() {
        for s in AdversarialScenario::ALL {
            if s.side_channel_blind() {
                assert!(s.expected_measured_viewable() && !s.expected_truth_viewable());
            } else {
                assert_eq!(s.expected_measured_viewable(), s.expected_truth_viewable());
            }
        }
    }
}
