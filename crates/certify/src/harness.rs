//! The full certification sweep: scenarios × formats × browser–OS pairs
//! × repetitions.

use crate::faults::AutomationFaults;
use crate::scenario::{run_scenario, AdFormatUnderTest, BrowserOsPair, Scenario};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::collections::BTreeMap;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct CertificationMatrix {
    /// Browser–OS pairs to run.
    pub pairs: Vec<BrowserOsPair>,
    /// Ad formats to run.
    pub formats: Vec<AdFormatUnderTest>,
    /// Automated repetitions per (scenario, format, pair) cell.
    pub reps: u32,
    /// Repetitions for test 6 (run manually in the paper: 10).
    pub reps_test6: u32,
}

impl CertificationMatrix {
    /// The paper's full matrix: 6 pairs × 2 formats × 7 tests ×
    /// 500 reps (10 for test 6) ≈ 36 k runs.
    pub fn paper() -> Self {
        CertificationMatrix {
            pairs: BrowserOsPair::ALL.to_vec(),
            formats: AdFormatUnderTest::ALL.to_vec(),
            reps: 500,
            reps_test6: 10,
        }
    }

    /// A scaled-down matrix for quick runs/tests.
    pub fn smoke(reps: u32) -> Self {
        CertificationMatrix {
            pairs: vec![BrowserOsPair::ALL[0], BrowserOsPair::ALL[3]],
            formats: AdFormatUnderTest::ALL.to_vec(),
            reps,
            reps_test6: 2.min(reps),
        }
    }

    fn reps_for(&self, scenario: Scenario) -> u32 {
        if scenario == Scenario::BrowserObscured {
            self.reps_test6
        } else {
            self.reps
        }
    }
}

/// One grade-sheet row.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct RunGrade {
    /// Runs executed.
    pub runs: u32,
    /// Runs whose registered events matched Table 1's expectation.
    pub correct: u32,
    /// Runs in which no event was registered at all (the paper's
    /// observed failure signature).
    pub silent: u32,
}

impl RunGrade {
    /// Accuracy over this cell.
    pub fn accuracy(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            f64::from(self.correct) / f64::from(self.runs)
        }
    }
}

/// Sweep results, grouped by scenario number.
#[derive(Debug, Clone, Serialize)]
pub struct CertificationResults {
    /// Per-scenario grades (keyed by Table 1 test number).
    pub by_scenario: BTreeMap<u8, RunGrade>,
    /// Grand totals.
    pub total: RunGrade,
}

impl CertificationResults {
    /// Overall accuracy (the paper's 93.4 % headline).
    pub fn accuracy(&self) -> f64 {
        self.total.accuracy()
    }
}

/// Runs the certification sweep. Deterministic per `seed`.
///
/// Each repetition gets its own engine seed (CPU jank differs per run —
/// that is what repetitions sample in a lab too) and its own automation-
/// fault draw.
pub fn run_certification(
    matrix: &CertificationMatrix,
    faults: AutomationFaults,
    seed: u64,
) -> CertificationResults {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut by_scenario: BTreeMap<u8, RunGrade> = BTreeMap::new();
    let mut total = RunGrade::default();
    let mut run_seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);

    for scenario in Scenario::ALL {
        let grade = by_scenario.entry(scenario.number()).or_default();
        for format in &matrix.formats {
            for pair in &matrix.pairs {
                for _ in 0..matrix.reps_for(scenario) {
                    run_seed = run_seed.wrapping_add(0x1234_5678_9ABC_DEF1);
                    let raw = run_scenario(scenario, *format, *pair, run_seed);
                    let outcome = faults.apply(scenario, raw, &mut rng);
                    grade.runs += 1;
                    total.runs += 1;
                    if outcome.correct_for(scenario) {
                        grade.correct += 1;
                        total.correct += 1;
                    }
                    if !outcome.any_event {
                        grade.silent += 1;
                        total.silent += 1;
                    }
                }
            }
        }
    }

    CertificationResults { by_scenario, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faultless_smoke_matrix_is_perfect() {
        let results =
            run_certification(&CertificationMatrix::smoke(2), AutomationFaults::none(), 1);
        assert_eq!(results.accuracy(), 1.0, "{results:?}");
        assert_eq!(results.total.silent, 0);
    }

    #[test]
    fn paper_faults_fail_only_tests_four_and_five() {
        let results =
            run_certification(&CertificationMatrix::smoke(6), AutomationFaults::paper(), 3);
        for (num, grade) in &results.by_scenario {
            if *num == 4 || *num == 5 {
                assert_eq!(
                    grade.runs - grade.correct,
                    grade.silent,
                    "test {num}: every failure must be a silent run"
                );
            } else {
                assert_eq!(grade.correct, grade.runs, "test {num} must be perfect");
            }
        }
        assert!(results.accuracy() > 0.8);
    }

    #[test]
    fn test6_uses_reduced_reps() {
        let matrix = CertificationMatrix::smoke(4);
        let results = run_certification(&matrix, AutomationFaults::none(), 5);
        let cells = (matrix.pairs.len() * matrix.formats.len()) as u32;
        assert_eq!(results.by_scenario[&6].runs, matrix.reps_test6 * cells);
        assert_eq!(results.by_scenario[&1].runs, matrix.reps * cells);
    }

    #[test]
    fn determinism_per_seed() {
        let a = run_certification(&CertificationMatrix::smoke(2), AutomationFaults::paper(), 9);
        let b = run_certification(&CertificationMatrix::smoke(2), AutomationFaults::paper(), 9);
        assert_eq!(a.total.correct, b.total.correct);
        assert_eq!(a.total.silent, b.total.silent);
    }
}
