//! The seven ABC certification scenarios (Table 1), as deterministic
//! scripts over the render engine.

use qtag_core::{QTag, QTagConfig};
use qtag_dom::{Origin, Page, Screen, Tab, TabId, WindowKind};
use qtag_geometry::{Rect, Size, Vector};
use qtag_render::{CpuLoadModel, DeviceProfile, Engine, EngineConfig, RenderMode, SimDuration};
use qtag_wire::{AdFormat, BrowserKind, EventKind, OsKind};
use serde::Serialize;

/// The certification test types of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Scenario {
    /// (1) Ad served within multiple cross-domain iframes, in view.
    CrossDomainIframes,
    /// (2) Browser page is enlarged; the ad stays in view.
    BrowserResized,
    /// (3) The site loses focus but stays in view.
    OutOfFocus,
    /// (4) The browser is moved off-screen after the criteria are met.
    MovedOffScreen,
    /// (5) The page is scrolled after the criteria are met.
    PageScrolled,
    /// (6) Another app obscures the browser after the criteria are met.
    BrowserObscured,
    /// (7) The user switches to another tab after the criteria are met.
    TabObscured,
}

impl Scenario {
    /// All seven, in Table 1 order.
    pub const ALL: [Scenario; 7] = [
        Scenario::CrossDomainIframes,
        Scenario::BrowserResized,
        Scenario::OutOfFocus,
        Scenario::MovedOffScreen,
        Scenario::PageScrolled,
        Scenario::BrowserObscured,
        Scenario::TabObscured,
    ];

    /// Table 1 test number (1-based).
    pub fn number(self) -> u8 {
        match self {
            Scenario::CrossDomainIframes => 1,
            Scenario::BrowserResized => 2,
            Scenario::OutOfFocus => 3,
            Scenario::MovedOffScreen => 4,
            Scenario::PageScrolled => 5,
            Scenario::BrowserObscured => 6,
            Scenario::TabObscured => 7,
        }
    }

    /// Whether Table 1 expects an out-of-view event after the in-view
    /// (tests 4–7) or only the in-view (tests 1–3).
    pub fn expects_out_of_view(self) -> bool {
        self.number() >= 4
    }
}

/// Ad formats ABC certifies on desktop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum AdFormatUnderTest {
    /// A 728×90 desktop banner (display rules: 50 % / 1 s).
    DesktopBanner,
    /// A 640×360 in-page video player (video rules: 50 % / 2 s).
    DesktopVideo,
}

impl AdFormatUnderTest {
    /// Both formats.
    pub const ALL: [AdFormatUnderTest; 2] = [
        AdFormatUnderTest::DesktopBanner,
        AdFormatUnderTest::DesktopVideo,
    ];

    /// Creative size.
    pub fn size(self) -> Size {
        match self {
            AdFormatUnderTest::DesktopBanner => Size::LEADERBOARD,
            AdFormatUnderTest::DesktopVideo => Size::VIDEO_PLAYER,
        }
    }

    /// Wire format.
    pub fn format(self) -> AdFormat {
        match self {
            AdFormatUnderTest::DesktopBanner => AdFormat::Display,
            AdFormatUnderTest::DesktopVideo => AdFormat::Video,
        }
    }

    /// The standard's exposure requirement for the format, ms.
    pub fn required_exposure_ms(self) -> u64 {
        u64::from(self.format().required_exposure_ms())
    }
}

/// The six browser–OS pairs of §4.2 (two more than ABC's four).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub struct BrowserOsPair {
    /// Browser engine.
    pub browser: BrowserKind,
    /// Operating system.
    pub os: OsKind,
}

impl BrowserOsPair {
    /// The full §4.2 matrix: Firefox/Chrome/IE11 on Windows 10,
    /// Safari/Firefox/Chrome on macOS.
    pub const ALL: [BrowserOsPair; 6] = [
        BrowserOsPair {
            browser: BrowserKind::Firefox,
            os: OsKind::Windows10,
        },
        BrowserOsPair {
            browser: BrowserKind::Chrome,
            os: OsKind::Windows10,
        },
        BrowserOsPair {
            browser: BrowserKind::Ie11,
            os: OsKind::Windows10,
        },
        BrowserOsPair {
            browser: BrowserKind::Safari,
            os: OsKind::MacOs,
        },
        BrowserOsPair {
            browser: BrowserKind::Firefox,
            os: OsKind::MacOs,
        },
        BrowserOsPair {
            browser: BrowserKind::Chrome,
            os: OsKind::MacOs,
        },
    ];
}

/// What one scenario run registered.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ScenarioOutcome {
    /// An in-view event was registered.
    pub in_view: bool,
    /// An out-of-view event was registered (after the in-view).
    pub out_of_view: bool,
    /// Any event at all was registered (the paper's failed runs register
    /// none).
    pub any_event: bool,
}

impl ScenarioOutcome {
    /// Grades the outcome against Table 1's "correct result" column.
    pub fn correct_for(&self, scenario: Scenario) -> bool {
        if scenario.expects_out_of_view() {
            self.in_view && self.out_of_view
        } else {
            // Tests 1–3: the ad is always in view — an out-of-view event
            // would be a false transition.
            self.in_view && !self.out_of_view
        }
    }
}

/// Runs one scenario once and reports what the monitoring side
/// registered. Deterministic per `(scenario, format, pair, seed)` —
/// `seed` feeds the device's CPU-load jitter, which is what varies
/// between the 500 repetitions.
pub fn run_scenario(
    scenario: Scenario,
    format: AdFormatUnderTest,
    pair: BrowserOsPair,
    seed: u64,
) -> ScenarioOutcome {
    let creative = format.size();

    // Testing website: 1280×3000 page, ad in a double cross-domain
    // iframe fully inside the initial viewport (§4.2's setup).
    let mut page = Page::new(
        Origin::https("testing-site.example"),
        Size::new(1280.0, 3000.0),
    );
    let ssp = page.create_frame(Origin::https("wrapper.adnet.example"), creative);
    let ad_pos = Rect::new(200.0, 150.0, creative.width, creative.height);
    page.embed_iframe(page.root(), ssp, ad_pos)
        .expect("embed ssp");
    let dsp = page.create_frame(Origin::https("creative.dsp.example"), creative);
    page.embed_iframe(
        ssp,
        dsp,
        Rect::from_origin_size(qtag_geometry::Point::ORIGIN, creative),
    )
    .expect("embed dsp");

    let mut screen = Screen::desktop();
    // Test 2 starts with a smaller window to have something to enlarge.
    let initial_rect = match scenario {
        Scenario::BrowserResized => Rect::new(100.0, 50.0, 1000.0, 700.0),
        _ => Rect::new(100.0, 50.0, 1280.0, 880.0),
    };
    let window = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        initial_rect,
        80.0,
    );

    let profile = DeviceProfile::desktop(pair.browser, pair.os);
    let mut engine = Engine::new(
        EngineConfig {
            profile,
            // Mild, seed-dependent jank: what actually differs between
            // repetitions on a real lab machine.
            cpu: CpuLoadModel::Noisy {
                base: 0.10,
                amplitude: 0.10,
            },
            seed,
            mode: RenderMode::Indexed,
        },
        screen,
    );

    let mut cfg = QTagConfig::new(
        1,
        1,
        Rect::from_origin_size(qtag_geometry::Point::ORIGIN, creative),
    );
    if format.format() == AdFormat::Video {
        cfg = cfg.video();
    }
    engine
        .attach_script(
            window,
            Some(TabId(0)),
            dsp,
            Origin::https("creative.dsp.example"),
            Box::new(QTag::new(cfg)),
        )
        .expect("attach qtag");

    // Phase A: let the viewability criteria be met (exposure requirement
    // plus sampling slack).
    let establish = SimDuration::from_millis(format.required_exposure_ms() + 800);
    engine.run_for(establish);

    // Phase B: the scenario's perturbation.
    match scenario {
        Scenario::CrossDomainIframes => {
            // Nothing else: the double iframe is the test.
            engine.run_for(SimDuration::from_secs(1));
        }
        Scenario::BrowserResized => {
            engine
                .screen_mut()
                .resize_window(window, Size::new(1800.0, 1000.0))
                .expect("resize");
            engine.run_for(SimDuration::from_secs(2));
        }
        Scenario::OutOfFocus => {
            engine.screen_mut().blur_all();
            engine.run_for(SimDuration::from_secs(2));
        }
        Scenario::MovedOffScreen => {
            engine
                .screen_mut()
                .move_window(window, Vector::new(3000.0, 0.0))
                .expect("move off-screen");
            // Hidden-page timers limp at 1 Hz; give the tag time to
            // notice and report.
            engine.run_for(SimDuration::from_secs(4));
        }
        Scenario::PageScrolled => {
            engine
                .scroll_page_to(window, Some(TabId(0)), Vector::new(0.0, 2000.0))
                .expect("scroll");
            engine.run_for(SimDuration::from_secs(2));
        }
        Scenario::BrowserObscured => {
            engine.screen_mut().add_window(
                WindowKind::OpaqueApp,
                Rect::new(0.0, 0.0, 1920.0, 1080.0),
                0.0,
            );
            engine.run_for(SimDuration::from_secs(4));
        }
        Scenario::TabObscured => {
            let other = Page::new(Origin::https("other.example"), Size::new(1280.0, 1000.0));
            let t1 = engine
                .screen_mut()
                .window_mut(window)
                .expect("window")
                .add_tab(other)
                .expect("add tab");
            engine
                .screen_mut()
                .window_mut(window)
                .expect("window")
                .switch_tab(t1)
                .expect("switch tab");
            engine.run_for(SimDuration::from_secs(4));
        }
    }

    let mut outcome = ScenarioOutcome::default();
    for b in engine.drain_outbox() {
        outcome.any_event = true;
        match b.beacon.event {
            EventKind::InView => outcome.in_view = true,
            EventKind::OutOfView => outcome.out_of_view = true,
            _ => {}
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(s: Scenario, f: AdFormatUnderTest) -> ScenarioOutcome {
        run_scenario(s, f, BrowserOsPair::ALL[0], 42)
    }

    #[test]
    fn all_seven_scenarios_pass_for_banner() {
        for s in Scenario::ALL {
            let out = run(s, AdFormatUnderTest::DesktopBanner);
            assert!(out.correct_for(s), "scenario {s:?} failed: {out:?}");
        }
    }

    #[test]
    fn all_seven_scenarios_pass_for_video() {
        for s in Scenario::ALL {
            let out = run(s, AdFormatUnderTest::DesktopVideo);
            assert!(out.correct_for(s), "scenario {s:?} failed: {out:?}");
        }
    }

    #[test]
    fn every_browser_os_pair_passes_scenario_one() {
        for pair in BrowserOsPair::ALL {
            let out = run_scenario(
                Scenario::CrossDomainIframes,
                AdFormatUnderTest::DesktopBanner,
                pair,
                7,
            );
            assert!(
                out.correct_for(Scenario::CrossDomainIframes),
                "{pair:?}: {out:?}"
            );
        }
    }

    #[test]
    fn grading_matches_table_one() {
        let both = ScenarioOutcome {
            in_view: true,
            out_of_view: true,
            any_event: true,
        };
        let only_in = ScenarioOutcome {
            in_view: true,
            out_of_view: false,
            any_event: true,
        };
        let none = ScenarioOutcome::default();
        assert!(only_in.correct_for(Scenario::OutOfFocus));
        assert!(
            !both.correct_for(Scenario::OutOfFocus),
            "false out-of-view must fail 1–3"
        );
        assert!(both.correct_for(Scenario::MovedOffScreen));
        assert!(!only_in.correct_for(Scenario::PageScrolled));
        assert!(!none.correct_for(Scenario::CrossDomainIframes));
    }

    #[test]
    fn scenario_numbers_match_table_order() {
        assert_eq!(Scenario::CrossDomainIframes.number(), 1);
        assert_eq!(Scenario::TabObscured.number(), 7);
        assert!(!Scenario::OutOfFocus.expects_out_of_view());
        assert!(Scenario::MovedOffScreen.expects_out_of_view());
    }
}
