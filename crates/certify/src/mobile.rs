//! Mobile in-app certification scenarios.
//!
//! ABC's published matrix covers desktop only; §4.3 notes that MRC
//! "seems [to] analyze this type of ad in its accreditation process".
//! These scenarios mirror Table 1's structure for the in-app webview
//! environment — the terrain where the commercial solution collapses
//! (Table 2) and where Q-Tag's measured-rate advantage is earned.

use qtag_core::{QTag, QTagConfig};
use qtag_dom::{Origin, Page, Screen, WindowKind};
use qtag_geometry::{Point, Rect, Size, Vector};
use qtag_render::{CpuLoadModel, DeviceProfile, Engine, EngineConfig, RenderMode, SimDuration};
use qtag_wire::{EventKind, OsKind};
use serde::Serialize;

use crate::scenario::ScenarioOutcome;

/// Mobile in-app certification scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum MobileScenario {
    /// (M1) Banner fully visible in the webview: in-view expected.
    InAppVisible,
    /// (M2) Banner below the webview fold; the user scrolls it into
    /// view: in-view after the scroll.
    InAppScrolledIn,
    /// (M3) The user backgrounds the app after the criteria are met:
    /// in-view then out-of-view expected.
    AppBackgrounded,
    /// (M4) Another app is opened full screen on top after the criteria
    /// are met: in-view then out-of-view expected.
    AppObscured,
    /// (M5) Device rotation (viewport resize) while the ad stays
    /// visible: in-view, no false out-of-view.
    DeviceRotated,
}

impl MobileScenario {
    /// All five scenarios.
    pub const ALL: [MobileScenario; 5] = [
        MobileScenario::InAppVisible,
        MobileScenario::InAppScrolledIn,
        MobileScenario::AppBackgrounded,
        MobileScenario::AppObscured,
        MobileScenario::DeviceRotated,
    ];

    /// Whether an out-of-view event is part of the expected result.
    pub fn expects_out_of_view(self) -> bool {
        matches!(
            self,
            MobileScenario::AppBackgrounded | MobileScenario::AppObscured
        )
    }

    /// Grades an outcome for this scenario.
    pub fn correct(self, outcome: ScenarioOutcome) -> bool {
        if self.expects_out_of_view() {
            outcome.in_view && outcome.out_of_view
        } else {
            outcome.in_view && !outcome.out_of_view
        }
    }
}

/// Runs one mobile scenario on an Android webview (modern, so the test
/// isolates scenario handling from capability gaps). Deterministic per
/// seed (CPU jank).
pub fn run_mobile_scenario(scenario: MobileScenario, os: OsKind, seed: u64) -> ScenarioOutcome {
    let creative = Size::MOBILE_BANNER;
    // App page: 360 wide, 3 screens tall inside the webview.
    let mut page = Page::new(
        Origin::https("app.content.example"),
        Size::new(360.0, 2000.0),
    );
    let ad_frame = page.create_frame(Origin::https("creative.dsp.example"), creative);
    let ad_y = match scenario {
        MobileScenario::InAppScrolledIn => 1_200.0, // below the fold
        _ => 120.0,
    };
    page.embed_iframe(
        page.root(),
        ad_frame,
        Rect::new(20.0, ad_y, creative.width, creative.height),
    )
    .expect("embed ad");

    let mut screen = Screen::phone();
    let window = screen.add_window(
        WindowKind::AppWebView { page },
        Rect::new(0.0, 0.0, 360.0, 740.0),
        56.0,
    );

    let profile = DeviceProfile::in_app_webview(os, true);
    let mut engine = Engine::new(
        EngineConfig {
            profile,
            cpu: CpuLoadModel::Noisy {
                base: 0.15,
                amplitude: 0.10,
            },
            seed,
            mode: RenderMode::Indexed,
        },
        screen,
    );
    let cfg = QTagConfig::new(1, 1, Rect::from_origin_size(Point::ORIGIN, creative));
    engine
        .attach_script(
            window,
            None,
            ad_frame,
            Origin::https("creative.dsp.example"),
            Box::new(QTag::new(cfg)),
        )
        .expect("attach qtag");

    match scenario {
        MobileScenario::InAppVisible => {
            engine.run_for(SimDuration::from_millis(2_000));
        }
        MobileScenario::InAppScrolledIn => {
            engine.run_for(SimDuration::from_millis(800));
            engine
                .scroll_page_to(window, None, Vector::new(0.0, 1_000.0))
                .expect("scroll");
            engine.run_for(SimDuration::from_millis(2_000));
        }
        MobileScenario::AppBackgrounded => {
            engine.run_for(SimDuration::from_millis(2_000));
            engine
                .screen_mut()
                .minimize(window)
                .expect("background app");
            engine.run_for(SimDuration::from_secs(4));
        }
        MobileScenario::AppObscured => {
            engine.run_for(SimDuration::from_millis(2_000));
            engine.screen_mut().add_window(
                WindowKind::OpaqueApp,
                Rect::new(0.0, 0.0, 360.0, 740.0),
                0.0,
            );
            engine.run_for(SimDuration::from_secs(4));
        }
        MobileScenario::DeviceRotated => {
            engine.run_for(SimDuration::from_millis(2_000));
            // Landscape: swap dimensions; the banner at y=120 stays in
            // the (now 304 px tall) viewport.
            engine
                .screen_mut()
                .resize_window(window, Size::new(740.0, 360.0))
                .expect("rotate");
            engine.run_for(SimDuration::from_secs(2));
        }
    }

    let mut outcome = ScenarioOutcome::default();
    for b in engine.drain_outbox() {
        outcome.any_event = true;
        match b.beacon.event {
            EventKind::InView => outcome.in_view = true,
            EventKind::OutOfView => outcome.out_of_view = true,
            _ => {}
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_mobile_scenarios_pass_on_android() {
        for s in MobileScenario::ALL {
            let out = run_mobile_scenario(s, OsKind::Android, 11);
            assert!(s.correct(out), "{s:?}: {out:?}");
        }
    }

    #[test]
    fn all_mobile_scenarios_pass_on_ios() {
        for s in MobileScenario::ALL {
            let out = run_mobile_scenario(s, OsKind::Ios, 13);
            assert!(s.correct(out), "{s:?}: {out:?}");
        }
    }

    #[test]
    fn backgrounding_before_criteria_never_views() {
        // Variant: app backgrounded at 400 ms — before the 1 s criterion.
        let creative = Size::MOBILE_BANNER;
        let mut page = Page::new(
            Origin::https("app.content.example"),
            Size::new(360.0, 2000.0),
        );
        let ad = page.create_frame(Origin::https("dsp.example"), creative);
        page.embed_iframe(
            page.root(),
            ad,
            Rect::new(20.0, 120.0, creative.width, creative.height),
        )
        .unwrap();
        let mut screen = Screen::phone();
        let w = screen.add_window(
            WindowKind::AppWebView { page },
            Rect::new(0.0, 0.0, 360.0, 740.0),
            56.0,
        );
        let mut engine = Engine::new(
            EngineConfig {
                profile: DeviceProfile::in_app_webview(OsKind::Android, true),
                cpu: CpuLoadModel::idle(),
                seed: 1,
                mode: RenderMode::Indexed,
            },
            screen,
        );
        let cfg = QTagConfig::new(1, 1, Rect::from_origin_size(Point::ORIGIN, creative));
        engine
            .attach_script(
                w,
                None,
                ad,
                Origin::https("dsp.example"),
                Box::new(QTag::new(cfg)),
            )
            .unwrap();
        engine.run_for(SimDuration::from_millis(400));
        engine.screen_mut().minimize(w).unwrap();
        engine.run_for(SimDuration::from_secs(3));
        let events: Vec<_> = engine
            .drain_outbox()
            .into_iter()
            .map(|o| o.beacon.event)
            .collect();
        assert!(!events.contains(&EventKind::InView));
    }

    #[test]
    fn grading_matrix() {
        let both = ScenarioOutcome {
            in_view: true,
            out_of_view: true,
            any_event: true,
        };
        let only_in = ScenarioOutcome {
            in_view: true,
            out_of_view: false,
            any_event: true,
        };
        assert!(MobileScenario::InAppVisible.correct(only_in));
        assert!(!MobileScenario::InAppVisible.correct(both));
        assert!(MobileScenario::AppBackgrounded.correct(both));
        assert!(!MobileScenario::AppBackgrounded.correct(only_in));
    }
}
