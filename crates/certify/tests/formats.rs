//! Format-specific viewability rules, measured live (§2.2's three
//! format thresholds exercised through the whole tag + engine stack).

use qtag_core::{QTag, QTagConfig};
use qtag_dom::{Origin, Page, Screen, Tab, TabId, WindowKind};
use qtag_geometry::{Point, Rect, Size, Vector};
use qtag_render::{Engine, EngineConfig, SimDuration};
use qtag_wire::{AdFormat, EventKind};

/// Builds a scene where exactly `visible_fraction` of the creative is
/// inside the viewport (clipped at the bottom edge), attaches Q-Tag and
/// runs for `run_ms`.
fn run_with_visibility(
    creative: Size,
    format: Option<AdFormat>,
    visible_fraction: f64,
    run_ms: u64,
) -> Vec<EventKind> {
    let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 4000.0));
    let frame = page.create_frame(Origin::https("dsp.example"), creative);
    // Viewport is 800 px tall; place the ad so `visible_fraction` of its
    // height is above the fold line.
    let visible_px = creative.height * visible_fraction;
    let y = 800.0 - visible_px;
    page.embed_iframe(
        page.root(),
        frame,
        Rect::new(100.0, y, creative.width, creative.height),
    )
    .unwrap();
    let mut screen = Screen::desktop();
    let w = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
    let mut cfg = QTagConfig::new(1, 1, Rect::from_origin_size(Point::ORIGIN, creative));
    cfg.ad_format = format;
    engine
        .attach_script(
            w,
            Some(TabId(0)),
            frame,
            Origin::https("dsp.example"),
            Box::new(QTag::new(cfg)),
        )
        .unwrap();
    engine.run_for(SimDuration::from_millis(run_ms));
    engine
        .drain_outbox()
        .into_iter()
        .map(|o| o.beacon.event)
        .collect()
}

#[test]
fn display_needs_fifty_percent() {
    // 40 % visible: never viewed.
    let evs = run_with_visibility(Size::MEDIUM_RECTANGLE, None, 0.40, 2_500);
    assert!(
        !evs.contains(&EventKind::InView),
        "40% must not view a display ad"
    );
    // 60 % visible: viewed.
    let evs = run_with_visibility(Size::MEDIUM_RECTANGLE, None, 0.60, 2_500);
    assert!(evs.contains(&EventKind::InView));
}

#[test]
fn large_display_needs_only_thirty_percent() {
    let billboard = Size::new(970.0, 250.0); // auto-classifies as large display
                                             // 40 % visible satisfies the 30 % large-display threshold …
    let evs = run_with_visibility(billboard, None, 0.40, 2_500);
    assert!(
        evs.contains(&EventKind::InView),
        "40% visible must view a large-display ad (30% rule)"
    );
    // … while 22 % does not.
    let evs = run_with_visibility(billboard, None, 0.22, 2_500);
    assert!(!evs.contains(&EventKind::InView));
}

#[test]
fn the_same_exposure_viewed_large_but_not_regular_display() {
    // The discriminating case: 40 % visible is enough for large display
    // and not for regular display. The tag must apply the right rule by
    // classifying the creative's area, with no configuration hint.
    let evs_large = run_with_visibility(Size::new(970.0, 250.0), None, 0.40, 2_500);
    let evs_regular = run_with_visibility(Size::MEDIUM_RECTANGLE, None, 0.40, 2_500);
    assert!(evs_large.contains(&EventKind::InView));
    assert!(!evs_regular.contains(&EventKind::InView));
}

#[test]
fn video_needs_two_continuous_seconds() {
    let player = Size::VIDEO_PLAYER;
    // Fully visible for 1.5 s: not viewed (display would be).
    let evs = run_with_visibility(player, Some(AdFormat::Video), 1.0, 1_500);
    assert!(
        !evs.contains(&EventKind::InView),
        "1.5s must not view a video ad"
    );
    // Fully visible for 2.5 s: viewed.
    let evs = run_with_visibility(player, Some(AdFormat::Video), 1.0, 2_500);
    assert!(evs.contains(&EventKind::InView));
}

#[test]
fn video_interruption_restarts_the_two_second_timer() {
    let player = Size::VIDEO_PLAYER;
    let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 4000.0));
    let frame = page.create_frame(Origin::https("dsp.example"), player);
    page.embed_iframe(
        page.root(),
        frame,
        Rect::new(100.0, 100.0, player.width, player.height),
    )
    .unwrap();
    let mut screen = Screen::desktop();
    let w = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
    let cfg = QTagConfig::new(1, 1, Rect::from_origin_size(Point::ORIGIN, player)).video();
    engine
        .attach_script(
            w,
            Some(TabId(0)),
            frame,
            Origin::https("dsp.example"),
            Box::new(QTag::new(cfg)),
        )
        .unwrap();

    // 1.5 s visible, 0.5 s scrolled away, 1.5 s visible again: two
    // partial exposures must NOT add up to the 2 s requirement.
    engine.run_for(SimDuration::from_millis(1_500));
    engine
        .scroll_page_to(w, Some(TabId(0)), Vector::new(0.0, 2000.0))
        .unwrap();
    engine.run_for(SimDuration::from_millis(500));
    engine
        .scroll_page_to(w, Some(TabId(0)), Vector::new(0.0, 0.0))
        .unwrap();
    engine.run_for(SimDuration::from_millis(1_500));
    let evs: Vec<_> = engine
        .drain_outbox()
        .into_iter()
        .map(|o| o.beacon.event)
        .collect();
    assert!(
        !evs.contains(&EventKind::InView),
        "two 1.5s exposures must not satisfy the continuous 2s rule: {evs:?}"
    );

    // A further continuous second completes a fresh 2s window.
    engine.run_for(SimDuration::from_millis(700));
    let evs: Vec<_> = engine
        .drain_outbox()
        .into_iter()
        .map(|o| o.beacon.event)
        .collect();
    assert!(evs.contains(&EventKind::InView));
}
