//! Iframe-depth robustness: §3 says Q-Tag handles ads "embedded in an
//! iframe (or a nested iframe)". The production path is two cross-domain
//! levels; ad chains in the wild go deeper (resold inventory wraps
//! wrappers). Q-Tag must measure identically at any depth, because its
//! side channel never walks the chain.

use qtag_core::{QTag, QTagConfig};
use qtag_dom::{Origin, Page, Screen, Tab, TabId, WindowKind};
use qtag_geometry::{Point, Rect, Size, Vector};
use qtag_render::{Engine, EngineConfig, SimDuration};
use qtag_wire::EventKind;

/// Builds a chain of `depth` cross-domain iframes, each a distinct
/// reseller origin, with the creative in the innermost frame. The whole
/// chain sits at `slot` on the publisher page.
fn build_chain(depth: usize, slot: Rect) -> (Page, qtag_dom::FrameId) {
    let creative = Size::MEDIUM_RECTANGLE;
    let mut page = Page::new(
        Origin::https("publisher.example"),
        Size::new(1280.0, 3000.0),
    );
    let mut parent = page.root();
    let mut rect = slot;
    for level in 0..depth {
        let origin = Origin::https(&format!("reseller{level}.example"));
        let frame = page.create_frame(origin, creative);
        page.embed_iframe(parent, frame, rect).expect("embed level");
        parent = frame;
        // inner levels fill their parent
        rect = Rect::from_origin_size(Point::ORIGIN, creative);
    }
    (page, parent)
}

fn run_at_depth(depth: usize, in_view_position: bool) -> Vec<EventKind> {
    let y = if in_view_position { 150.0 } else { 1_500.0 };
    let (page, inner) = build_chain(depth, Rect::new(300.0, y, 300.0, 250.0));
    let mut screen = Screen::desktop();
    let window = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
    let cfg = QTagConfig::new(1, 1, Rect::new(0.0, 0.0, 300.0, 250.0));
    let inner_origin = Origin::https(&format!("reseller{}.example", depth - 1));
    engine
        .attach_script(
            window,
            Some(TabId(0)),
            inner,
            inner_origin,
            Box::new(QTag::new(cfg)),
        )
        .expect("attach");
    engine.run_for(SimDuration::from_secs(2));
    engine
        .drain_outbox()
        .into_iter()
        .map(|o| o.beacon.event)
        .collect()
}

#[test]
fn in_view_measured_identically_at_depths_one_through_eight() {
    for depth in 1..=8 {
        let events = run_at_depth(depth, true);
        assert!(
            events.contains(&EventKind::InView),
            "depth {depth}: in-view ad must be measured, got {events:?}"
        );
        assert!(events.contains(&EventKind::Measurable));
    }
}

#[test]
fn below_fold_stays_unviewed_at_any_depth() {
    for depth in [1, 3, 6] {
        let events = run_at_depth(depth, false);
        assert!(events.contains(&EventKind::Measurable), "depth {depth}");
        assert!(
            !events.contains(&EventKind::InView),
            "depth {depth}: below-fold ad wrongly viewed"
        );
    }
}

#[test]
fn sop_blocks_every_depth_but_side_channel_does_not() {
    let (page, inner) = build_chain(5, Rect::new(300.0, 150.0, 300.0, 250.0));
    let tag_origin = Origin::https("reseller4.example");
    assert!(
        page.frame_rect_in_root(inner, &tag_origin).is_err(),
        "geometry walk blocked at depth 5"
    );
    assert_eq!(page.cross_origin_depth(inner).unwrap(), 5);
    // The side channel is depth-independent: verified by the in-view
    // sweep above.
}

#[test]
fn scroll_events_propagate_through_deep_chains() {
    // A 6-deep chain scrolled out after the criteria: out-of-view fires.
    let (page, inner) = build_chain(6, Rect::new(300.0, 150.0, 300.0, 250.0));
    let mut screen = Screen::desktop();
    let window = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
    let cfg = QTagConfig::new(1, 1, Rect::new(0.0, 0.0, 300.0, 250.0));
    engine
        .attach_script(
            window,
            Some(TabId(0)),
            inner,
            Origin::https("reseller5.example"),
            Box::new(QTag::new(cfg)),
        )
        .unwrap();
    engine.run_for(SimDuration::from_secs(2));
    engine
        .scroll_page_to(window, Some(TabId(0)), Vector::new(0.0, 2_000.0))
        .unwrap();
    engine.run_for(SimDuration::from_secs(2));
    let events: Vec<_> = engine
        .drain_outbox()
        .into_iter()
        .map(|o| o.beacon.event)
        .collect();
    assert!(events.contains(&EventKind::InView));
    assert!(events.contains(&EventKind::OutOfView));
}
