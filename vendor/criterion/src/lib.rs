//! Offline stand-in for `criterion`.
//!
//! Provides the API surface `benches/microbench.rs` uses and performs
//! honest (if unsophisticated) measurement: a short warm-up, then a
//! timed loop, reporting mean ns/iteration. No statistics, plots or
//! regression tracking — swap the real criterion back in when a
//! registry is available.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched inputs are sized (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup outputs.
    SmallInput,
    /// Large per-iteration setup outputs.
    LargeInput,
    /// One setup output per iteration.
    PerIteration,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// (iterations, total time) recorded by the last `iter*` call.
    result: Option<(u64, Duration)>,
    target_time: Duration,
}

impl Bencher {
    fn new(target_time: Duration) -> Self {
        Bencher {
            result: None,
            target_time,
        }
    }

    /// Times `routine` over enough iterations to fill the target time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate iteration count from a few probes.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let iters = (self.target_time.as_nanos() / probe.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((iters, start.elapsed()));
    }

    /// Times `routine` over per-iteration inputs built by `setup`
    /// (setup time excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let probe_start = Instant::now();
        black_box(routine(input));
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let iters = (self.target_time.as_nanos() / probe.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.result = Some((iters, total));
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
    target_time: Duration,
}

impl BenchmarkGroup<'_> {
    fn run(&self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher::new(self.target_time);
        f(&mut b);
        match b.result {
            Some((iters, total)) => {
                let per_iter = total.as_nanos() as f64 / iters as f64;
                println!(
                    "{}/{:<32} {:>12.0} ns/iter ({} iters)",
                    self.name, id, per_iter, iters
                );
            }
            None => println!("{}/{}: no measurement taken", self.name, id),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        self.run(&id.to_string(), f);
    }

    /// Benchmarks `f` with an input parameter.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(&id.to_string(), |b| f(b, input));
    }

    /// Accepted for API compatibility (statistics are not computed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shortens or lengthens the timed loop.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.target_time = d;
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
            target_time: Duration::from_millis(300),
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
