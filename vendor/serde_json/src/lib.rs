//! Offline stand-in for `serde_json` over the vendored `serde` value
//! model: a compact writer and a strict recursive-descent parser.
//! Output format matches real serde_json for the constructs the
//! workspace emits (compact separators, declaration-ordered struct
//! fields, `1.0`-style floats so numbers round-trip as the same type).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};

pub use serde::Value as JsonValue;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn msg(s: impl Into<String>) -> Self {
        Error(s.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // serde_json always keeps floats recognisable as
                // floats.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // Real serde_json serialises non-finite floats as
                // null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

/// Serializes any [`Serialize`] value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: &str = "  ";
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_escaped(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_value(out, other),
    }
}

/// Serializes to two-space-indented JSON, like real serde_json's
/// pretty printer.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> Error {
        Error::msg(format!("{what} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not reconstructed;
                            // lone surrogates become the replacement
                            // character (the workspace never emits
                            // them).
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-assemble UTF-8: find the full char at pos-1.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("invalid number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::Int)
                        .map_err(|_| self.err("integer out of range"));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => self.parse_literal("null", Value::Null),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Parses a JSON document into a [`Value`] tree.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Parses a JSON document into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    Ok(T::from_value(&from_str_value(s)?)?)
}

/// Parses JSON bytes into any [`Deserialize`] type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<String>("\"x\\ny\"").unwrap(), "x\ny");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
        let none: Option<u32> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u32>("{not json").is_err());
        assert!(from_str::<u32>("42 garbage").is_err());
        assert!(from_str::<Vec<u32>>("[1,2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn nested_objects_parse() {
        let v = from_str_value("{\"a\":{\"b\":[1,true,null]},\"c\":\"x\"}").unwrap();
        let m = v.as_map().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].0, "a");
    }
}
