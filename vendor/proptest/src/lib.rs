//! Offline stand-in for `proptest`.
//!
//! A deterministic random-input testing harness with the API subset
//! the workspace uses: the [`Strategy`] trait with `prop_map`,
//! range/`any`/`Just`/tuple/`prop_oneof!`/`collection::vec`
//! strategies, and the [`proptest!`] macro (plain function arguments
//! bound with `name in strategy`). No shrinking: a failing case
//! prints its inputs and the case number instead. Seeds are derived
//! from the test name (override with `PROPTEST_SEED`), so runs are
//! reproducible.

#![forbid(unsafe_code)]

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG driving generation.
pub type TestRng = ChaCha8Rng;

/// Creates the deterministic RNG for one property function.
pub fn new_test_rng(test_name: &str) -> TestRng {
    let base: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x51_54_41_47); // "QTAG"
                                   // FNV-1a over the test name varies the stream per test.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    ChaCha8Rng::seed_from_u64(base ^ h)
}

/// Runner configuration (`cases` only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod strategy {
    //! Strategy trait and combinators.

    use super::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value: Clone + Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: Clone + Debug,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe alias used behind [`BoxedStrategy`].
    pub type BoxedStrategy<T> = Box<dyn DynStrategy<T>>;

    /// Object-safe generation.
    pub trait DynStrategy<T> {
        /// Draws one value.
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T: Clone + Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.as_ref().generate_dyn(rng)
        }
    }

    /// Always generates its payload.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Clone + Debug,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        /// Builds from the macro-collected options.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            OneOf { options }
        }
    }

    impl<T: Clone + Debug> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.start..self.end)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(*self.start()..=*self.end())
        }
    }

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(PhantomData<T>);

    /// Full-range generation for primitives.
    pub trait Arbitrary: Clone + Debug {
        /// Draws any value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen::<f64>()
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Builds the `any::<T>()` strategy.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
        A.0, B.1, C.2, D.3, E.4
    )(A.0, B.1, C.2, D.3, E.4, F.5)(
        A.0, B.1, C.2, D.3, E.4, F.5, G.6
    )(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)(
        A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8
    )(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)(
        A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10
    )(
        A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11
    ));
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Element-count specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    /// `prop::collection::vec(...)` path compatibility.
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property (plain `assert!` semantics in
/// this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies generating the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

/// Defines property-test functions: each runs its body over many
/// random inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::new_test_rng(stringify!($name));
                for __case in 0..__cfg.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                        $( let $arg = ::std::clone::Clone::clone(&$arg); )+
                        $body
                    }));
                    if let ::std::result::Result::Err(__panic) = __result {
                        eprintln!(
                            "proptest: property `{}` failed at case {}/{} with inputs:",
                            stringify!($name),
                            __case + 1,
                            __cfg.cases
                        );
                        $( eprintln!("  {} = {:?}", stringify!($arg), $arg); )+
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 0u8..10).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respected(x in 3u32..17, y in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn mapped_pairs_ordered(p in arb_pair()) {
            prop_assert!(p.0 <= p.1);
        }

        #[test]
        fn oneof_and_vec(v in collection::vec(prop_oneof![Just(1u8), Just(2u8)], 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = crate::new_test_rng("t");
        let mut b = crate::new_test_rng("t");
        use rand::RngCore;
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
