//! Offline stand-in for `rand` 0.8.
//!
//! Supplies the trait surface the workspace uses — [`RngCore`],
//! [`SeedableRng`] (with the SplitMix64-expanded `seed_from_u64` the
//! real crate uses), and the [`Rng`] extension with `gen_bool` /
//! `gen_range` / `gen` / `sample`. Streams differ from the real
//! crate's (different range-sampling internals), but all qtag
//! consumers only require determinism per seed and sound statistics,
//! both of which hold.

#![forbid(unsafe_code)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let raw = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&raw[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 (matching the
    /// real rand 0.8 default) and constructs from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64, as in rand 0.8's seed_from_u64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types into which a uniform value can be generated ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draws a uniform value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Marker for types drawable by [`Rng::gen_range`]. Mirrors real
/// rand's `SampleUniform` bound; its presence lets inference prune
/// reference candidates at call sites like `x + rng.gen_range(..)`.
pub trait SampleUniform {}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$( impl SampleUniform for $t {} )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws uniformly from the range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = uniform_u128(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = uniform_u128(rng, span);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` via 64-bit rejection sampling
/// (`span == 0` means the full 2^128 span never occurs here: callers
/// pass spans of at most 2^64).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // Rejection zone keeps the draw unbiased.
    let zone = u128::from(u64::MAX) + 1 - ((u128::from(u64::MAX) + 1) % span);
    loop {
        let v = u128::from(rng.next_u64());
        if v < zone {
            return v % span;
        }
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let u = f64::standard(rng);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f32::standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of an inferable primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::standard(self) < p
    }

    /// Uniform draw from an integer or float range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// Draws from a distribution (mirror of `rand::Rng::sample`).
    fn sample<T, D: crate::distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Minimal `rand::distributions` mirror (the [`Distribution`] trait).
pub mod distributions {
    use crate::RngCore;

    /// A sampleable distribution.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }
}

/// Commonly used RNGs (`rngs::StdRng` alias for test convenience).
pub mod rngs {
    pub use crate::small::SmallRng;
    /// StdRng stand-in: the same xoshiro-class generator as SmallRng.
    pub type StdRng = SmallRng;
}

mod small {
    use crate::{RngCore, SeedableRng};

    /// A small fast PRNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(raw);
            }
            // All-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(1u8..=255);
            assert!(i >= 1);
        }
    }

    #[test]
    fn gen_bool_rate_is_sound() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((19_000..21_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_range_mean_is_centred() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }
}
