//! Offline stand-in for `serde`.
//!
//! The real serde is a zero-copy, format-agnostic framework; this shim
//! is a small value-tree model sufficient for the workspace's needs
//! (JSON round-trips via the vendored `serde_json`, derive via the
//! vendored `serde_derive`). The public names (`Serialize`,
//! `Deserialize`, the `derive` feature) match, so crate code compiles
//! unchanged against either implementation.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Map entries preserve insertion order so
/// serialized field order matches declaration order, as serde does for
/// structs.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative numbers).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object with insertion-ordered entries.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up `key` in a map's entries (helper for derived code).
pub fn find<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error: what was expected, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X for Y" constructor used by derived code.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError(format!("expected {what} for {context}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] model.
pub trait Serialize {
    /// Serializes `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] model.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called by derived struct code when a field is absent from the
    /// input map. `Option` fields default to `None`; everything else
    /// errors.
    fn missing_field(field: &'static str) -> Result<Self, DeError> {
        Err(DeError(format!("missing field `{field}`")))
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::expected("integer in i64 range", stringify!($t)))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    _ => return Err(DeError::expected("integer", stringify!($t))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError(format!("{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("boolean", "bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &'static str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(DeError::expected("2-element array", "tuple")),
        }
    }
}

impl<K: ToString, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output (serde_json with a HashMap is
        // unordered; deterministic is strictly more useful here).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: ToString, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(DeError::expected("object", "HashMap")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_defaults_to_none() {
        assert_eq!(Option::<u32>::missing_field("x"), Ok(None));
        assert!(u32::missing_field("x").is_err());
    }

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u16::from_value(&42u16.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".into()));
        assert_eq!(
            Vec::<u8>::from_value(&vec![1u8, 2].to_value()),
            Ok(vec![1, 2])
        );
    }
}
