//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream
//! generator implementing the vendored `rand` traits. Deterministic
//! per seed (the property every qtag consumer relies on), with the
//! statistical quality of the genuine ChaCha permutation. Output
//! streams are not bit-identical to the real crate's (word order and
//! `seed_from_u64` expansion differ) — nothing in the workspace
//! depends on the exact stream, only on per-seed determinism.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// ChaCha with 8 rounds — `rand_chacha`'s fast variant.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = state[i].wrapping_add(initial[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            let mut raw = [0u8; 4];
            raw.copy_from_slice(chunk);
            key[i] = u32::from_le_bytes(raw);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut c = ChaCha8Rng::seed_from_u64(10);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn keystream_is_statistically_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let n = 200_000;
        let ones: u32 = (0..n).map(|_| rng.next_u32() & 1).sum();
        let frac = ones as f64 / n as f64;
        assert!((0.49..0.51).contains(&frac), "bit bias {frac}");
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.35)).count();
        assert!((34_000..36_000).contains(&hits), "gen_bool hits {hits}");
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(4);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
