//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no crates.io access, so this vendored
//! shim provides exactly the subset of the `bytes` 1.x API the
//! workspace uses: [`BytesMut`] as a growable byte buffer with an
//! amortised-O(1) `advance`, and the [`Buf`] / [`BufMut`] traits with
//! big-endian integer accessors. Semantics match the real crate for
//! this subset; swap the real dependency back in by deleting the
//! `path` override in the workspace manifest.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};

/// A growable, consumable byte buffer (front-consumption via a start
/// offset instead of the real crate's refcounted views).
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
    start: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
            start: 0,
        }
    }

    /// Number of readable bytes.
    pub fn len(&self) -> usize {
        self.inner.len() - self.start
    }

    /// Whether no readable bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves capacity for at least `additional` more bytes,
    /// compacting the consumed prefix away first (this is where the
    /// amortised cost of `advance` is paid).
    pub fn reserve(&mut self, additional: usize) {
        self.compact();
        self.inner.reserve(additional);
    }

    /// Appends `src` to the buffer.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        // Compact opportunistically once the dead prefix dominates, so
        // long-running streaming decoders don't grow without bound.
        if self.start > 4096 && self.start * 2 > self.inner.len() {
            self.compact();
        }
        self.inner.extend_from_slice(src);
    }

    /// Copies the readable bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.inner[self.start..]
    }

    fn compact(&mut self) {
        if self.start > 0 {
            self.inner.drain(..self.start);
            self.start = 0;
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let start = self.start;
        &mut self.inner[start..]
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// Read side of a byte cursor: big-endian accessors over a shrinking
/// window.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// A view of the readable bytes.
    fn chunk(&self) -> &[u8];
    /// Discards the next `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of BytesMut");
        self.start += cnt;
        if self.start == self.inner.len() {
            // Fully consumed: reset cheaply.
            self.inner.clear();
            self.start = 0;
        }
    }
}

/// Write side: big-endian append operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0x03040506);
        b.put_u64(0x0708090A0B0C0D0E);
        let mut cur: &[u8] = &b;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16(), 0x0102);
        assert_eq!(cur.get_u32(), 0x03040506);
        assert_eq!(cur.get_u64(), 0x0708090A0B0C0D0E);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn advance_consumes_front() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2, 3, 4]);
        b.advance(2);
        assert_eq!(&b[..], &[3, 4]);
        b.extend_from_slice(&[5]);
        assert_eq!(&b[..], &[3, 4, 5]);
        assert_eq!(b.to_vec(), vec![3, 4, 5]);
    }
}
