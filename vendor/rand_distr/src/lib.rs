//! Offline stand-in for `rand_distr`: the [`Distribution`] trait plus
//! the Normal-family distributions the workspace samples (Box–Muller
//! rather than the real crate's ziggurat; statistically equivalent).

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

pub use rand::distributions::Distribution;

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// A scale/shape parameter was not finite and positive.
    BadParam,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev²)`; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error::BadParam);
        }
        Ok(Normal { mean, std_dev })
    }
}

/// One standard-normal draw via Box–Muller (uses two uniforms; the
/// second variate is discarded for simplicity).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(0.0f64..1.0);
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen_range(0.0f64..1.0);
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal whose logarithm is `N(mu, sigma²)`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        Ok(LogNormal {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Uniform distribution over a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Creates `U[low, high)`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low < high, "Uniform: empty range");
        Uniform { low, high }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.low..self.high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = SmallRng::seed_from_u64(11);
        let d = Normal::new(5.0, 2.0).unwrap();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((4.95..5.05).contains(&mean), "mean {mean}");
        assert!((3.9..4.1).contains(&var), "var {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = SmallRng::seed_from_u64(12);
        let median = 2_600.0f64;
        let d = LogNormal::new(median.ln(), 0.6).unwrap();
        let mut samples: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let observed = samples[50_000];
        assert!(
            (median * 0.97..median * 1.03).contains(&observed),
            "median {observed}"
        );
    }

    #[test]
    fn bad_params_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
