//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the item token stream (no `syn`/`quote` available
//! offline) and emits impls of the vendored `serde`'s value-model
//! traits. Supports what the workspace actually derives:
//!
//! * structs with named fields (including empty `{}` structs);
//! * enums with unit and one-field tuple (newtype) variants;
//! * `#[serde(skip)]` and `#[serde(skip_serializing_if = "...")]`
//!   (the latter treated as "skip when the value serializes to
//!   `Null`", which matches its only use in-tree:
//!   `Option::is_none`).
//!
//! Generics are intentionally unsupported; the macro panics with a
//! clear message rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone, Copy, PartialEq)]
enum FieldAttr {
    Plain,
    Skip,
    SkipIfNull,
}

struct Field {
    name: String,
    attr: FieldAttr,
}

struct Variant {
    name: String,
    has_payload: bool,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    /// Single-field tuple struct — serialized transparently as the
    /// inner value, matching real serde's newtype behaviour.
    Newtype {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Flattens a token stream, splicing the contents of None-delimited
/// groups in place. `macro_rules!` wraps matched fragments (`$vis:vis`,
/// `$ty:ty`, …) in invisible groups; derives on macro-generated items
/// would otherwise see `Group { delimiter: None, .. }` where they
/// expect plain idents.
fn flatten(stream: TokenStream) -> Vec<TokenTree> {
    let mut out = Vec::new();
    for t in stream {
        match t {
            TokenTree::Group(g) if g.delimiter() == Delimiter::None => {
                out.extend(flatten(g.stream()));
            }
            other => out.push(other),
        }
    }
    out
}

/// Reads the serde-relevant attribute (if any) from a `#[...]` group.
fn classify_attr(group_src: &str) -> Option<FieldAttr> {
    let src = group_src.replace(' ', "");
    if !src.starts_with("serde(") {
        return None;
    }
    if src.contains("skip_serializing_if") {
        Some(FieldAttr::SkipIfNull)
    } else if src.contains("skip") {
        Some(FieldAttr::Skip)
    } else {
        Some(FieldAttr::Plain)
    }
}

/// Skips attributes at `i`, returning the strongest serde field attr
/// seen.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, FieldAttr) {
    let mut attr = FieldAttr::Plain;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    if let Some(a) = classify_attr(&g.stream().to_string()) {
                        if a != FieldAttr::Plain {
                            attr = a;
                        }
                    }
                    i += 2;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (i, attr)
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …) at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = flatten(stream);
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, attr) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, ni);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: consume until a comma at zero angle-bracket
        // depth. Delimited groups are single atomic tokens, so only
        // `<`/`>` need counting.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, attr });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = flatten(stream);
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (ni, _) = skip_attrs(&tokens, i);
        i = ni;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let mut has_payload = false;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    let commas = inner
                        .iter()
                        .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                        .count();
                    assert!(
                        commas == 0 || (commas == 1 && matches!(inner.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',')),
                        "serde derive: only newtype (single-field) tuple variants are supported, `{name}` has more"
                    );
                    has_payload = true;
                    i += 1;
                }
                Delimiter::Brace => {
                    panic!("serde derive: struct variants are not supported (`{name}`)")
                }
                _ => {}
            }
        }
        // Skip an explicit discriminant or trailing tokens up to the
        // comma separating variants.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, has_payload });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = flatten(input);
    let mut i = 0;
    // Skip item attributes and visibility.
    loop {
        let (ni, _) = skip_attrs(&tokens, i);
        let vi = skip_vis(&tokens, ni);
        if vi == i {
            break;
        }
        i = vi;
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        assert!(
            p.as_char() != '<',
            "serde derive (offline shim): generic types are not supported (`{name}`)"
        );
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Vec::new(),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let commas = inner
                    .iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                    .count();
                assert!(
                    commas == 0
                        || (commas == 1
                            && matches!(inner.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',')),
                    "serde derive: only newtype (single-field) tuple structs are supported (`{name}`)"
                );
                Item::Newtype { name }
            }
            other => panic!("serde derive: malformed struct `{name}` (found {other:?})"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde derive: malformed enum `{name}` ({other:?})"),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

/// Derives `serde::Serialize` (vendored value-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut body =
                String::from("let mut __m: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in &fields {
                match f.attr {
                    FieldAttr::Skip => {}
                    FieldAttr::Plain => {
                        body.push_str(&format!(
                            "__m.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                            n = f.name
                        ));
                    }
                    FieldAttr::SkipIfNull => {
                        body.push_str(&format!(
                            "{{ let __v = ::serde::Serialize::to_value(&self.{n});\n\
                             if !matches!(__v, ::serde::Value::Null) {{ __m.push((\"{n}\".to_string(), __v)); }} }}\n",
                            n = f.name
                        ));
                    }
                }
            }
            body.push_str("::serde::Value::Map(__m)");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
            )
        }
        Item::Newtype { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Serialize::to_value(&self.0)\n}}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                if v.has_payload {
                    arms.push_str(&format!(
                        "{name}::{v}(__x) => ::serde::Value::Map(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(__x))]),\n",
                        v = v.name
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n",
                        v = v.name
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\nmatch self {{\n{arms}}}\n}}\n}}\n"
            )
        }
    };
    out.parse()
        .expect("serde derive: generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (vendored value-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                match f.attr {
                    FieldAttr::Skip => {
                        inits.push_str(&format!(
                            "{n}: ::core::default::Default::default(),\n",
                            n = f.name
                        ));
                    }
                    _ => {
                        inits.push_str(&format!(
                            "{n}: match ::serde::find(__map, \"{n}\") {{\n\
                             Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                             None => ::serde::Deserialize::missing_field(\"{n}\")?,\n}},\n",
                            n = f.name
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 let __map = __v.as_map().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                 #[allow(unused_variables)] let __map = __map;\n\
                 Ok({name} {{\n{inits}}})\n}}\n}}\n"
            )
        }
        Item::Newtype { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
             Ok({name}(::serde::Deserialize::from_value(__v)?))\n}}\n}}\n"
        ),
        Item::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in &variants {
                if v.has_payload {
                    map_arms.push_str(&format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),\n",
                        v = v.name
                    ));
                } else {
                    str_arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n", v = v.name));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{str_arms}\
                 __other => Err(::serde::DeError(format!(\"unknown variant `{{__other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Map(__m) if __m.len() == 1 => {{\n\
                 let (__k, __inner) = &__m[0];\n\
                 #[allow(unused_variables)] let __inner = __inner;\n\
                 match __k.as_str() {{\n{map_arms}\
                 __other => Err(::serde::DeError(format!(\"unknown variant `{{__other}}` for {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::DeError::expected(\"variant string or single-key object\", \"{name}\")),\n\
                 }}\n}}\n}}\n"
            )
        }
    };
    out.parse()
        .expect("serde derive: generated Deserialize impl parses")
}
