//! Deterministic schedule-exploration models over the *real* channel
//! code, built only under `--cfg qtag_check` (the sync facade then
//! routes every lock, condvar, atomic and clock read through the
//! qtag-check scheduler):
//!
//! ```text
//! RUSTFLAGS="--cfg qtag_check" cargo test -p crossbeam --test check_models
//! ```
//!
//! Two-thread models run full bounded DFS; the three-thread mpsc model
//! uses a preemption bound (CHESS-style) because its full tree runs to
//! millions of schedules.
#![cfg(qtag_check)]

use crossbeam::channel::{bounded, unbounded, RecvError, RecvTimeoutError};
use qtag_check::sync::thread;
use qtag_check::Builder;

/// The PR-1 lost-wakeup regression, on the real channel: a receiver
/// blocks in `recv()` while the last sender drops concurrently. With
/// the drop-path notification outside the queue mutex this deadlocks
/// (qtag-check's built-in `mini_channel_last_sender_drop(false)` model
/// keeps that failure reproducible); the shipped code must survive
/// every interleaving.
#[test]
fn recv_wakes_when_last_sender_drops() {
    let report = Builder::default().check(|| {
        let (tx, rx) = unbounded::<u32>();
        let recv = thread::spawn(move || rx.recv());
        drop(tx);
        assert_eq!(recv.join().unwrap(), Err(RecvError));
    });
    assert!(report.complete, "model must exhaust its schedule tree");
    assert!(report.schedules > 1);
}

/// Mirror image: a sender blocked on a full bounded channel must
/// observe disconnection when the last receiver drops.
#[test]
fn sender_wakes_when_last_receiver_drops() {
    let report = Builder::default().check(|| {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let send = thread::spawn(move || tx.send(2));
        drop(rx);
        assert!(send.join().unwrap().is_err());
    });
    assert!(report.complete, "model must exhaust its schedule tree");
    assert!(report.schedules > 1);
}

/// Two producers, one consumer: every message arrives exactly once and
/// each producer's messages arrive in its send order (per-sender FIFO).
#[test]
fn mpsc_fifo_and_conservation() {
    let report = Builder::bounded(2).check(|| {
        let (tx, rx) = unbounded::<(u32, u32)>();
        let producers: Vec<_> = (0..2u32)
            .map(|id| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for seq in 0..2u32 {
                        tx.send((id, seq)).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut next_seq = [0u32; 2];
        let mut total = 0u32;
        while let Ok((id, seq)) = rx.recv() {
            assert_eq!(
                seq, next_seq[id as usize],
                "per-sender FIFO violated for sender {id}"
            );
            next_seq[id as usize] += 1;
            total += 1;
        }
        assert_eq!(total, 4, "conservation: every sent message received once");
        for h in producers {
            h.join().unwrap();
        }
    });
    assert!(report.schedules > 10, "schedules: {}", report.schedules);
}

/// Bounded capacity-1 channel: the producer must block and resume on
/// every item, and nothing is lost or duplicated across the handoffs.
#[test]
fn bounded_backpressure_conserves() {
    let report = Builder::default().check(|| {
        let (tx, rx) = bounded::<u32>(1);
        let producer = thread::spawn(move || {
            for i in 0..3u32 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got, vec![0, 1, 2]);
        producer.join().unwrap();
    });
    assert!(report.schedules > 1, "schedules: {}", report.schedules);
}

/// `recv_timeout` must terminate in every schedule: either the message
/// arrives or the (virtual) deadline fires — never a hang, even when
/// the sender races the timeout.
#[test]
fn recv_timeout_never_hangs() {
    use std::time::Duration;
    // The timed-wait branch point (timeout firing is schedulable at
    // every step the receiver is parked) widens the tree past the
    // default budget; this model needs a larger one to exhaust.
    let b = Builder {
        max_schedules: 50_000,
        ..Builder::default()
    };
    let report = b.check(|| {
        let (tx, rx) = unbounded::<u32>();
        let producer = thread::spawn(move || {
            tx.send(7).unwrap();
        });
        match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(v) => assert_eq!(v, 7),
            Err(e) => assert_eq!(e, RecvTimeoutError::Timeout),
        }
        producer.join().unwrap();
    });
    assert!(report.complete, "model must exhaust its schedule tree");
}

/// An empty channel with a live sender can only time out.
#[test]
fn recv_timeout_fires_with_idle_sender() {
    use std::time::Duration;
    let report = Builder::default().check(|| {
        let (_tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
    });
    assert!(report.complete);
}
