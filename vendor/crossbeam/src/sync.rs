//! Sync facade: the single place this crate obtains its concurrency
//! primitives. Building with `--cfg qtag_check` swaps `std` for the
//! `qtag-check` model-checker shims, so the *same channel code* runs
//! under deterministic bounded-DFS schedule exploration (see
//! `tests/check_models.rs`); a normal build uses thin poison-free
//! `std` wrappers with an identical guard-returning API.
//!
//! The channel implementation must route every lock, condvar, atomic
//! and clock read through this module — `qtag-lint` (rule R4) rejects
//! direct `std::sync`/`parking_lot` use elsewhere in this crate.

#[cfg(qtag_check)]
pub use qtag_check::sync::{atomic, time, Arc, Condvar, Mutex, MutexGuard};

#[cfg(not(qtag_check))]
pub use real::{Condvar, Mutex, MutexGuard};
#[cfg(not(qtag_check))]
pub use std::sync::Arc;

/// Atomics in the `std::sync::atomic` shape.
#[cfg(not(qtag_check))]
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Clock types in the `std::time` shape.
#[cfg(not(qtag_check))]
pub mod time {
    pub use std::time::{Duration, Instant};
}

#[cfg(not(qtag_check))]
mod real {
    use std::sync::PoisonError;
    use std::time::Duration;

    /// Guard type shared with the `qtag_check` facade shape.
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    /// `std::sync::Mutex` with a `parking_lot`-shaped, poison-free
    /// `lock()` (a poisoned lock is recovered, not propagated: the
    /// channel holds plain data whose invariants every method
    /// re-establishes before releasing).
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub const fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Poison-free `std::sync::Condvar` with guard-returning waits.
    pub struct Condvar(std::sync::Condvar);

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl Condvar {
        pub const fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
        }

        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> (MutexGuard<'a, T>, std::sync::WaitTimeoutResult) {
            self.0
                .wait_timeout(guard, dur)
                .unwrap_or_else(PoisonError::into_inner)
        }

        pub fn notify_one(&self) {
            self.0.notify_one()
        }

        pub fn notify_all(&self) {
            self.0.notify_all()
        }
    }
}
