//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel` — multi-producer multi-consumer
//! bounded and unbounded channels with the crossbeam 0.8 API surface
//! the workspace uses (`send`, `try_send`, `recv`, `try_recv`,
//! `recv_timeout`, clonable endpoints, disconnection semantics).
//! Implementation is a `Mutex<VecDeque>` + two `Condvar`s: not the
//! lock-free original, but the same observable behaviour; throughput
//! is adequate for the ingest pipeline (hundreds of thousands of
//! messages per second with the batching the callers do).
//!
//! All primitives come from the [`sync`] facade, so a `--cfg
//! qtag_check` build runs this exact channel under the `qtag-check`
//! deterministic scheduler; the model-based regression suite lives in
//! `tests/check_models.rs`.

#![forbid(unsafe_code)]

pub mod sync;

/// MPMC channels in the crossbeam 0.8 API shape.
pub mod channel {
    use crate::sync::atomic::{AtomicUsize, Ordering};
    use crate::sync::time::Instant;
    use crate::sync::{Arc, Condvar, Mutex, MutexGuard};
    use std::collections::VecDeque;
    use std::time::Duration;

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Inner<T> {
        fn disconnected_for_send(&self) -> bool {
            self.receivers.load(Ordering::SeqCst) == 0
        }
        fn disconnected_for_recv(&self) -> bool {
            self.senders.load(Ordering::SeqCst) == 0
        }
    }

    // ---- wakeup rules: single source of truth ------------------------
    //
    // Every `Condvar` notification on a channel goes through the four
    // helpers below, and each takes the queue guard by reference: a
    // notification is always issued *while holding the queue mutex*.
    //
    // Why this is sufficient to never lose a wakeup: a waiter's whole
    // check-then-wait window — inspecting the queue and the
    // disconnection counters, then calling `Condvar::wait` — runs
    // under the queue mutex, and `wait` releases that mutex atomically
    // with enqueueing the waiter. A notifier holding the same mutex
    // therefore runs either before the waiter's check (the waiter then
    // sees the new state and never sleeps) or after the waiter is
    // enqueued (the notification wakes it). Nothing can fall between.
    //
    // Why it is also necessary on the drop paths: `Sender::drop` and
    // `Receiver::drop` flip the disconnection condition with a
    // lock-free `fetch_sub` *outside* the mutex. PR-1 shipped exactly
    // that decrement followed by a lock-free notification, and a
    // receiver sitting between its disconnect check and its wait
    // parked forever. Taking the mutex inside the helper orders the
    // notification after that receiver's wait, closing the window.
    //
    // The deterministic-schedule regression for that bug lives in
    // `tests/check_models.rs`, and a lexical unit test below keeps
    // every notification site inside this block.
    impl<T> Inner<T> {
        /// A message was pushed: wake one blocked receiver.
        fn wake_one_receiver(&self, _queue: &MutexGuard<'_, VecDeque<T>>) {
            self.not_empty.notify_one();
        }

        /// A slot was freed in a bounded queue: wake one blocked sender.
        fn wake_one_sender(&self, _queue: &MutexGuard<'_, VecDeque<T>>) {
            self.not_full.notify_one();
        }

        /// The last sender disconnected: wake every blocked receiver so
        /// it observes `RecvError`.
        fn wake_all_receivers(&self, _queue: &MutexGuard<'_, VecDeque<T>>) {
            self.not_empty.notify_all();
        }

        /// The last receiver disconnected: wake every blocked sender so
        /// it observes `SendError`.
        fn wake_all_senders(&self, _queue: &MutexGuard<'_, VecDeque<T>>) {
            self.not_full.notify_all();
        }
    }
    // ---- end wakeup rules --------------------------------------------

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Matches upstream crossbeam: Debug does not require `T: Debug`
    // (the payload is elided).
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> std::fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "Full(..)"),
                TrySendError::Disconnected(_) => write!(f, "Disconnected(..)"),
            }
        }
    }

    impl<T> TrySendError<T> {
        /// Whether the failure was a full (not disconnected) channel.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> std::fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now.
        Empty,
        /// Empty and all senders gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the deadline.
        Timeout,
        /// Empty and all senders gone.
        Disconnected,
    }

    /// The sending half; clone freely.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; clone freely (messages go to exactly one
    /// receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            // ordering: SeqCst pairs with the `disconnected_for_recv`
            // loads; only the thread that observes the counter at 1
            // (the last sender) performs the wakeup, under the queue
            // mutex per the wakeup rules above.
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                let queue = self.inner.queue.lock();
                self.inner.wake_all_receivers(&queue);
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            // ordering: as in `Sender::drop`, for senders blocked on a
            // full bounded channel.
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let queue = self.inner.queue.lock();
                self.inner.wake_all_senders(&queue);
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends, blocking while a bounded channel is full. Errors only
        /// when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock();
            loop {
                if self.inner.disconnected_for_send() {
                    return Err(SendError(value));
                }
                match self.inner.cap {
                    Some(cap) if q.len() >= cap => {
                        q = self.inner.not_full.wait(q);
                    }
                    _ => break,
                }
            }
            q.push_back(value);
            self.inner.wake_one_receiver(&q);
            Ok(())
        }

        /// Sends without blocking; a bounded channel at capacity sheds.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut q = self.inner.queue.lock();
            if self.inner.disconnected_for_send() {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.inner.cap {
                if q.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            q.push_back(value);
            self.inner.wake_one_receiver(&q);
            Ok(())
        }

        /// Queued messages right now.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives, blocking until a message or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    self.inner.wake_one_sender(&q);
                    return Ok(v);
                }
                if self.inner.disconnected_for_recv() {
                    return Err(RecvError);
                }
                q = self.inner.not_empty.wait(q);
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock();
            if let Some(v) = q.pop_front() {
                self.inner.wake_one_sender(&q);
                return Ok(v);
            }
            if self.inner.disconnected_for_recv() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives with a deadline. The clock comes from the facade:
        /// under `qtag_check` it is the execution's logical clock, and
        /// a scheduled timed-wait wakeup advances it past the
        /// deadline, so models never stall here.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock();
            loop {
                if let Some(v) = q.pop_front() {
                    self.inner.wake_one_sender(&q);
                    return Ok(v);
                }
                if self.inner.disconnected_for_recv() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining == Duration::ZERO {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self.inner.not_empty.wait_timeout(q, remaining);
                q = guard;
            }
        }

        /// Queued messages right now.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Drains currently queued messages without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { rx: self }
        }
    }

    /// Blocking iterator over received messages; ends at disconnection.
    pub struct IntoIter<T> {
        rx: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a bounded channel with capacity `cap` (0 is treated as
    /// capacity 1: this shim has no rendezvous mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_try_send_sheds_when_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn cross_thread_handoff() {
            let (tx, rx) = bounded(4);
            let h = std::thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0u64;
            for _ in 0..1000 {
                sum += rx.recv().unwrap() as u64;
            }
            h.join().unwrap();
            assert_eq!(sum, 999 * 1000 / 2);
        }

        // Stress regressions for the lost-wakeup race (the final Drop
        // used to notify without the queue mutex, so a waiter between
        // its disconnect check and `Condvar::wait` could sleep
        // forever). These hang (rather than fail) if the race comes
        // back, which CI surfaces as a test timeout; the
        // *deterministic* regression — every interleaving, not 200
        // dice rolls — is `tests/check_models.rs`.
        #[test]
        fn receiver_wakes_when_last_sender_drops_concurrently() {
            for _ in 0..200 {
                let (tx, rx) = unbounded::<i32>();
                let h = std::thread::spawn(move || rx.recv());
                drop(tx);
                assert_eq!(h.join().unwrap(), Err(RecvError));
            }
        }

        #[test]
        fn sender_wakes_when_last_receiver_drops_concurrently() {
            for _ in 0..200 {
                let (tx, rx) = bounded::<i32>(1);
                tx.send(1).unwrap();
                let h = std::thread::spawn(move || tx.send(2));
                drop(rx);
                assert!(h.join().unwrap().is_err());
            }
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        // S2 guard: every condvar notification must live inside the
        // delimited "wakeup rules" block — the guard-taking helpers —
        // which is what keeps notify-under-lock auditable in one
        // place. Lexical assertion over this very file; the needle is
        // assembled at runtime so this test cannot match itself.
        #[test]
        fn wakeup_notifications_are_centralized_and_under_lock() {
            let src = include_str!("lib.rs");
            let needle = String::from(".notify") + "_";
            let start = src
                .find("// ---- wakeup rules")
                .expect("wakeup-rules start marker");
            let end = src
                .find("// ---- end wakeup rules")
                .expect("wakeup-rules end marker");
            assert!(start < end, "markers out of order");
            let block = &src[start..end];
            let outside =
                src[..start].matches(&needle).count() + src[end..].matches(&needle).count();
            assert_eq!(
                outside, 0,
                "a condvar notification escaped the wakeup-rules block"
            );
            assert_eq!(
                block.matches(&needle).count(),
                4,
                "expected exactly one notification per wakeup helper"
            );
        }
    }
}
