//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning
//! API (a panicked holder just releases the lock). Only the subset the
//! workspace uses is provided: `Mutex`/`RwLock` with infallible
//! `lock`/`read`/`write`.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A non-poisoning mutex.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A non-poisoning reader-writer lock.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
