//! Offline stand-in for `mio`.
//!
//! A minimal readiness API over raw Linux `epoll`, shaped like the
//! subset of mio the workspace uses: [`Poll`], [`Events`], [`Token`]
//! and [`Interest`], registering anything that is [`AsRawFd`]. The
//! syscalls are declared directly (`extern "C"` against the libc the
//! platform already links) so the crate stays dependency-free and
//! builds offline.
//!
//! Deviations from real mio, chosen for a smaller correct surface:
//!
//! - **Level-triggered**, not edge-triggered: an event keeps firing
//!   while the condition holds, so a handler that stops reading (e.g.
//!   for backpressure) simply sees the event again on the next wait.
//! - Registration takes `&impl AsRawFd` rather than a `Source` trait;
//!   the caller owns fd lifetimes and must `deregister` (or close)
//!   before dropping a registered fd.
//! - `Poll::poll` surfaces `EINTR` as an error for the caller to
//!   retry; it never tears state down.
//!
//! Linux-only: the readiness reactor this backs is gated to platforms
//! with epoll.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

#[allow(non_camel_case_types)]
type c_int = i32;

// Kernel ABI constants (uapi/linux/eventpoll.h).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

/// `struct epoll_event`: packed on x86-64 (the kernel ABI demands it
/// there), naturally aligned elsewhere.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Caller-chosen identifier carried by every readiness event for the
/// registered fd (typically a slab index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// What to watch a registration for. Combine with `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Readiness to read (includes peer half-close notification).
    pub const READABLE: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    /// Readiness to write.
    pub const WRITABLE: Interest = Interest(EPOLLOUT);

    fn mask(self) -> u32 {
        self.0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness event delivered by [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    flags: u32,
}

impl Event {
    /// The token the fd was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Data (or EOF/err — both unblock a read) can be read.
    pub fn is_readable(&self) -> bool {
        self.flags & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0
    }

    /// The socket can accept writes (or erred — a write will tell).
    pub fn is_writable(&self) -> bool {
        self.flags & (EPOLLOUT | EPOLLERR) != 0
    }

    /// The peer closed (at least) its write half: a read will reach
    /// EOF once the in-flight bytes are drained.
    pub fn is_read_closed(&self) -> bool {
        self.flags & (EPOLLRDHUP | EPOLLHUP) != 0
    }

    /// The fd is in an error state (e.g. connection reset).
    pub fn is_error(&self) -> bool {
        self.flags & EPOLLERR != 0
    }
}

/// Reusable buffer of readiness events.
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Number of events delivered by the last poll.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the last poll delivered nothing (pure timeout).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| Event {
            token: Token(e.data as usize),
            flags: e.events,
        })
    }
}

/// An epoll instance: register fds, then wait for readiness.
#[derive(Debug)]
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    /// Creates the epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poll> {
        // SAFETY: plain syscall, no pointers.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poll { epfd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
        let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is null only for EPOLL_CTL_DEL (where the
        // kernel ignores it) and otherwise points at a live stack
        // value for the duration of the call.
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, ptr) })?;
        Ok(())
    }

    /// Starts watching `source` for `interests`, tagging its events
    /// with `token`.
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interests.mask(),
            data: token.0 as u64,
        };
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), Some(&mut ev))
    }

    /// Replaces the interest set (and token) of a registered fd.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interests.mask(),
            data: token.0 as u64,
        };
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), Some(&mut ev))
    }

    /// Stops watching a registered fd.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }

    /// Blocks until at least one event is ready or `timeout` elapses
    /// (`None` waits forever). Returns the number of events delivered
    /// into `events` — `0` means the timeout fired. `EINTR` is
    /// returned as `ErrorKind::Interrupted` for the caller to retry.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => {
                // Round a sub-millisecond timeout up to 1 ms so a
                // short timeout never degenerates into a busy spin.
                let ms = d.as_millis();
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms.min(c_int::MAX as u128) as c_int
                }
            }
        };
        events.len = 0;
        // SAFETY: the buffer outlives the call and maxevents matches
        // its length.
        let n = cvt(unsafe {
            epoll_wait(
                self.epfd,
                events.buf.as_mut_ptr(),
                events.buf.len() as c_int,
                timeout_ms,
            )
        })?;
        events.len = n as usize;
        Ok(events.len)
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        // SAFETY: closing the fd we created; no further use follows.
        unsafe { close(self.epfd) };
    }
}

/// Socket types re-exported for signature compatibility with real mio
/// call sites (the stand-in registers plain `std::net` sockets).
pub mod net {
    pub use std::net::{TcpListener, TcpStream};
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    const T_LISTENER: Token = Token(0);
    const T_CONN: Token = Token(1);

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poll = Poll::new().unwrap();
        poll.register(&listener, T_LISTENER, Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);

        // Nothing connected yet: pure timeout.
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token(), T_LISTENER);
        assert!(ev.is_readable());
        assert!(!ev.is_read_closed());
    }

    #[test]
    fn stream_readability_tracks_data_and_eof() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poll = Poll::new().unwrap();
        poll.register(&server, T_CONN, Interest::READABLE).unwrap();
        let mut events = Events::with_capacity(8);

        client.write_all(b"hello").unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().is_readable());

        // Level-triggered: unread data keeps the event firing.
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert_eq!(n, 1, "level-triggered events must re-fire while unread");

        let mut s = server;
        let mut buf = [0u8; 16];
        assert_eq!(s.read(&mut buf).unwrap(), 5);

        // Drained and still open: quiet again.
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        // Peer close surfaces as readable + read-closed.
        drop(client);
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.is_readable());
        assert!(ev.is_read_closed());
        assert_eq!(s.read(&mut buf).unwrap(), 0, "read reaches EOF");
    }

    #[test]
    fn writable_interest_and_reregister() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poll = Poll::new().unwrap();
        // Watch both directions: an idle healthy socket is writable.
        poll.register(&server, T_CONN, Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        let n = poll
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.is_writable());
        assert!(!ev.is_readable());

        // Narrow back to read interest: the writable event stops.
        poll.reregister(&server, T_CONN, Interest::READABLE)
            .unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);

        // Deregister: even incoming data no longer wakes the poll.
        poll.deregister(&server).unwrap();
        let mut client = client;
        client.write_all(b"x").unwrap();
        let n = poll
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn tokens_distinguish_many_sources() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let poll = Poll::new().unwrap();
        let mut clients = Vec::new();
        let mut servers = Vec::new();
        for i in 0..16usize {
            let mut c = TcpStream::connect(addr).unwrap();
            let (s, _) = listener.accept().unwrap();
            s.set_nonblocking(true).unwrap();
            poll.register(&s, Token(100 + i), Interest::READABLE)
                .unwrap();
            if i % 2 == 0 {
                c.write_all(b"ping").unwrap();
            }
            clients.push(c);
            servers.push(s);
        }
        let mut events = Events::with_capacity(32);
        let mut seen = std::collections::BTreeSet::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while seen.len() < 8 && std::time::Instant::now() < deadline {
            poll.poll(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            for ev in events.iter() {
                assert!(ev.is_readable());
                seen.insert(ev.token().0);
            }
            // Drain so level-triggered events stop re-firing.
            for ev in events.iter() {
                let mut buf = [0u8; 8];
                let _ = Read::read(&mut &servers[ev.token().0 - 100], &mut buf);
            }
        }
        let expect: std::collections::BTreeSet<usize> =
            (0..16).filter(|i| i % 2 == 0).map(|i| 100 + i).collect();
        assert_eq!(seen, expect);
    }
}
