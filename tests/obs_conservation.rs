//! Cross-crate conservation through the metrics registry: the scraped
//! totals must reproduce the exact end-to-end identities the legacy
//! stats structs judge — for a fire-and-forget loadgen run,
//!
//! ```text
//! sent == applied + corrupt + shed + rejected_after_shutdown
//! ```
//!
//! and for a retry run through the fault-injecting proxy,
//!
//! ```text
//! enqueued == acked + dropped_after_retries + abandoned + pending
//! ```
//!
//! Each test drives real localhost TCP through the collector daemon,
//! then checks every identity twice: once on the legacy snapshot
//! structs and once on the registry, and asserts the two views agree
//! field by field (they read the same atomic cells, so any divergence
//! is a wiring bug in the registry layer).

use qtag_bench::proxy::{FaultProxy, FaultProxyConfig};
use qtag_collectd::{Collector, CollectorConfig};
use qtag_obs::RegistrySnapshot;
use qtag_server::{ReportBuilder, ServedImpression, ShardedStore};
use qtag_store::{
    replay, wal_path, DurableBackend, DurableConfig, StorageBackend, SyncPolicy, WalRecord,
};
use qtag_wire::framing::encode_frames;
use qtag_wire::sender::{BeaconSender, SenderConfig, SenderMetrics, TcpTransport};
use qtag_wire::{binary, AdFormat, Beacon, BrowserKind, EventKind, OsKind, SiteType};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn beacon(client: u64, seq_no: u64) -> Beacon {
    Beacon {
        impression_id: (client << 32) | seq_no,
        campaign_id: client as u32 + 1,
        event: EventKind::Heartbeat,
        timestamp_us: seq_no * 50_000,
        ad_format: AdFormat::Display,
        visible_fraction_milli: 700,
        exposure_ms: 1_000,
        os: OsKind::Android,
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        seq: seq_no as u16,
    }
}

fn get(snap: &RegistrySnapshot, name: &str) -> u64 {
    snap.value(name)
        .unwrap_or_else(|| panic!("registry metric {name} missing"))
}

/// Fire-and-forget clients (one of them corrupting a known number of
/// frames) against a sharded daemon: the registry must reproduce
/// `sent == applied + corrupt + shed + rejected` and agree with the
/// legacy ops snapshot on every field it mirrors.
#[test]
fn fire_and_forget_registry_reproduces_collector_identity() {
    const CLIENTS: u64 = 3;
    const PER_CLIENT: u64 = 1_500;
    const CORRUPT_EVERY: u64 = 97; // client 0 flips one byte per stride

    let collector = Collector::start_sharded(CollectorConfig::default(), ShardedStore::new(2))
        .expect("bind localhost");
    let addr = collector.local_addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let frame_len = 2 + binary::ENCODED_LEN;
                let mut stream = Vec::with_capacity(PER_CLIENT as usize * frame_len);
                let mut corrupted = 0u64;
                for seq_no in 0..PER_CLIENT {
                    let mut frame = encode_frames(&[beacon(client, seq_no)]).expect("encode");
                    if client == 0 && seq_no % CORRUPT_EVERY == 0 {
                        // Flip a payload byte past the length prefix and
                        // magic so the daemon counts exactly one corrupt
                        // frame and resynchronises.
                        frame[5] ^= 0x40;
                        corrupted += 1;
                    }
                    stream.extend_from_slice(&frame);
                }
                let mut sock = TcpStream::connect(addr).expect("connect");
                for chunk in stream.chunks(1024) {
                    sock.write_all(chunk).expect("write");
                }
                (PER_CLIENT, corrupted)
            })
        })
        .collect();
    let mut sent = 0u64;
    let mut corrupted = 0u64;
    for h in handles {
        let (s, c) = h.join().expect("client thread");
        sent += s;
        corrupted += c;
    }

    let registry = Arc::clone(collector.registry());
    let ops = collector.shutdown();
    let snap = registry.snapshot();

    // The identity, judged on the registry alone.
    let applied = get(&snap, "qtag_ingest_beacons_total");
    let corrupt = get(&snap, "qtag_collectd_corrupt_frames_total");
    let shed = get(&snap, "qtag_ingest_shed_beacons_total");
    let rejected = get(&snap, "qtag_ingest_rejected_after_shutdown_total");
    assert_eq!(
        sent,
        applied + corrupt + shed + rejected,
        "registry conservation: sent {sent} vs {applied}+{corrupt}+{shed}+{rejected}"
    );
    assert_eq!(corrupt, corrupted, "every injected flip counted once");

    // Decode accounting, registry view: every decoded frame was
    // applied, shed, or rejected at shutdown.
    let decoded = get(&snap, "qtag_collectd_frames_decoded_total");
    assert_eq!(decoded, applied + shed + rejected);

    // The legacy snapshot and the registry read the same cells.
    assert!(ops.conserves(sent), "{ops:?}");
    assert_eq!(applied, ops.ingest.beacons);
    assert_eq!(corrupt, ops.collector.corrupt_frames);
    assert_eq!(shed, ops.ingest.shed_beacons);
    assert_eq!(rejected, ops.ingest.rejected_after_shutdown);
    assert_eq!(decoded, ops.collector.frames_decoded);
    assert_eq!(
        get(&snap, "qtag_collectd_connections_accepted_total"),
        ops.collector.connections_accepted
    );
    assert_eq!(
        get(&snap, "qtag_collectd_bytes_read_total"),
        ops.collector.bytes_read
    );
    assert_eq!(
        get(&snap, "qtag_ingest_beacon_batches_total"),
        ops.ingest.beacon_batches
    );

    // Instrumentation sanity after a drained shutdown. Appliers group-
    // commit: each apply group folds one or more enqueued batches, so
    // the exactly-once identity lives on the merged counter while the
    // latency histogram sees one observation per group.
    let groups = get(&snap, "qtag_ingest_batches_applied_total");
    assert_eq!(
        get(&snap, "qtag_ingest_batches_merged_total"),
        ops.ingest.beacon_batches,
        "every enqueued batch folded into exactly one apply group"
    );
    assert!(groups >= 1 && groups <= ops.ingest.beacon_batches);
    let hist = snap
        .histogram("qtag_ingest_apply_latency_us")
        .expect("apply latency histogram registered");
    assert_eq!(hist.count, groups, "one latency observation per group");
    assert_eq!(get(&snap, "qtag_ingest_queue_depth"), 0, "drained");
    assert_eq!(get(&snap, "qtag_collectd_connections_active"), 0);
}

/// Retry clients through the fault-injecting proxy: the registry's
/// sender family must reproduce `enqueued == acked + dropped +
/// abandoned + pending` and agree with the summed legacy SenderStats.
#[test]
fn retry_through_fault_proxy_registry_reproduces_sender_identity() {
    const CLIENTS: u64 = 2;
    const PER_CLIENT: u64 = 600;

    let store = ShardedStore::new(2);
    for client in 0..CLIENTS {
        for seq_no in 0..PER_CLIENT {
            let b = beacon(client, seq_no);
            store.record_served(ServedImpression {
                impression_id: b.impression_id,
                campaign_id: b.campaign_id,
                os: b.os,
                browser: b.browser,
                site_type: b.site_type,
                ad_format: b.ad_format,
            });
        }
    }
    let collector =
        Collector::start_sharded(CollectorConfig::default(), store.clone()).expect("bind");
    let proxy = FaultProxy::start(FaultProxyConfig::soak(collector.local_addr(), 0x0B5C))
        .expect("start proxy");
    let addr = proxy.local_addr();

    let registry = Arc::clone(collector.registry());
    let metrics = SenderMetrics::register(&registry, "qtag_sender");

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                let mut sender = BeaconSender::new(
                    TcpTransport::new(addr),
                    SenderConfig {
                        seed: 0xC0_u64.wrapping_add(client),
                        ack_timeout_us: 250_000,
                        backoff_base_us: 5_000,
                        backoff_max_us: 100_000,
                        reconnect_backoff_us: 10_000,
                        ..SenderConfig::default()
                    },
                );
                sender.attach_metrics(metrics);
                let t0 = Instant::now();
                let now_us = || t0.elapsed().as_micros() as u64;
                for seq_no in 0..PER_CLIENT {
                    let b = beacon(client, seq_no);
                    while !sender.offer(&b, now_us()).expect("encodes") {
                        sender.pump(now_us());
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    if seq_no % 32 == 0 {
                        sender.pump(now_us());
                    }
                }
                let deadline = Duration::from_secs(120);
                while !sender.is_idle() && t0.elapsed() < deadline {
                    sender.pump(now_us());
                    std::thread::sleep(Duration::from_millis(1));
                }
                sender.abandon_pending();
                sender.stats()
            })
        })
        .collect();
    let stats: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("retry client"))
        .collect();
    proxy.shutdown();
    let ops = collector.shutdown();
    let snap = registry.snapshot();

    // The sender identity, judged on the registry alone. After the
    // drain + abandon, pending must be zero and the counters closed.
    let enqueued = get(&snap, "qtag_sender_enqueued_total");
    let acked = get(&snap, "qtag_sender_acked_total");
    let dropped = get(&snap, "qtag_sender_dropped_after_retries_total");
    let abandoned = get(&snap, "qtag_sender_abandoned_unconfirmed_total");
    let pending = get(&snap, "qtag_sender_pending");
    assert_eq!(
        enqueued,
        acked + dropped + abandoned + pending,
        "registry sender conservation"
    );
    assert_eq!(pending, 0, "every frame resolved");

    // Registry vs the summed legacy stats, field by field.
    assert_eq!(enqueued, stats.iter().map(|s| s.enqueued).sum::<u64>());
    assert_eq!(acked, stats.iter().map(|s| s.acked).sum::<u64>());
    assert_eq!(
        dropped,
        stats.iter().map(|s| s.dropped_after_retries).sum::<u64>()
    );
    assert_eq!(
        abandoned,
        stats.iter().map(|s| s.abandoned_unconfirmed).sum::<u64>()
    );
    assert_eq!(
        get(&snap, "qtag_sender_retransmits_total"),
        stats.iter().map(|s| s.retransmits).sum::<u64>()
    );

    // Cross-side agreement: acks equal unique applied beacons (the
    // store deduplicates retransmits and the collector re-acks them).
    assert_eq!(acked, store.unique_beacons(), "{ops:?}");
    let hist = snap
        .histogram("qtag_sender_ack_latency_us")
        .expect("ack latency registered");
    assert_eq!(hist.count, acked, "one latency sample per acked frame");
    assert!(
        snap.histogram("qtag_sender_backoff_us").is_some(),
        "backoff histogram registered"
    );
}

/// Kill-and-recover soak (the durability tentpole, end to end): retry
/// clients stream through the fault proxy into a journaled daemon, the
/// proxy hard-kills the stream at a seeded crash point, the collector
/// is crash-stopped (in-flight batches discarded whole, no drain), and
/// the store is recovered from the WAL in a fresh backend. Post-crash:
///
/// * conservation with an in-flight term —
///   `enqueued == applied + in_flight_discarded`, `in_flight >= 0`,
///   and the decode identity still closes on the live registry;
/// * recovery is **bit-identical** to the live post-crash store
///   (records, counters, reports, rollups — journaling and applying
///   happen atomically under the shard lock, so the WAL can neither
///   lead nor trail the store across a crash);
/// * dedup state survives: re-applying an already-acked beacon to the
///   recovered store counts a duplicate, not a new unique.
#[test]
fn kill_and_recover_soak_conserves_and_recovery_is_bit_identical() {
    const CLIENTS: u64 = 2;
    const PER_CLIENT: u64 = 600;
    // The proxy reads ~2 KiB chunks; 1 200 frames of ~40 B coalesce
    // into roughly 25-30 chunks, so this lands inside the first blast
    // with retransmits still pending — a genuinely mid-stream kill.
    const CRASH_AFTER_CHUNKS: u64 = 25;

    // Scratch WAL dir: process id + pid-unique tag, no wall clock.
    let wal_dir = std::env::temp_dir().join(format!("qtag-kill-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).expect("create wal dir");
    let open = || {
        DurableBackend::open(DurableConfig {
            dir: wal_dir.clone(),
            shards: 2,
            sync: SyncPolicy::Batch,
        })
    };
    let (backend, fresh) = open().expect("open durable backend");
    assert_eq!(fresh.records_replayed, 0, "fresh dir");

    for client in 0..CLIENTS {
        for seq_no in 0..PER_CLIENT {
            let b = beacon(client, seq_no);
            backend.record_served(ServedImpression {
                impression_id: b.impression_id,
                campaign_id: b.campaign_id,
                os: b.os,
                browser: b.browser,
                site_type: b.site_type,
                ad_format: b.ad_format,
            });
        }
    }

    let collector = Collector::start_sharded_journaled(
        CollectorConfig::default(),
        backend.store().clone(),
        backend.journal(),
    )
    .expect("bind");
    let mut proxy_cfg = FaultProxyConfig::soak(collector.local_addr(), 0xD1ED);
    proxy_cfg.crash_after = Some(CRASH_AFTER_CHUNKS);
    let proxy = FaultProxy::start(proxy_cfg).expect("start proxy");
    let addr = proxy.local_addr();

    let registry = Arc::clone(collector.registry());
    let metrics = SenderMetrics::register(&registry, "qtag_sender");
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                let mut sender = BeaconSender::new(
                    TcpTransport::new(addr),
                    SenderConfig {
                        seed: 0xDEAD_u64.wrapping_add(client),
                        ack_timeout_us: 100_000,
                        backoff_base_us: 2_000,
                        backoff_max_us: 40_000,
                        reconnect_backoff_us: 5_000,
                        max_attempts: 4,
                        ..SenderConfig::default()
                    },
                );
                sender.attach_metrics(metrics);
                let t0 = Instant::now();
                let now_us = || t0.elapsed().as_micros() as u64;
                for seq_no in 0..PER_CLIENT {
                    let b = beacon(client, seq_no);
                    let mut spins = 0u32;
                    while !sender.offer(&b, now_us()).expect("encodes") {
                        sender.pump(now_us());
                        std::thread::sleep(Duration::from_micros(500));
                        spins += 1;
                        if spins > 4_000 {
                            // The proxy is dead and the window never
                            // frees up; stop feeding.
                            sender.abandon_pending();
                            return sender.stats();
                        }
                    }
                    if seq_no % 32 == 0 {
                        sender.pump(now_us());
                    }
                }
                let deadline = Duration::from_secs(10);
                while !sender.is_idle() && t0.elapsed() < deadline {
                    sender.pump(now_us());
                    std::thread::sleep(Duration::from_millis(1));
                }
                sender.abandon_pending();
                sender.stats()
            })
        })
        .collect();

    // Wait for the proxy's crash point to fire, then hard-kill the
    // daemon: abort appliers first so queued batches are discarded
    // whole, never half-journaled.
    let t0 = Instant::now();
    while !proxy.has_crashed() && t0.elapsed() < Duration::from_secs(60) {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(proxy.has_crashed(), "crash point must fire mid-stream");
    let ops = collector.crash();
    let stats: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("retry client"))
        .collect();
    let pstats = proxy.stats();
    assert!(
        pstats
            .forwarded_chunks
            .load(std::sync::atomic::Ordering::Relaxed)
            >= CRASH_AFTER_CHUNKS,
        "crash point is a forwarded-chunk threshold"
    );
    assert_eq!(
        pstats.crashes.load(std::sync::atomic::Ordering::Relaxed),
        1,
        "the crash point fires exactly once"
    );
    proxy.shutdown();

    // Sender-side conservation still closes: every enqueued frame is
    // acked, dropped after retries, or abandoned at the kill.
    let enqueued: u64 = stats.iter().map(|s| s.enqueued).sum();
    let acked: u64 = stats.iter().map(|s| s.acked).sum();
    let dropped: u64 = stats.iter().map(|s| s.dropped_after_retries).sum();
    let abandoned: u64 = stats.iter().map(|s| s.abandoned_unconfirmed).sum();
    assert_eq!(enqueued, acked + dropped + abandoned, "sender identity");
    assert!(acked > 0, "crash point must land mid-stream, not before it");

    // Daemon-side conservation with the in-flight term: beacons are
    // counted at enqueue into the shard channels, so the crash leaves
    // `in_flight_discarded = enqueued_into_ingest - applied` batches
    // that were accepted but never journaled or applied.
    let live = backend.store();
    let applied_live = live.unique_beacons() + live.total_duplicates() + live.orphan_beacons();
    assert!(
        ops.ingest.beacons >= applied_live,
        "applied cannot exceed ingest-accepted"
    );
    let in_flight_discarded = ops.ingest.beacons - applied_live;
    let snap = registry.snapshot();
    let decoded = get(&snap, "qtag_collectd_frames_decoded_total");
    let ingested = get(&snap, "qtag_ingest_beacons_total");
    let shed = get(&snap, "qtag_ingest_shed_beacons_total");
    let rejected = get(&snap, "qtag_ingest_rejected_after_shutdown_total");
    assert_eq!(decoded, ingested + shed + rejected, "decode identity");
    assert_eq!(ingested, applied_live + in_flight_discarded, "conservation");
    assert_eq!(live.orphan_beacons(), 0, "every impression was registered");

    // Snapshot the live post-crash state, then recover from disk.
    let live_unique = live.unique_beacons();
    let live_dups = live.total_duplicates();
    let live_served = live.served_count();
    let live_report = ReportBuilder::per_campaign_sharded(live);
    let live_hourly = backend.merged_hourly().export_state();
    let live_daily = backend.merged_daily().export_state();
    let wal_records: u64 = backend.stats().snapshot().records_appended;
    drop(backend);

    let (recovered, report) = open().expect("recover from WAL");
    assert_eq!(report.truncated_tails, 0, "batch appends are whole frames");
    assert_eq!(report.records_replayed, wal_records);
    let store = recovered.store();
    assert_eq!(store.unique_beacons(), live_unique, "uniques recovered");
    assert_eq!(
        store.total_duplicates(),
        live_dups,
        "dup counters recovered"
    );
    assert_eq!(store.served_count(), live_served, "registers recovered");
    assert_eq!(
        ReportBuilder::per_campaign_sharded(store),
        live_report,
        "recovered reports bit-identical to live post-crash reports"
    );
    assert_eq!(recovered.merged_hourly().export_state(), live_hourly);
    assert_eq!(recovered.merged_daily().export_state(), live_daily);

    // Exactly-once survives recovery: a beacon taken from the WAL
    // itself (journaled, therefore applied) re-sent to the recovered
    // store is a duplicate, not a second apply — the SeqSeen dedup
    // state came back with the replay.
    let journaled = (0..2)
        .filter_map(|shard| {
            let log = replay(&wal_path(&wal_dir, shard)).expect("read wal");
            log.records.into_iter().find_map(|r| match r {
                WalRecord::Beacon(b) => Some(b),
                _ => None,
            })
        })
        .next()
        .expect("the crash landed mid-stream, so beacons were journaled");
    recovered.apply(&journaled);
    assert_eq!(recovered.store().unique_beacons(), live_unique);
    assert_eq!(recovered.store().total_duplicates(), live_dups + 1);
    drop(recovered);
    std::fs::remove_dir_all(&wal_dir).unwrap();
}
