//! Cross-crate conservation through the metrics registry: the scraped
//! totals must reproduce the exact end-to-end identities the legacy
//! stats structs judge — for a fire-and-forget loadgen run,
//!
//! ```text
//! sent == applied + corrupt + shed + rejected_after_shutdown
//! ```
//!
//! and for a retry run through the fault-injecting proxy,
//!
//! ```text
//! enqueued == acked + dropped_after_retries + abandoned + pending
//! ```
//!
//! Each test drives real localhost TCP through the collector daemon,
//! then checks every identity twice: once on the legacy snapshot
//! structs and once on the registry, and asserts the two views agree
//! field by field (they read the same atomic cells, so any divergence
//! is a wiring bug in the registry layer).

use qtag_bench::proxy::{FaultProxy, FaultProxyConfig};
use qtag_collectd::{Collector, CollectorConfig};
use qtag_obs::RegistrySnapshot;
use qtag_server::{ServedImpression, ShardedStore};
use qtag_wire::framing::encode_frames;
use qtag_wire::sender::{BeaconSender, SenderConfig, SenderMetrics, TcpTransport};
use qtag_wire::{binary, AdFormat, Beacon, BrowserKind, EventKind, OsKind, SiteType};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn beacon(client: u64, seq_no: u64) -> Beacon {
    Beacon {
        impression_id: (client << 32) | seq_no,
        campaign_id: client as u32 + 1,
        event: EventKind::Heartbeat,
        timestamp_us: seq_no * 50_000,
        ad_format: AdFormat::Display,
        visible_fraction_milli: 700,
        exposure_ms: 1_000,
        os: OsKind::Android,
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        seq: seq_no as u16,
    }
}

fn get(snap: &RegistrySnapshot, name: &str) -> u64 {
    snap.value(name)
        .unwrap_or_else(|| panic!("registry metric {name} missing"))
}

/// Fire-and-forget clients (one of them corrupting a known number of
/// frames) against a sharded daemon: the registry must reproduce
/// `sent == applied + corrupt + shed + rejected` and agree with the
/// legacy ops snapshot on every field it mirrors.
#[test]
fn fire_and_forget_registry_reproduces_collector_identity() {
    const CLIENTS: u64 = 3;
    const PER_CLIENT: u64 = 1_500;
    const CORRUPT_EVERY: u64 = 97; // client 0 flips one byte per stride

    let collector = Collector::start_sharded(CollectorConfig::default(), ShardedStore::new(2))
        .expect("bind localhost");
    let addr = collector.local_addr();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let frame_len = 2 + binary::ENCODED_LEN;
                let mut stream = Vec::with_capacity(PER_CLIENT as usize * frame_len);
                let mut corrupted = 0u64;
                for seq_no in 0..PER_CLIENT {
                    let mut frame = encode_frames(&[beacon(client, seq_no)]).expect("encode");
                    if client == 0 && seq_no % CORRUPT_EVERY == 0 {
                        // Flip a payload byte past the length prefix and
                        // magic so the daemon counts exactly one corrupt
                        // frame and resynchronises.
                        frame[5] ^= 0x40;
                        corrupted += 1;
                    }
                    stream.extend_from_slice(&frame);
                }
                let mut sock = TcpStream::connect(addr).expect("connect");
                for chunk in stream.chunks(1024) {
                    sock.write_all(chunk).expect("write");
                }
                (PER_CLIENT, corrupted)
            })
        })
        .collect();
    let mut sent = 0u64;
    let mut corrupted = 0u64;
    for h in handles {
        let (s, c) = h.join().expect("client thread");
        sent += s;
        corrupted += c;
    }

    let registry = Arc::clone(collector.registry());
    let ops = collector.shutdown();
    let snap = registry.snapshot();

    // The identity, judged on the registry alone.
    let applied = get(&snap, "qtag_ingest_beacons_total");
    let corrupt = get(&snap, "qtag_collectd_corrupt_frames_total");
    let shed = get(&snap, "qtag_ingest_shed_beacons_total");
    let rejected = get(&snap, "qtag_ingest_rejected_after_shutdown_total");
    assert_eq!(
        sent,
        applied + corrupt + shed + rejected,
        "registry conservation: sent {sent} vs {applied}+{corrupt}+{shed}+{rejected}"
    );
    assert_eq!(corrupt, corrupted, "every injected flip counted once");

    // Decode accounting, registry view: every decoded frame was
    // applied, shed, or rejected at shutdown.
    let decoded = get(&snap, "qtag_collectd_frames_decoded_total");
    assert_eq!(decoded, applied + shed + rejected);

    // The legacy snapshot and the registry read the same cells.
    assert!(ops.conserves(sent), "{ops:?}");
    assert_eq!(applied, ops.ingest.beacons);
    assert_eq!(corrupt, ops.collector.corrupt_frames);
    assert_eq!(shed, ops.ingest.shed_beacons);
    assert_eq!(rejected, ops.ingest.rejected_after_shutdown);
    assert_eq!(decoded, ops.collector.frames_decoded);
    assert_eq!(
        get(&snap, "qtag_collectd_connections_accepted_total"),
        ops.collector.connections_accepted
    );
    assert_eq!(
        get(&snap, "qtag_collectd_bytes_read_total"),
        ops.collector.bytes_read
    );
    assert_eq!(
        get(&snap, "qtag_ingest_beacon_batches_total"),
        ops.ingest.beacon_batches
    );

    // Instrumentation sanity after a drained shutdown: the latency
    // histogram saw every applied batch and the queue is empty.
    assert_eq!(
        get(&snap, "qtag_ingest_batches_applied_total"),
        ops.ingest.beacon_batches,
        "every batch applied exactly once"
    );
    let hist = snap
        .histogram("qtag_ingest_apply_latency_us")
        .expect("apply latency histogram registered");
    assert_eq!(hist.count, ops.ingest.beacon_batches);
    assert_eq!(get(&snap, "qtag_ingest_queue_depth"), 0, "drained");
    assert_eq!(get(&snap, "qtag_collectd_connections_active"), 0);
}

/// Retry clients through the fault-injecting proxy: the registry's
/// sender family must reproduce `enqueued == acked + dropped +
/// abandoned + pending` and agree with the summed legacy SenderStats.
#[test]
fn retry_through_fault_proxy_registry_reproduces_sender_identity() {
    const CLIENTS: u64 = 2;
    const PER_CLIENT: u64 = 600;

    let store = ShardedStore::new(2);
    for client in 0..CLIENTS {
        for seq_no in 0..PER_CLIENT {
            let b = beacon(client, seq_no);
            store.record_served(ServedImpression {
                impression_id: b.impression_id,
                campaign_id: b.campaign_id,
                os: b.os,
                browser: b.browser,
                site_type: b.site_type,
                ad_format: b.ad_format,
            });
        }
    }
    let collector =
        Collector::start_sharded(CollectorConfig::default(), store.clone()).expect("bind");
    let proxy = FaultProxy::start(FaultProxyConfig::soak(collector.local_addr(), 0x0B5C))
        .expect("start proxy");
    let addr = proxy.local_addr();

    let registry = Arc::clone(collector.registry());
    let metrics = SenderMetrics::register(&registry, "qtag_sender");

    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || {
                let mut sender = BeaconSender::new(
                    TcpTransport::new(addr),
                    SenderConfig {
                        seed: 0xC0_u64.wrapping_add(client),
                        ack_timeout_us: 250_000,
                        backoff_base_us: 5_000,
                        backoff_max_us: 100_000,
                        reconnect_backoff_us: 10_000,
                        ..SenderConfig::default()
                    },
                );
                sender.attach_metrics(metrics);
                let t0 = Instant::now();
                let now_us = || t0.elapsed().as_micros() as u64;
                for seq_no in 0..PER_CLIENT {
                    let b = beacon(client, seq_no);
                    while !sender.offer(&b, now_us()).expect("encodes") {
                        sender.pump(now_us());
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    if seq_no % 32 == 0 {
                        sender.pump(now_us());
                    }
                }
                let deadline = Duration::from_secs(120);
                while !sender.is_idle() && t0.elapsed() < deadline {
                    sender.pump(now_us());
                    std::thread::sleep(Duration::from_millis(1));
                }
                sender.abandon_pending();
                sender.stats()
            })
        })
        .collect();
    let stats: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("retry client"))
        .collect();
    proxy.shutdown();
    let ops = collector.shutdown();
    let snap = registry.snapshot();

    // The sender identity, judged on the registry alone. After the
    // drain + abandon, pending must be zero and the counters closed.
    let enqueued = get(&snap, "qtag_sender_enqueued_total");
    let acked = get(&snap, "qtag_sender_acked_total");
    let dropped = get(&snap, "qtag_sender_dropped_after_retries_total");
    let abandoned = get(&snap, "qtag_sender_abandoned_unconfirmed_total");
    let pending = get(&snap, "qtag_sender_pending");
    assert_eq!(
        enqueued,
        acked + dropped + abandoned + pending,
        "registry sender conservation"
    );
    assert_eq!(pending, 0, "every frame resolved");

    // Registry vs the summed legacy stats, field by field.
    assert_eq!(enqueued, stats.iter().map(|s| s.enqueued).sum::<u64>());
    assert_eq!(acked, stats.iter().map(|s| s.acked).sum::<u64>());
    assert_eq!(
        dropped,
        stats.iter().map(|s| s.dropped_after_retries).sum::<u64>()
    );
    assert_eq!(
        abandoned,
        stats.iter().map(|s| s.abandoned_unconfirmed).sum::<u64>()
    );
    assert_eq!(
        get(&snap, "qtag_sender_retransmits_total"),
        stats.iter().map(|s| s.retransmits).sum::<u64>()
    );

    // Cross-side agreement: acks equal unique applied beacons (the
    // store deduplicates retransmits and the collector re-acks them).
    assert_eq!(acked, store.unique_beacons(), "{ops:?}");
    let hist = snap
        .histogram("qtag_sender_ack_latency_us")
        .expect("ack latency registered");
    assert_eq!(hist.count, acked, "one latency sample per acked frame");
    assert!(
        snap.histogram("qtag_sender_backoff_us").is_some(),
        "backoff histogram registered"
    );
}
