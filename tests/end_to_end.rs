//! End-to-end integration tests spanning every crate: auction → serving
//! → markup → session → tag → wire → transport → ingestion → report.

use qtag::adtech::{
    embed_served_ad, AdSlotRequest, Campaign, CampaignId, Dsp, Exchange, ExchangeKind, GeoRegion,
    Sector, ServedAd, ServingOrigins,
};
use qtag::core::{QTag, QTagConfig};
use qtag::dom::{Origin, Page, Screen, Tab, TabId, WindowKind};
use qtag::geometry::{Rect, Size, Vector};
use qtag::render::{Engine, EngineConfig, SimDuration};
use qtag::server::sync::Mutex;
use qtag::server::{ImpressionStore, IngestService, LossyLink, ReportBuilder, ServedImpression};
use qtag::user::{EnvSample, Population, PopulationConfig, SessionSim};
use qtag::wire::{AdFormat, EventKind, OsKind, SiteType};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// The complete story of one impression, crossing every crate boundary
/// in the workspace, with the server's verdict checked at the end.
#[test]
fn one_impression_travels_the_whole_stack() {
    // --- buy side ---
    let mut dsp = Dsp::new(vec![Campaign::display(
        9,
        "EndToEnd Inc",
        Sector::Technology,
        Size::MEDIUM_RECTANGLE,
    )]);
    let mut exchange = Exchange::new(ExchangeKind::AppNexus);
    let req = AdSlotRequest {
        request_id: 1,
        geo: GeoRegion::Germany,
        os: OsKind::Windows10,
        browser: qtag::wire::BrowserKind::Chrome,
        site_type: SiteType::Browser,
        slot_size: Size::MEDIUM_RECTANGLE,
        floor_cpm_milli: 100,
    };
    let (ad, outcome) = exchange.run(&req, &mut dsp).expect("auction fills");
    assert_eq!(outcome.winner.campaign, CampaignId(9));
    assert!(
        ad.paid_cpm_milli <= 1000,
        "second price never exceeds the bid"
    );

    // --- sell side: page + markup ---
    let mut page = Page::new(
        Origin::https("publisher.example"),
        Size::new(1280.0, 2000.0),
    );
    let origins = ServingOrigins::default();
    let placement = embed_served_ad(
        &mut page,
        Rect::new(200.0, 100.0, 300.0, 250.0),
        &ad,
        &origins,
    )
    .expect("embed");
    assert_eq!(page.cross_origin_depth(placement.dsp_frame).unwrap(), 2);

    // --- browser + tag ---
    let mut screen = Screen::desktop();
    let window = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
    let cfg = QTagConfig::new(ad.impression_id, ad.campaign_id.0, placement.creative_rect);
    engine
        .attach_script(
            window,
            Some(TabId(0)),
            placement.dsp_frame,
            Origin::parse(&origins.dsp).unwrap(),
            Box::new(QTag::new(cfg)),
        )
        .unwrap();
    engine.run_for(SimDuration::from_secs(2));
    let beacons: Vec<_> = engine
        .drain_outbox()
        .into_iter()
        .map(|o| o.beacon)
        .collect();
    assert!(beacons.iter().any(|b| b.event == EventKind::InView));

    // --- wire + transport + threaded ingestion ---
    let store = Arc::new(Mutex::new(ImpressionStore::new()));
    store.lock().record_served(ServedImpression {
        impression_id: ad.impression_id,
        campaign_id: ad.campaign_id.0,
        os: OsKind::Windows10,
        browser: qtag::wire::BrowserKind::Chrome,
        site_type: SiteType::Browser,
        ad_format: ad.format,
    });
    let service = IngestService::start(Arc::clone(&store), 2);
    let mut link = LossyLink::lossless();
    service.submit(ad.impression_id, link.transmit(&beacons).unwrap());
    service.shutdown();

    // --- report ---
    let store = store.lock();
    assert_eq!(store.verdict(ad.impression_id), (true, true));
    let reports = ReportBuilder::per_campaign(&store);
    assert_eq!(reports[0].total.measured_rate(), 1.0);
    assert_eq!(reports[0].total.viewability_rate(), 1.0);
}

/// Both tags on the same impression report through independent
/// pipelines; the environment decides which of them can measure.
#[test]
fn dual_tag_session_diverges_only_in_hostile_environments() {
    let ad = ServedAd {
        impression_id: 77,
        campaign_id: CampaignId(1),
        creative_size: Size::MOBILE_BANNER,
        format: AdFormat::Display,
        paid_cpm_milli: 500,
    };
    let sim = SessionSim {
        above_fold_share: 1.0,
        ..SessionSim::default()
    };

    let mut healthy = EnvSample {
        site_type: SiteType::App,
        os: OsKind::Android,
        bounce: false,
        qtag_fetch_fail: false,
        verifier_fetch_fail: false,
        legacy_env: false,
        beacon_loss: 0.0,
        cpu_load: 0.1,
    };
    let out = sim.run(&ad, &healthy, 1);
    let measured = |bs: &[qtag::wire::Beacon]| bs.iter().any(|b| b.event == EventKind::Measurable);
    assert!(measured(&out.qtag_beacons));
    assert!(measured(&out.verifier_beacons));

    healthy.legacy_env = true;
    let out = sim.run(&ad, &healthy, 1);
    assert!(
        measured(&out.qtag_beacons),
        "Q-Tag survives legacy webviews"
    );
    assert!(out.verifier_beacons.is_empty(), "verifier SDK sandboxed");
}

/// A user who scrolls past the ad too quickly produces a *measured but
/// not viewed* impression — the distinction at the heart of the paper's
/// two metrics.
#[test]
fn fast_scroll_is_measured_but_not_viewed() {
    let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 4000.0));
    let ad_frame = page.create_frame(Origin::https("dsp.example"), Size::MEDIUM_RECTANGLE);
    page.embed_iframe(
        page.root(),
        ad_frame,
        Rect::new(400.0, 1500.0, 300.0, 250.0),
    )
    .unwrap();
    let mut screen = Screen::desktop();
    let window = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
    let cfg = QTagConfig::new(5, 1, Rect::new(0.0, 0.0, 300.0, 250.0));
    engine
        .attach_script(
            window,
            Some(TabId(0)),
            ad_frame,
            Origin::https("dsp.example"),
            Box::new(QTag::new(cfg)),
        )
        .unwrap();

    // Read the top for a second, flash past the ad in 400 ms, read the
    // bottom.
    engine.run_for(SimDuration::from_secs(1));
    engine
        .scroll_page_to(window, Some(TabId(0)), Vector::new(0.0, 1400.0))
        .unwrap();
    engine.run_for(SimDuration::from_millis(400));
    engine
        .scroll_page_to(window, Some(TabId(0)), Vector::new(0.0, 3100.0))
        .unwrap();
    engine.run_for(SimDuration::from_secs(2));

    let mut store = ImpressionStore::new();
    store.record_served(ServedImpression {
        impression_id: 5,
        campaign_id: 1,
        os: OsKind::Windows10,
        browser: qtag::wire::BrowserKind::Chrome,
        site_type: SiteType::Browser,
        ad_format: AdFormat::Display,
    });
    for o in engine.drain_outbox() {
        store.apply(&o.beacon);
    }
    assert_eq!(
        store.verdict(5),
        (true, false),
        "400 ms of exposure is measured, not viewed"
    );
}

/// Clicks travel the whole stack too: only clicks on visible creatives
/// dispatch, the tag reports them, and the store records them.
#[test]
fn click_lifecycle_respects_visibility() {
    let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 3000.0));
    let frame = page.create_frame(Origin::https("dsp.example"), Size::MEDIUM_RECTANGLE);
    page.embed_iframe(page.root(), frame, Rect::new(300.0, 200.0, 300.0, 250.0))
        .unwrap();
    let mut screen = Screen::desktop();
    let window = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
    let cfg = QTagConfig::new(44, 1, Rect::new(0.0, 0.0, 300.0, 250.0));
    engine
        .attach_script(
            window,
            Some(TabId(0)),
            frame,
            Origin::https("dsp.example"),
            Box::new(QTag::new(cfg)),
        )
        .unwrap();
    engine.run_for(SimDuration::from_millis(500));

    // Click beside the ad: nobody receives it.
    assert_eq!(
        engine
            .click_at(
                window,
                Some(TabId(0)),
                qtag::geometry::Point::new(50.0, 50.0)
            )
            .unwrap(),
        0
    );
    // Click on the ad (viewport coords = doc coords, unscrolled page).
    assert_eq!(
        engine
            .click_at(
                window,
                Some(TabId(0)),
                qtag::geometry::Point::new(450.0, 325.0)
            )
            .unwrap(),
        1
    );
    // Scroll the ad away; the same point no longer hits it.
    engine
        .scroll_page_to(window, Some(TabId(0)), Vector::new(0.0, 2000.0))
        .unwrap();
    engine.run_for(SimDuration::from_millis(100));
    assert_eq!(
        engine
            .click_at(
                window,
                Some(TabId(0)),
                qtag::geometry::Point::new(450.0, 325.0)
            )
            .unwrap(),
        0
    );

    // The click beacon reaches the store.
    let mut store = ImpressionStore::new();
    store.record_served(ServedImpression {
        impression_id: 44,
        campaign_id: 1,
        os: OsKind::Windows10,
        browser: qtag::wire::BrowserKind::Chrome,
        site_type: SiteType::Browser,
        ad_format: AdFormat::Display,
    });
    for o in engine.drain_outbox() {
        store.apply(&o.beacon);
    }
    assert!(store.record(44).unwrap().clicked);
    let reports = ReportBuilder::per_campaign(&store);
    assert_eq!(reports[0].total.clicked, 1);
    assert!((reports[0].total.ctr() - 1.0).abs() < 1e-12);
}

/// Population-driven mini-fleet: the measured-rate ordering of the
/// paper (Q-Tag > commercial) must emerge from any seed.
#[test]
fn measured_rate_ordering_is_seed_independent() {
    let population = Population::new(PopulationConfig::default());
    let sim = SessionSim::default();
    for seed in [3u64, 17, 4242] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut qtag_measured = 0u32;
        let mut verifier_measured = 0u32;
        let n = 120u32;
        for i in 0..n {
            let env = population.sample(&mut rng);
            let ad = ServedAd {
                impression_id: u64::from(i) + 1,
                campaign_id: CampaignId(1),
                creative_size: Size::MEDIUM_RECTANGLE,
                format: AdFormat::Display,
                paid_cpm_milli: 700,
            };
            let out = sim.run(&ad, &env, seed ^ u64::from(i));
            if out
                .qtag_beacons
                .iter()
                .any(|b| b.event == EventKind::Measurable)
            {
                qtag_measured += 1;
            }
            if out
                .verifier_beacons
                .iter()
                .any(|b| b.event == EventKind::Measurable)
            {
                verifier_measured += 1;
            }
        }
        assert!(
            qtag_measured > verifier_measured,
            "seed {seed}: qtag {qtag_measured} vs verifier {verifier_measured}"
        );
        assert!(qtag_measured as f64 / f64::from(n) > 0.85, "seed {seed}");
    }
}
