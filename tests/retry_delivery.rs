//! Retry-delivery properties: beacon sequences pushed through faulty
//! transports with at-least-once retries land in campaign aggregates
//! **exactly once** — for any fault seed, any loss level, and any way
//! the byte stream is chunked — plus a wall-clock e2e of the acked
//! protocol against the real `qtag-collectd` daemon.
//!
//! The invariant under test is the conservation identity the sender
//! and store keep jointly:
//!
//! ```text
//! enqueued == acked + dropped_after_retries + abandoned + pending
//! acked    == store.unique_beacons()          (at quiescence)
//! ```
//!
//! with duplicates forced by lost acks counted separately and never
//! double-applied to an aggregate.

use proptest::prelude::*;
use qtag::server::sync::Mutex;
use qtag_collectd::{Collector, CollectorConfig};
use qtag_server::{
    ImpressionStore, ReportBuilder, ServedImpression, SimCollectorTransport, SimFaults,
};
use qtag_wire::framing::{encode_frames, FrameEvent};
use qtag_wire::sender::{encode_ack, AckDecoder, AckKey, BeaconSender, SenderConfig, TcpTransport};
use qtag_wire::{AdFormat, Beacon, BrowserKind, EventKind, FrameDecoder, OsKind, SiteType};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn beacon(impression_id: u64, campaign_id: u32, seq: u16) -> Beacon {
    Beacon {
        impression_id,
        campaign_id,
        event: if seq == 0 {
            EventKind::Measurable
        } else {
            EventKind::Heartbeat
        },
        timestamp_us: 1_000 * u64::from(seq),
        ad_format: AdFormat::Display,
        visible_fraction_milli: 750,
        exposure_ms: 1_200,
        os: OsKind::Windows10,
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        seq,
    }
}

fn served(impression_id: u64, campaign_id: u32) -> ServedImpression {
    ServedImpression {
        impression_id,
        campaign_id,
        os: OsKind::Windows10,
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        ad_format: AdFormat::Display,
    }
}

/// The full beacon schedule for a small two-campaign fleet.
fn schedule(impressions: u64, seqs: u16) -> Vec<Beacon> {
    (1..=impressions)
        .flat_map(|id| {
            let campaign = if id % 2 == 0 { 2 } else { 1 };
            (0..seqs).map(move |seq| beacon(id, campaign, seq))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any loss level and fault seed, the retry path produces the
    /// *identical* campaign aggregates a fault-free network would:
    /// every beacon applied exactly once, duplicates deduplicated,
    /// conservation exact.
    #[test]
    fn faulty_retry_aggregates_equal_fault_free_aggregates(
        impressions in 1u64..10,
        seqs in 1u16..5,
        loss in 0.0f64..0.35,
        seed in any::<u64>(),
    ) {
        let beacons = schedule(impressions, seqs);

        // Reference: the same schedule applied over a perfect network.
        let mut reference = ImpressionStore::new();
        for id in 1..=impressions {
            reference.record_served(served(id, if id % 2 == 0 { 2 } else { 1 }));
        }
        for b in &beacons {
            reference.apply(b);
        }

        // Retry path: lossy frames, lossy acks, resets, corruption.
        let mut store = ImpressionStore::new();
        for id in 1..=impressions {
            store.record_served(served(id, if id % 2 == 0 { 2 } else { 1 }));
        }
        let faults = SimFaults {
            corrupt_rate: 0.05,
            ..SimFaults::symmetric(loss, 0.0)
        };
        let transport = SimCollectorTransport::new(&mut store, faults, seed);
        let cfg = SenderConfig {
            // Unreachable retry cap: every beacon must eventually land,
            // so the aggregates can be compared exactly.
            max_attempts: 1_000_000,
            seed,
            ..SenderConfig::default()
        };
        let mut sender = BeaconSender::new(transport, cfg);
        let mut now = 0u64;
        for b in &beacons {
            prop_assert!(sender.offer(b, now).unwrap());
        }
        let deadline = 600_000_000u64; // 10 simulated minutes
        while !sender.is_idle() && now < deadline {
            sender.pump(now);
            now += 5_000;
        }
        prop_assert!(sender.is_idle(), "sender did not drain by the virtual deadline");
        let stats = sender.stats();
        prop_assert!(stats.conserves(0), "{stats:?}");
        prop_assert_eq!(stats.dropped_after_retries, 0);
        prop_assert_eq!(stats.acked, beacons.len() as u64);
        prop_assert_eq!(store.unique_beacons(), beacons.len() as u64);
        prop_assert_eq!(store.orphan_beacons(), 0);

        // The headline: aggregates are bit-identical to the fault-free
        // run — retries and duplicates are invisible to reporting.
        let got = ReportBuilder::per_campaign(&store);
        let want = ReportBuilder::per_campaign(&reference);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert_eq!(g.campaign_id, w.campaign_id);
            prop_assert_eq!(g.total, w.total);
        }
    }

    /// Frame decoding is invariant under how the byte stream is split:
    /// any chunking of the encoded stream yields the same beacons, and
    /// applying them yields the same aggregates.
    #[test]
    fn frame_decode_is_chunk_split_invariant(
        impressions in 1u64..8,
        seqs in 1u16..5,
        chunks in prop::collection::vec(1usize..48, 1..12),
    ) {
        let beacons = schedule(impressions, seqs);
        let stream = encode_frames(&beacons).unwrap();

        // One-shot decode.
        let mut whole = FrameDecoder::new();
        whole.extend(&stream);
        let mut want: Vec<Beacon> = Vec::new();
        let mut evs = whole.drain();
        evs.extend(whole.finish());
        for ev in evs {
            if let FrameEvent::Beacon(b) = ev {
                want.push(b);
            }
        }
        prop_assert_eq!(want.len(), beacons.len());

        // Chunked decode: cycle through the arbitrary chunk sizes.
        let mut dec = FrameDecoder::new();
        let mut got: Vec<Beacon> = Vec::new();
        let mut off = 0usize;
        let mut i = 0usize;
        while off < stream.len() {
            let n = chunks[i % chunks.len()].min(stream.len() - off);
            dec.extend(&stream[off..off + n]);
            for ev in dec.drain() {
                if let FrameEvent::Beacon(b) = ev {
                    got.push(b);
                }
            }
            off += n;
            i += 1;
        }
        for ev in dec.finish() {
            if let FrameEvent::Beacon(b) = ev {
                got.push(b);
            }
        }
        prop_assert_eq!(got, want);
    }

    /// Ack decoding is likewise chunk-split invariant: the 10-byte ack
    /// records survive any TCP segmentation.
    #[test]
    fn ack_decode_is_chunk_split_invariant(
        keys in prop::collection::vec((any::<u64>(), any::<u16>()), 1..40),
        chunks in prop::collection::vec(1usize..16, 1..10),
    ) {
        let want: Vec<AckKey> = keys
            .iter()
            .map(|&(impression_id, seq)| AckKey { impression_id, seq })
            .collect();
        let mut stream = Vec::new();
        for k in &want {
            encode_ack(*k, &mut stream);
        }

        let mut dec = AckDecoder::new();
        let mut got: Vec<AckKey> = Vec::new();
        let mut off = 0usize;
        let mut i = 0usize;
        while off < stream.len() {
            let n = chunks[i % chunks.len()].min(stream.len() - off);
            dec.extend(&stream[off..off + n], &mut got);
            off += n;
            i += 1;
        }
        prop_assert_eq!(got, want);
    }
}

/// Wall-clock e2e: the acked protocol against the real daemon. Every
/// beacon offered to a `BeaconSender` over real localhost TCP is acked
/// and lands in the store exactly once, even if conservative ack
/// timeouts force spurious retransmits on a slow machine.
#[test]
fn acked_tcp_delivery_into_real_collector_is_exactly_once() {
    const IMPRESSIONS: u64 = 120;
    const SEQS: u16 = 3;
    let store = Arc::new(Mutex::new(ImpressionStore::new()));
    {
        let mut s = store.lock();
        for id in 1..=IMPRESSIONS {
            s.record_served(served(id, if id % 2 == 0 { 2 } else { 1 }));
        }
    }
    let collector =
        Collector::start(CollectorConfig::default(), Arc::clone(&store)).expect("start collector");

    let transport = TcpTransport::new(collector.local_addr());
    let cfg = SenderConfig {
        ack_timeout_us: 250_000,
        ..SenderConfig::default()
    };
    let mut sender = BeaconSender::new(transport, cfg);
    let t0 = Instant::now();
    let now = |t0: Instant| t0.elapsed().as_micros() as u64;
    for b in schedule(IMPRESSIONS, SEQS) {
        assert!(sender.offer(&b, now(t0)).unwrap());
        sender.pump(now(t0));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while !sender.is_idle() && Instant::now() < deadline {
        sender.pump(now(t0));
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        sender.is_idle(),
        "sender did not drain: {:?}",
        sender.stats()
    );
    let stats = sender.stats();
    let ops = collector.shutdown();

    let total = IMPRESSIONS * u64::from(SEQS);
    assert!(stats.conserves(0), "{stats:?}");
    assert_eq!(stats.acked, total);
    assert_eq!(stats.dropped_after_retries, 0);
    let s = store.lock();
    // Exactly once in the aggregates: spurious wall-clock retransmits
    // (if any) are deduplicated server-side and re-acked.
    assert_eq!(s.unique_beacons(), total);
    assert_eq!(s.orphan_beacons(), 0);
    assert!(ops.collector.acks_sent >= total);
    assert_eq!(ops.collector.acks_sent, stats.acked + s.total_duplicates());
}
