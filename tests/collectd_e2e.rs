//! End-to-end test for the `qtag-collectd` daemon over real localhost
//! TCP: concurrent binary and JSON clients, chunk-split writes, abrupt
//! mid-frame disconnects, graceful shutdown, and the loadgen
//! acceptance floor of 100k beacons/sec — all judged by the exact
//! conservation identity
//!
//! ```text
//! beacons sent == beacons applied + corrupt frames + shed beacons
//! ```

use qtag::server::sync::Mutex;
use qtag_collectd::{Collector, CollectorConfig};
use qtag_server::{ImpressionStore, ServedImpression};
use qtag_wire::framing::encode_frames;
use qtag_wire::{json, AdFormat, Beacon, BrowserKind, EventKind, OsKind, SiteType};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

fn beacon(impression_id: u64, seq: u16, event: EventKind) -> Beacon {
    Beacon {
        impression_id,
        campaign_id: 9,
        event,
        timestamp_us: 1_000 * u64::from(seq),
        ad_format: AdFormat::Display,
        visible_fraction_milli: 800,
        exposure_ms: 1500,
        os: OsKind::Windows10,
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        seq,
    }
}

fn served(impression_id: u64) -> ServedImpression {
    ServedImpression {
        impression_id,
        campaign_id: 9,
        os: OsKind::Windows10,
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        ad_format: AdFormat::Display,
    }
}

fn start_collector(inlet_capacity: usize) -> Collector {
    let store = Arc::new(Mutex::new(ImpressionStore::new()));
    let cfg = CollectorConfig {
        inlet_capacity,
        ..CollectorConfig::default()
    };
    Collector::start(cfg, store).expect("bind localhost")
}

/// Writes the byte stream in small slices so frames straddle TCP
/// writes — the decoder must reassemble regardless of segmentation.
fn write_chunked(sock: &mut TcpStream, stream: &[u8], chunk: usize) {
    for piece in stream.chunks(chunk) {
        sock.write_all(piece).expect("write");
    }
}

/// The headline scenario from the issue: concurrent binary clients
/// with chunk-split writes, a JSON client (with one garbage line), an
/// abrupt mid-frame disconnect, then a graceful shutdown. Every
/// beacon put on the wire must be accounted for exactly.
#[test]
fn mixed_protocol_clients_with_abrupt_disconnect_conserve_exactly() {
    let collector = start_collector(qtag_server::DEFAULT_INLET_CAPACITY);
    let addr = collector.local_addr();
    collector.store().lock().record_served(served(500));

    const BINARY_CLIENTS: u64 = 4;
    const PER_CLIENT: u64 = 500;

    // Binary clients: each writes its whole stream in 7-byte slices,
    // guaranteeing every frame straddles at least one write boundary.
    let binary: Vec<_> = (0..BINARY_CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let beacons: Vec<Beacon> = (0..PER_CLIENT)
                    .map(|i| beacon((client << 32) | i, i as u16, EventKind::Heartbeat))
                    .collect();
                let stream = encode_frames(&beacons).expect("encode");
                let mut sock = TcpStream::connect(addr).expect("connect");
                write_chunked(&mut sock, &stream, 7);
                PER_CLIENT
            })
        })
        .collect();

    // JSON client: two good beacons for a served impression plus one
    // garbage line, which must count as exactly one corrupt frame.
    let json_client = std::thread::spawn(move || {
        let mut payload = json::encode(&beacon(500, 0, EventKind::Measurable)).unwrap();
        payload.push('\n');
        payload.push_str(&json::encode(&beacon(500, 1, EventKind::InView)).unwrap());
        payload.push_str("\nnot a beacon at all\n");
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.write_all(payload.as_bytes()).expect("write");
        3u64 // 2 good + 1 corrupt line, all fully written
    });

    // Abrupt client: one whole frame, then dies mid-way through a
    // second. The partial frame is "never sent" — not corrupt.
    let abrupt_client = std::thread::spawn(move || {
        let whole = encode_frames(&[beacon(600, 0, EventKind::Heartbeat)]).unwrap();
        let mut cut = encode_frames(&[beacon(600, 1, EventKind::Heartbeat)]).unwrap();
        cut.truncate(cut.len() / 2);
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.write_all(&whole).expect("write");
        sock.write_all(&cut).expect("write");
        1u64 // only the whole frame counts as sent
    });

    let mut sent = 0u64;
    for h in binary {
        sent += h.join().expect("binary client");
    }
    sent += json_client.join().expect("json client");
    sent += abrupt_client.join().expect("abrupt client");

    let ops = collector.shutdown();
    assert!(
        ops.conserves(sent),
        "sent {sent} != applied + corrupt + shed: {ops:?}"
    );
    assert!(ops.decode_accounted(), "{ops:?}");
    assert_eq!(ops.collector.corrupt_frames, 1, "{ops:?}");
    assert_eq!(
        ops.ingest.beacons,
        sent - 1,
        "all but the garbage line applied: {ops:?}"
    );
    assert_eq!(
        ops.collector.connections_accepted,
        BINARY_CLIENTS + 2,
        "{ops:?}"
    );
}

/// Beacons for a served impression must land in the store as a
/// viewability verdict after graceful shutdown.
#[test]
fn graceful_shutdown_drains_beacons_into_store_verdicts() {
    let collector = start_collector(qtag_server::DEFAULT_INLET_CAPACITY);
    let store = Arc::clone(collector.store());
    store.lock().record_served(served(42));

    let stream = encode_frames(&[
        beacon(42, 0, EventKind::Measurable),
        beacon(42, 1, EventKind::InView),
    ])
    .expect("encode");
    let mut sock = TcpStream::connect(collector.local_addr()).expect("connect");
    sock.write_all(&stream).expect("write");
    drop(sock);

    // Shut down immediately: the drain must still deliver both
    // beacons (possibly straight out of the OS accept backlog).
    let ops = collector.shutdown();
    assert!(ops.conserves(2), "{ops:?}");
    assert_eq!(ops.ingest.beacons, 2, "{ops:?}");
    assert_eq!(
        store.lock().verdict(42),
        (true, true),
        "measurable + in-view verdict after drain"
    );
}

/// Acceptance floor: the daemon must sustain >= 100k beacons/sec
/// aggregate over real localhost TCP, with conservation holding
/// exactly, graceful drain included in the clock.
///
/// The 100k floor is enforced in optimized builds (the regime the
/// acceptance is defined for; the release loadgen sustains ~1M
/// beacons/s — see results/collectd_loadgen.txt). Debug builds run
/// the identical scenario against a 10x-reduced floor so unoptimized
/// `cargo test` still catches order-of-magnitude regressions without
/// flaking on slow single-core runners.
#[test]
fn throughput_floor_100k_beacons_per_sec_with_exact_conservation() {
    const CLIENTS: u64 = 4;
    const PER_CLIENT: u64 = 30_000;
    let floor: f64 = if cfg!(debug_assertions) {
        10_000.0
    } else {
        100_000.0
    };
    let collector = start_collector(1 << 20); // no shed: pure throughput run
    let addr = collector.local_addr();

    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            std::thread::spawn(move || {
                let beacons: Vec<Beacon> = (0..PER_CLIENT)
                    .map(|i| beacon((client << 32) | i, i as u16, EventKind::Heartbeat))
                    .collect();
                let stream = encode_frames(&beacons).expect("encode");
                let mut sock = TcpStream::connect(addr).expect("connect");
                write_chunked(&mut sock, &stream, 8192);
                PER_CLIENT
            })
        })
        .collect();
    let sent: u64 = clients.into_iter().map(|h| h.join().expect("client")).sum();
    let ops = collector.shutdown();
    let elapsed = started.elapsed();

    let rate = sent as f64 / elapsed.as_secs_f64();
    eprintln!("collectd e2e throughput: {rate:.0} beacons/s ({sent} in {elapsed:?})");
    assert!(ops.conserves(sent), "{ops:?}");
    assert_eq!(ops.ingest.shed_beacons, 0, "{ops:?}");
    assert!(
        rate >= floor,
        "throughput floor not met: {rate:.0} beacons/s < {floor:.0}"
    );
}
