//! Failure-injection integration tests: the system's behaviour when
//! parts of the pipeline break — lossy networks, corrupted streams,
//! dying sessions, hostile environments.

use qtag::core::{QTag, QTagConfig};
use qtag::dom::{Origin, Page, Screen, Tab, TabId, WindowKind};
use qtag::geometry::{Rect, Size};
use qtag::render::{Engine, EngineConfig, SimDuration};
use qtag::server::sync::Mutex;
use qtag::server::{ImpressionStore, IngestService, LossyLink, ReportBuilder, ServedImpression};
use qtag::wire::{AdFormat, Beacon, BrowserKind, EventKind, OsKind, SiteType};
use std::sync::Arc;

fn served(id: u64) -> ServedImpression {
    ServedImpression {
        impression_id: id,
        campaign_id: 1,
        os: OsKind::Android,
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        ad_format: AdFormat::Display,
    }
}

fn beacon(id: u64, event: EventKind, seq: u16) -> Beacon {
    Beacon {
        impression_id: id,
        campaign_id: 1,
        event,
        timestamp_us: u64::from(seq) * 1000,
        ad_format: AdFormat::Display,
        visible_fraction_milli: 900,
        exposure_ms: 1200,
        os: OsKind::Android,
        browser: BrowserKind::Chrome,
        site_type: SiteType::Browser,
        seq,
    }
}

/// Heavy beacon loss lowers the measured rate but never corrupts the
/// store: every surviving beacon still lands on the right impression.
#[test]
fn measured_rate_degrades_gracefully_under_loss() {
    let mut store = ImpressionStore::new();
    let n = 1000u64;
    for id in 1..=n {
        store.record_served(served(id));
    }
    let mut link = LossyLink::new(0.4, 0.0, 99);
    for id in 1..=n {
        let bytes = link
            .transmit(&[
                beacon(id, EventKind::Measurable, 0),
                beacon(id, EventKind::InView, 1),
            ])
            .unwrap();
        let mut dec = qtag::wire::FrameDecoder::new();
        dec.extend(&bytes);
        for ev in dec.drain() {
            if let qtag::wire::framing::FrameEvent::Beacon(b) = ev {
                store.apply(&b);
            }
        }
    }
    let reports = ReportBuilder::per_campaign(&store);
    let rate = reports[0].total.measured_rate();
    // P(measured) = P(at least one of two beacons survives) = 1 − 0.4².
    assert!((rate - 0.84).abs() < 0.04, "measured rate {rate}");
    assert_eq!(store.orphan_beacons(), 0);
    // Viewability conditioning still holds: viewed ⊆ measured.
    assert!(reports[0].total.viewed <= reports[0].total.measured);
}

/// A corrupted byte stream interleaved with good frames: the ingestion
/// service keeps every good beacon and counts the bad frames.
#[test]
fn ingestion_survives_corrupted_interleaved_streams() {
    let store = Arc::new(Mutex::new(ImpressionStore::new()));
    {
        let mut s = store.lock();
        for id in 1..=50 {
            s.record_served(served(id));
        }
    }
    let service = IngestService::start(Arc::clone(&store), 3);
    let mut corrupting = LossyLink::new(0.0, 0.5, 7);
    for id in 1..=50u64 {
        let bytes = corrupting
            .transmit(&[
                beacon(id, EventKind::Measurable, 0),
                beacon(id, EventKind::Measurable, 1),
            ])
            .unwrap();
        service.submit(id, bytes);
    }
    let stats = Arc::clone(service.stats_arc());
    service.shutdown();
    let store = store.lock();
    let reports = ReportBuilder::per_campaign(&store);
    // With two redundant beacons at 50 % corruption, ~75 % measured.
    let rate = reports[0].total.measured_rate();
    assert!((0.55..=0.92).contains(&rate), "measured rate {rate}");
    assert!(
        stats
            .corrupt_frames
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "corruption must be observed and counted"
    );
}

/// The page is torn down mid-measurement (user navigates away): the tag
/// is detached, nothing panics, and the impression stays unviewed.
#[test]
fn mid_session_teardown_is_clean() {
    let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 2000.0));
    let frame = page.create_frame(Origin::https("dsp.example"), Size::MEDIUM_RECTANGLE);
    page.embed_iframe(page.root(), frame, Rect::new(300.0, 100.0, 300.0, 250.0))
        .unwrap();
    let mut screen = Screen::desktop();
    let window = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
    let cfg = QTagConfig::new(3, 1, Rect::new(0.0, 0.0, 300.0, 250.0));
    let sid = engine
        .attach_script(
            window,
            Some(TabId(0)),
            frame,
            Origin::https("dsp.example"),
            Box::new(QTag::new(cfg)),
        )
        .unwrap();

    // 600 ms in — timer started but 1 s not reached — the user leaves.
    engine.run_for(SimDuration::from_millis(600));
    engine.detach_script(sid);
    engine.run_for(SimDuration::from_secs(2)); // must not panic

    let events: Vec<_> = engine
        .drain_outbox()
        .into_iter()
        .map(|o| o.beacon.event)
        .collect();
    assert!(events.contains(&EventKind::Measurable));
    assert!(
        !events.contains(&EventKind::InView),
        "600 ms of exposure must not satisfy the 1 s standard"
    );
}

/// Duplicate delivery (retries) cannot double-count: rates computed
/// after a replay equal rates before it.
#[test]
fn replayed_traffic_does_not_inflate_rates() {
    let mut store = ImpressionStore::new();
    for id in 1..=20 {
        store.record_served(served(id));
        store.apply(&beacon(id, EventKind::Measurable, 0));
        if id % 2 == 0 {
            store.apply(&beacon(id, EventKind::InView, 1));
        }
    }
    let before = ReportBuilder::per_campaign(&store)[0].total;
    // Replay everything twice.
    for _ in 0..2 {
        for id in 1..=20 {
            store.apply(&beacon(id, EventKind::Measurable, 0));
            store.apply(&beacon(id, EventKind::InView, 1));
        }
    }
    let after = ReportBuilder::per_campaign(&store)[0].total;
    assert_eq!(before.measured, after.measured);
    // Note: the replay legitimately delivers one *new* event (seq 1 for
    // odd ids was never seen), so compare against the deduped truth:
    assert_eq!(
        after.viewed, 20,
        "replays may fill gaps but never double-count"
    );
    assert_eq!(after.served, 20);
}

/// CPU starvation: at extreme load the page paints below every
/// threshold and the tag reports out-of-view rather than hallucinating
/// visibility.
#[test]
fn cpu_starvation_fails_closed() {
    let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 2000.0));
    let frame = page.create_frame(Origin::https("dsp.example"), Size::MEDIUM_RECTANGLE);
    page.embed_iframe(page.root(), frame, Rect::new(300.0, 100.0, 300.0, 250.0))
        .unwrap();
    let mut screen = Screen::desktop();
    let window = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(
        EngineConfig {
            cpu: qtag::render::CpuLoadModel::Constant(0.95), // 3 fps effective
            ..EngineConfig::default_desktop()
        },
        screen,
    );
    let cfg = QTagConfig::new(9, 1, Rect::new(0.0, 0.0, 300.0, 250.0));
    engine
        .attach_script(
            window,
            Some(TabId(0)),
            frame,
            Origin::https("dsp.example"),
            Box::new(QTag::new(cfg)),
        )
        .unwrap();
    engine.run_for(SimDuration::from_secs(4));
    let events: Vec<_> = engine
        .drain_outbox()
        .into_iter()
        .map(|o| o.beacon.event)
        .collect();
    assert!(
        !events.contains(&EventKind::InView),
        "a 3 fps device must not satisfy a 20 fps visibility threshold"
    );
    assert!(
        events.contains(&EventKind::Measurable),
        "still measurable — verdict: not viewed"
    );
}
