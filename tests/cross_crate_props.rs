//! Cross-crate property tests: invariants that only hold when several
//! crates agree with each other.

use proptest::prelude::*;
use qtag::core::{AreaEstimator, PixelLayout, QTag, QTagConfig};
use qtag::dom::{Origin, Page, Screen, Tab, TabId, WindowKind};
use qtag::geometry::{Point, Rect, Size, Vector};
use qtag::render::{point_in_viewport, Engine, EngineConfig, SimDuration};
use qtag::server::ImpressionStore;
use qtag::wire::{binary, framing, EventKind};

fn arb_layout() -> impl Strategy<Value = PixelLayout> {
    prop_oneof![
        Just(PixelLayout::X),
        Just(PixelLayout::Dice),
        Just(PixelLayout::Plus)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The area estimator is consistent with raw rect math: estimating a
    /// full-cover clip gives 1, an empty clip gives 0, and any clip's
    /// estimate stays within [0, 1].
    #[test]
    fn estimator_agrees_with_geometry_extremes(
        layout in arb_layout(),
        n in 9usize..=60,
        w in 50.0f64..800.0,
        h in 50.0f64..600.0,
    ) {
        let size = Size::new(w, h);
        let est = AreaEstimator::new(layout.positions(n, size), size);
        let full = Rect::new(-1.0, -1.0, w + 2.0, h + 2.0);
        prop_assert!((est.estimate_for_clip(&full) - 1.0).abs() < 1e-9);
        prop_assert_eq!(est.estimate_for_clip(&Rect::ZERO), 0.0);
        let half = Rect::new(0.0, 0.0, w, h / 2.0);
        let e = est.estimate_for_clip(&half);
        prop_assert!((0.0..=1.0).contains(&e));
    }

    /// DOM projection and render culling agree: a point the page model
    /// maps into the root viewport is exactly the point the renderer
    /// would paint.
    #[test]
    fn projection_and_culling_agree(
        iframe_x in 0.0f64..1200.0,
        iframe_y in 0.0f64..2500.0,
        px in 0.0f64..299.0,
        py in 0.0f64..249.0,
        scroll in 0.0f64..2000.0,
    ) {
        let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 3000.0));
        let frame = page.create_frame(Origin::https("dsp.example"), Size::MEDIUM_RECTANGLE);
        page.embed_iframe(page.root(), frame, Rect::new(iframe_x, iframe_y, 300.0, 250.0)).unwrap();
        let vp = Size::new(1280.0, 800.0);
        page.scroll_frame_to(page.root(), Vector::new(0.0, scroll), vp).unwrap();

        let p = Point::new(px, py);
        let in_vp = point_in_viewport(&page, frame, p, vp).unwrap();

        // Oracle: compute the same thing from first principles.
        let root_pt = Point::new(iframe_x + px, iframe_y + py);
        let actual_scroll = page.frame(page.root()).unwrap().scroll();
        let vp_pt = root_pt - actual_scroll;
        let expected = (0.0..1280.0).contains(&vp_pt.x)
            && (0.0..800.0).contains(&vp_pt.y)
            && px < 300.0 && py < 250.0;
        prop_assert_eq!(in_vp, expected, "point {} scroll {}", p, scroll);
    }

    /// Every beacon a live Q-Tag emits survives the binary codec and the
    /// framing layer bit-exactly (tag → wire → server consistency).
    #[test]
    fn live_tag_beacons_survive_the_wire(ad_y in 0.0f64..1500.0, seed in 0u64..500) {
        let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 3000.0));
        let frame = page.create_frame(Origin::https("dsp.example"), Size::MEDIUM_RECTANGLE);
        page.embed_iframe(page.root(), frame, Rect::new(300.0, ad_y, 300.0, 250.0)).unwrap();
        let mut screen = Screen::desktop();
        let window = screen.add_window(
            WindowKind::Browser { tabs: vec![Tab::new(page)], active: TabId(0) },
            Rect::new(0.0, 0.0, 1280.0, 880.0),
            80.0,
        );
        let mut engine = Engine::new(
            EngineConfig { seed, ..EngineConfig::default_desktop() },
            screen,
        );
        let cfg = QTagConfig::new(seed + 1, 3, Rect::new(0.0, 0.0, 300.0, 250.0));
        engine
            .attach_script(window, Some(TabId(0)), frame, Origin::https("dsp.example"), Box::new(QTag::new(cfg)))
            .unwrap();
        engine.run_for(SimDuration::from_millis(1_500));

        let beacons: Vec<_> = engine.drain_outbox().into_iter().map(|o| o.beacon).collect();
        prop_assert!(!beacons.is_empty());
        for b in &beacons {
            let bytes = binary::encode_to_vec(b).unwrap();
            prop_assert_eq!(&binary::decode(&bytes).unwrap(), b);
        }
        let stream = framing::encode_frames(&beacons).unwrap();
        let mut dec = qtag::wire::FrameDecoder::new();
        dec.extend(&stream);
        let decoded: Vec<_> = dec
            .drain()
            .into_iter()
            .filter_map(|e| match e {
                framing::FrameEvent::Beacon(b) => Some(b),
                _ => None,
            })
            .collect();
        prop_assert_eq!(decoded, beacons);
    }

    /// Store monotonicity: applying more beacons never turns a measured
    /// impression unmeasured, nor a viewed one unviewed.
    #[test]
    fn store_verdicts_are_monotone(events in prop::collection::vec(0u8..=4, 1..20)) {
        let mut store = ImpressionStore::new();
        store.record_served(qtag::server::ServedImpression {
            impression_id: 1,
            campaign_id: 1,
            os: qtag::wire::OsKind::Android,
            browser: qtag::wire::BrowserKind::Chrome,
            site_type: qtag::wire::SiteType::Browser,
            ad_format: qtag::wire::AdFormat::Display,
        });
        let mut was_measured = false;
        let mut was_viewed = false;
        for (seq, code) in events.iter().enumerate() {
            let beacon = qtag::wire::Beacon {
                impression_id: 1,
                campaign_id: 1,
                event: EventKind::from_code(*code).unwrap(),
                timestamp_us: seq as u64,
                ad_format: qtag::wire::AdFormat::Display,
                visible_fraction_milli: 0,
                exposure_ms: 0,
                os: qtag::wire::OsKind::Android,
                browser: qtag::wire::BrowserKind::Chrome,
                site_type: qtag::wire::SiteType::Browser,
                seq: seq as u16,
            };
            store.apply(&beacon);
            let (m, v) = store.verdict(1);
            prop_assert!(!was_measured || m, "measured flag regressed");
            prop_assert!(!was_viewed || v, "viewed flag regressed");
            was_measured = m;
            was_viewed = v;
        }
    }
}

/// The tag's estimated fraction tracks the oracle's viewport fraction
/// across a deterministic scroll sweep (the render/core contract).
#[test]
fn tag_estimate_tracks_oracle_over_scroll_sweep() {
    for scroll in [0.0f64, 200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0] {
        let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 3000.0));
        let frame = page.create_frame(Origin::https("dsp.example"), Size::MEDIUM_RECTANGLE);
        page.embed_iframe(page.root(), frame, Rect::new(300.0, 900.0, 300.0, 250.0))
            .unwrap();
        let mut screen = Screen::desktop();
        let window = screen.add_window(
            WindowKind::Browser {
                tabs: vec![Tab::new(page)],
                active: TabId(0),
            },
            Rect::new(0.0, 0.0, 1280.0, 880.0),
            80.0,
        );
        let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
        engine
            .scroll_page_to(window, Some(TabId(0)), Vector::new(0.0, scroll))
            .unwrap();
        let truth = engine
            .true_visibility(
                window,
                Some(TabId(0)),
                frame,
                Rect::new(0.0, 0.0, 300.0, 250.0),
            )
            .unwrap()
            .viewport_fraction;

        let cfg = QTagConfig::new(1, 1, Rect::new(0.0, 0.0, 300.0, 250.0)).with_fps_threshold(20.0);
        engine
            .attach_script(
                window,
                Some(TabId(0)),
                frame,
                Origin::https("dsp.example"),
                Box::new(QTag::new(cfg)),
            )
            .unwrap();
        engine.run_for(SimDuration::from_millis(600));

        // Read the estimate off the last heartbeat-free beacon stream:
        // the Measurable beacon carries the current fraction.
        let fraction = engine
            .drain_outbox()
            .iter()
            .rev()
            .map(|o| f64::from(o.beacon.visible_fraction_milli) / 1000.0)
            .next()
            .expect("at least one beacon");
        assert!(
            (fraction - truth).abs() < 0.08,
            "scroll {scroll}: estimate {fraction} vs truth {truth}"
        );
    }
}
