//! Exposure-timer accuracy: the tag's reported *qualifying exposure*
//! (`exposure_ms` on its beacons) against an analytic oracle.
//!
//! The in-view decision is binary; the timer behind it is continuous.
//! These tests script deterministic show/hide timelines, compute the
//! expected longest qualifying exposure in closed form, and check the
//! tag's bookkeeping matches within its sampling resolution (10 Hz ⇒
//! ±150 ms after rate-estimation lag).

use qtag::core::{QTag, QTagConfig};
use qtag::dom::{Origin, Page, Screen, Tab, TabId, WindowKind};
use qtag::geometry::{Rect, Size, Vector};
use qtag::render::{Engine, EngineConfig, SimDuration};
use qtag::wire::Beacon;

const TOLERANCE_MS: i64 = 250;

/// Scene with the ad placed at doc y=1000 (below the 800 px fold) and a
/// scripted show/hide schedule: each `(visible_ms, hidden_ms)` segment
/// scrolls the ad fully into view, dwells, then scrolls it away.
fn run_schedule(segments: &[(u64, u64)]) -> Vec<Beacon> {
    let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 3000.0));
    let frame = page.create_frame(Origin::https("dsp.example"), Size::MEDIUM_RECTANGLE);
    page.embed_iframe(page.root(), frame, Rect::new(300.0, 1000.0, 300.0, 250.0))
        .unwrap();
    let mut screen = Screen::desktop();
    let w = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
    let mut cfg = QTagConfig::new(1, 1, Rect::new(0.0, 0.0, 300.0, 250.0));
    // Heartbeats every 2 samples (200 ms) so exposure bookkeeping is
    // observable on the wire even when no in-view event fires.
    cfg.heartbeat_every = 2;
    engine
        .attach_script(
            w,
            Some(TabId(0)),
            frame,
            Origin::https("dsp.example"),
            Box::new(QTag::new(cfg)),
        )
        .unwrap();

    for (visible_ms, hidden_ms) in segments {
        engine
            .scroll_page_to(w, Some(TabId(0)), Vector::new(0.0, 900.0))
            .unwrap();
        engine.run_for(SimDuration::from_millis(*visible_ms));
        engine
            .scroll_page_to(w, Some(TabId(0)), Vector::new(0.0, 0.0))
            .unwrap();
        engine.run_for(SimDuration::from_millis(*hidden_ms));
    }
    engine
        .drain_outbox()
        .into_iter()
        .map(|o| o.beacon)
        .collect()
}

fn max_reported_exposure(beacons: &[Beacon]) -> i64 {
    beacons
        .iter()
        .map(|b| i64::from(b.exposure_ms))
        .max()
        .unwrap_or(0)
}

#[test]
fn single_long_exposure_is_measured_accurately() {
    for expected in [1_200i64, 2_000, 3_500, 5_000] {
        let beacons = run_schedule(&[(expected as u64, 1_000)]);
        let reported = max_reported_exposure(&beacons);
        assert!(
            (reported - expected).abs() <= TOLERANCE_MS,
            "expected ≈{expected} ms, tag reported {reported} ms"
        );
    }
}

#[test]
fn interrupted_exposures_report_the_longest_segment() {
    // 700 ms, 1 400 ms, 900 ms segments: the longest (1 400) wins; the
    // segments must not be summed (the standard is continuous).
    let beacons = run_schedule(&[(700, 800), (1_400, 800), (900, 800)]);
    let reported = max_reported_exposure(&beacons);
    assert!(
        (reported - 1_400).abs() <= TOLERANCE_MS,
        "longest-segment bookkeeping off: reported {reported} ms"
    );
    assert!(
        reported < 2_000,
        "segments were summed: {reported} ms (700+1400+900 = 3000)"
    );
}

#[test]
fn sub_threshold_exposures_never_view_but_are_tracked() {
    let beacons = run_schedule(&[(600, 500), (700, 500)]);
    assert!(
        !beacons
            .iter()
            .any(|b| b.event == qtag::wire::EventKind::InView),
        "no segment reached 1 s"
    );
    let reported = max_reported_exposure(&beacons);
    assert!(
        (reported - 700).abs() <= TOLERANCE_MS,
        "best sub-threshold exposure should still be tracked: {reported}"
    );
}

#[test]
fn exposure_clock_does_not_run_while_hidden() {
    // 1.2 s visible, then a long 6 s hidden stretch, then 0.4 s visible:
    // the reported maximum must stay ≈1.2 s, proving the timer halts
    // while the ad is out of view.
    let beacons = run_schedule(&[(1_200, 6_000), (400, 200)]);
    let reported = max_reported_exposure(&beacons);
    assert!(
        (reported - 1_200).abs() <= TOLERANCE_MS,
        "timer leaked across a hidden stretch: {reported} ms"
    );
}
