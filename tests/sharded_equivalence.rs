//! Sharded-vs-reference equivalence: for ANY beacon sequence (random
//! events, duplicates, orphans, arbitrary interleaving) and ANY shard
//! count 1–16, the sharded store's merged analytics are bit-identical
//! to a single-shard reference run over the exact same sequence.
//!
//! This is the correctness contract of the sharded aggregation layer:
//! sharding is an *implementation* of the impression store, never an
//! observable behaviour change. Four read paths are checked —
//! per-campaign reports, the grand-total slice table, the merged
//! viewability timeline, and the merged anomaly validator — plus the
//! dedup/orphan counters, and finally the same property through the
//! real concurrent `IngestService` (batched channels, one applier per
//! shard) rather than direct application.

use proptest::prelude::*;
use qtag_server::{
    shard_of, BeaconValidator, ImpressionStore, IngestConfig, IngestService, ReportBuilder,
    ServedImpression, ShardedStore, Timeline,
};
use qtag_wire::{AdFormat, Beacon, BrowserKind, EventKind, OsKind, SiteType};

const IMPRESSION_SPACE: u64 = 48;

fn event_of(code: u8) -> EventKind {
    match code % 6 {
        0 => EventKind::TagLoaded,
        1 => EventKind::Measurable,
        2 => EventKind::InView,
        3 => EventKind::OutOfView,
        4 => EventKind::Heartbeat,
        _ => EventKind::Click,
    }
}

fn beacon(id: u64, seq: u16, event_code: u8, ts: u64, fraction: u16) -> Beacon {
    Beacon {
        impression_id: id,
        campaign_id: (id % 5) as u32 + 1,
        event: event_of(event_code),
        timestamp_us: ts,
        ad_format: AdFormat::Display,
        visible_fraction_milli: fraction % 1_001,
        exposure_ms: 800 + u32::from(seq) * 100,
        os: if id.is_multiple_of(3) {
            OsKind::Android
        } else if id % 3 == 1 {
            OsKind::Ios
        } else {
            OsKind::Windows10
        },
        browser: BrowserKind::Chrome,
        site_type: if id.is_multiple_of(2) {
            SiteType::App
        } else {
            SiteType::Browser
        },
        seq,
    }
}

fn served(id: u64) -> ServedImpression {
    let b = beacon(id, 0, 1, 0, 0);
    ServedImpression {
        impression_id: id,
        campaign_id: b.campaign_id,
        os: b.os,
        browser: b.browser,
        site_type: b.site_type,
        ad_format: b.ad_format,
    }
}

/// A random beacon: impression, sequence number (small range so
/// duplicates actually happen), event code, timestamp, fraction.
fn arb_beacon() -> impl Strategy<Value = Beacon> {
    (
        0..IMPRESSION_SPACE,
        0..6u16,
        0..6u8,
        0..4_000_000u64,
        0..2_000u16,
    )
        .prop_map(|(id, seq, ev, ts, fr)| beacon(id, seq, ev, ts, fr))
}

/// Served log: every fourth impression is deliberately missing, so
/// some beacons are orphans and the orphan counter is exercised.
fn record_served_everywhere(reference: &mut ImpressionStore, sharded: &ShardedStore) {
    for id in 0..IMPRESSION_SPACE {
        if id % 4 == 3 {
            continue;
        }
        reference.record_served(served(id));
        sharded.record_served(served(id));
    }
}

fn assert_reports_identical(reference: &ImpressionStore, sharded: &ShardedStore) {
    let expect = ReportBuilder::per_campaign(reference);
    let got = ReportBuilder::per_campaign_sharded(sharded);
    assert_eq!(expect.len(), got.len(), "campaign count");
    for (e, g) in expect.iter().zip(&got) {
        assert_eq!(e.campaign_id, g.campaign_id);
        assert_eq!(e.total, g.total, "campaign {} total", e.campaign_id);
        assert_eq!(e.slices, g.slices, "campaign {} slices", e.campaign_id);
    }
    assert_eq!(
        ReportBuilder::slice_table(reference),
        ReportBuilder::slice_table_sharded(sharded),
        "grand-total slice table"
    );
}

fn assert_counters_identical(reference: &ImpressionStore, sharded: &ShardedStore) {
    assert_eq!(reference.unique_beacons(), sharded.unique_beacons());
    assert_eq!(reference.total_duplicates(), sharded.total_duplicates());
    assert_eq!(reference.orphan_beacons(), sharded.orphan_beacons());
    assert_eq!(reference.served_count(), sharded.served_count());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Direct application: any sequence, any shard count — reports,
    /// slice table, and counters are bit-identical after merge-on-read.
    #[test]
    fn sharded_store_matches_reference(
        beacons in proptest::collection::vec(arb_beacon(), 0..400),
        shards in 1usize..=16,
    ) {
        let mut reference = ImpressionStore::new();
        let sharded = ShardedStore::new(shards);
        record_served_everywhere(&mut reference, &sharded);
        for b in &beacons {
            reference.apply(b);
            sharded.apply(b);
        }
        assert_reports_identical(&reference, &sharded);
        assert_counters_identical(&reference, &sharded);
        // Per-impression state agrees point-wise too.
        for id in 0..IMPRESSION_SPACE {
            prop_assert_eq!(reference.verdict(id), sharded.verdict(id), "verdict {}", id);
            prop_assert_eq!(
                reference.record(id).cloned(),
                sharded.record(id),
                "record {}", id
            );
        }
    }

    /// Timeline: fold each beacon into the timeline of its owning
    /// shard, merge all shard timelines — identical buckets to one
    /// timeline fed the whole stream.
    #[test]
    fn sharded_timelines_merge_to_reference(
        beacons in proptest::collection::vec(arb_beacon(), 0..400),
        shards in 1usize..=16,
    ) {
        // 0.5 s buckets so random timestamps land in several buckets
        // and the merge genuinely unions/overlaps bucket maps.
        let mut reference = Timeline::new(500_000);
        let mut per_shard: Vec<Timeline> =
            (0..shards).map(|_| Timeline::new(500_000)).collect();
        for b in &beacons {
            reference.record(b);
            per_shard[shard_of(b.impression_id, shards)].record(b);
        }
        let mut merged = per_shard.remove(0);
        for t in &per_shard {
            merged.merge(t);
        }
        let got: Vec<_> = merged.buckets().map(|(k, v)| (k, *v)).collect();
        let expect: Vec<_> = reference.buckets().map(|(k, v)| (k, *v)).collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(merged.total_measured(), reference.total_measured());
        prop_assert_eq!(merged.total_viewed(), reference.total_viewed());
    }

    /// Anomaly validation: shard-local validators merged give the same
    /// violation multiset, accepted count and rate as one validator.
    #[test]
    fn sharded_validators_merge_to_reference(
        beacons in proptest::collection::vec(arb_beacon(), 0..400),
        shards in 1usize..=16,
    ) {
        let mut reference = BeaconValidator::new();
        let mut per_shard: Vec<BeaconValidator> =
            (0..shards).map(|_| BeaconValidator::new()).collect();
        for b in &beacons {
            reference.check(b);
            per_shard[shard_of(b.impression_id, shards)].check(b);
        }
        let mut merged = per_shard.remove(0);
        for v in &per_shard {
            merged.merge(v);
        }
        prop_assert_eq!(merged.accepted(), reference.accepted());
        let mut got = merged.violations().to_vec();
        let mut expect = reference.violations().to_vec();
        got.sort();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// The full concurrent path: the same per-impression-ordered
    /// workload pushed through a real `IngestService` (parallel
    /// appliers, batched channels, graceful-shutdown drain) produces
    /// analytics bit-identical to direct sequential application.
    /// Per-impression sequences stay in order because one impression's
    /// beacons always travel one shard channel in FIFO order; nothing
    /// else about scheduling matters.
    #[test]
    fn concurrent_ingest_matches_reference(
        shards in 1usize..=16,
        batch in prop_oneof![Just(1usize), Just(3), Just(8), Just(64)],
        rounds in 1u16..=5,
    ) {
        let mut reference = ImpressionStore::new();
        let sharded = ShardedStore::new(shards);
        record_served_everywhere(&mut reference, &sharded);

        let workload: Vec<Beacon> = (0..rounds)
            .flat_map(|seq| {
                (0..IMPRESSION_SPACE)
                    .map(move |id| beacon(id, seq, u8::try_from(seq % 6).unwrap(), u64::from(seq) * 50_000, 400 + seq))
            })
            .collect();
        for b in &workload {
            reference.apply(b);
        }

        let service = IngestService::start_sharded(
            sharded.clone(),
            IngestConfig { workers: 1, batch, inlet_capacity: 64, metrics: None, journal: None },
        );
        let inlet = service.inlet();
        for chunk in workload.chunks(batch.max(2) * shards) {
            let outcome = inlet.send_batch(chunk);
            prop_assert_eq!(outcome.rejected, 0);
            prop_assert_eq!(outcome.accepted, chunk.len() as u64);
        }
        service.shutdown();

        assert_reports_identical(&reference, &sharded);
        assert_counters_identical(&reference, &sharded);
    }
}

/// Scratch directory for the durable property (process id + counter;
/// no wall-clock reads).
fn wal_scratch_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("qtag-durable-eq-{}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Durability is as transparent as sharding: for ANY beacon
    /// sequence and ANY shard count 1–16, writing through the durable
    /// backend (real `IngestService` batches journaled into per-shard
    /// WALs ahead of apply), then recovering from the WAL into a fresh
    /// backend, is bit-identical to the in-memory reference run — on
    /// reports, counters, per-impression state, and the recovered
    /// rollup timelines.
    #[test]
    fn durable_recovery_matches_in_memory_run(
        beacons in proptest::collection::vec(arb_beacon(), 0..250),
        shards in 1usize..=16,
        batch in prop_oneof![Just(1usize), Just(8), Just(64)],
    ) {
        use qtag_store::{DurableBackend, DurableConfig, StorageBackend, SyncPolicy};

        let mut reference = ImpressionStore::new();
        let dir = wal_scratch_dir();
        let open = || DurableBackend::open(DurableConfig {
            dir: dir.clone(),
            shards,
            sync: SyncPolicy::NoSync,
        });
        let (backend, fresh) = open().expect("open fresh backend");
        prop_assert_eq!(fresh.records_replayed, 0);

        for id in 0..IMPRESSION_SPACE {
            if id % 4 == 3 {
                continue;
            }
            reference.record_served(served(id));
            backend.record_served(served(id));
        }
        // Outcome-driven reference fold: the rollup is store-gated
        // (orphans and duplicate seqs cannot inflate cohorts), so the
        // reference folds the same apply outcomes; daily derives from
        // hourly exactly (DESIGN.md §11).
        let mut ref_hourly = Timeline::hourly();
        for b in &beacons {
            let o = reference.apply(b);
            ref_hourly.record_outcome(b, &o);
        }
        let ref_daily = ref_hourly.coarsen(24);

        // The real concurrent write path, journaled: every applied
        // batch hits the WAL inside the shard's store lock.
        let service = IngestService::start_sharded(
            backend.store().clone(),
            IngestConfig {
                workers: 1,
                batch,
                inlet_capacity: 64,
                metrics: None,
                journal: backend.journal(),
            },
        );
        let inlet = service.inlet();
        for chunk in beacons.chunks(batch.max(2) * shards) {
            let outcome = inlet.send_batch(chunk);
            prop_assert_eq!(outcome.rejected, 0);
        }
        service.shutdown();

        // Live write-path transparency first…
        assert_reports_identical(&reference, backend.store());
        assert_counters_identical(&reference, backend.store());
        drop(backend);

        // …then recovery: reopen from disk and compare every surface.
        let (recovered, report) = open().expect("recover");
        prop_assert_eq!(report.truncated_tails, 0);
        let store = recovered.store();
        assert_reports_identical(&reference, store);
        assert_counters_identical(&reference, store);
        for id in 0..IMPRESSION_SPACE {
            prop_assert_eq!(reference.verdict(id), store.verdict(id), "verdict {}", id);
            prop_assert_eq!(reference.record(id).cloned(), store.record(id), "record {}", id);
        }
        prop_assert_eq!(
            recovered.merged_hourly().export_state(),
            ref_hourly.export_state(),
            "recovered hourly rollup"
        );
        prop_assert_eq!(
            recovered.merged_daily().export_state(),
            ref_daily.export_state(),
            "recovered daily rollup"
        );
        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Non-property pin: the exact shard-count-1 wrapper shares state with
/// a caller-held store, so existing single-store call sites observe
/// every sharded-interface write.
#[test]
fn one_shard_wrapper_is_transparent() {
    use qtag::server::sync::Mutex;
    use std::sync::Arc;
    let inner = Arc::new(Mutex::new(ImpressionStore::new()));
    let sharded = ShardedStore::from_single(Arc::clone(&inner));
    sharded.record_served(served(2));
    sharded.apply(&beacon(2, 0, 1, 10, 500));
    sharded.apply(&beacon(2, 1, 2, 20, 900));
    assert_eq!(inner.lock().verdict(2), (true, true));
    let reports = ReportBuilder::per_campaign_sharded(&sharded);
    assert_eq!(reports, ReportBuilder::per_campaign(&inner.lock()));
}
