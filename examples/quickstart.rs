//! Quickstart: deploy Q-Tag on one ad impression and watch the
//! viewability events arrive.
//!
//! Builds a publisher page with an ad in the paper's double
//! cross-domain iframe, attaches Q-Tag, scrolls the ad into view, and
//! prints every beacon the tag fires.
//!
//! Run with: `cargo run --example quickstart`

use qtag::adtech::{embed_served_ad, CampaignId, ServedAd, ServingOrigins};
use qtag::core::{QTag, QTagConfig};
use qtag::dom::{Origin, Page, Screen, Tab, TabId, WindowKind};
use qtag::geometry::{Rect, Size, Vector};
use qtag::render::{Engine, EngineConfig, SimDuration};
use qtag::wire::AdFormat;

fn main() {
    // 1. A publisher page: 1280 px wide, three viewports long.
    let mut page = Page::new(Origin::https("news.example"), Size::new(1280.0, 2400.0));

    // 2. A served ad (what the DSP returns after winning the auction),
    //    embedded below the fold through the SSP→DSP iframe chain.
    let ad = ServedAd {
        impression_id: 1001,
        campaign_id: CampaignId(7),
        creative_size: Size::MEDIUM_RECTANGLE,
        format: AdFormat::Display,
        paid_cpm_milli: 800,
    };
    let slot = Rect::new(490.0, 1200.0, 300.0, 250.0); // below the 800px fold
    let origins = ServingOrigins::default();
    let placement = embed_served_ad(&mut page, slot, &ad, &origins).expect("embed ad");

    // The Same-Origin Policy in action: the tag's origin cannot read its
    // own position — the reason Q-Tag exists.
    let tag_origin = Origin::parse(&origins.dsp).unwrap();
    assert!(page
        .frame_rect_in_root(placement.dsp_frame, &tag_origin)
        .is_err());
    println!("SOP check: geometry read from the creative iframe is denied ✓");

    // 3. A desktop browser showing the page.
    let mut screen = Screen::desktop();
    let window = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(EngineConfig::default_desktop(), screen);

    // 4. Attach Q-Tag to the creative iframe (25 pixels, X layout,
    //    20 fps threshold — the paper's defaults).
    let cfg = QTagConfig::new(ad.impression_id, ad.campaign_id.0, placement.creative_rect);
    engine
        .attach_script(
            window,
            Some(TabId(0)),
            placement.dsp_frame,
            tag_origin,
            Box::new(QTag::new(cfg)),
        )
        .expect("attach Q-Tag");

    // 5. The user reads the top of the page for 2 s (ad below the fold)…
    engine.run_for(SimDuration::from_secs(2));
    // …then scrolls the ad into view and dwells …
    engine
        .scroll_page_to(window, Some(TabId(0)), Vector::new(0.0, 1100.0))
        .unwrap();
    engine.run_for(SimDuration::from_secs(2));
    // …then scrolls on past it.
    engine
        .scroll_page_to(window, Some(TabId(0)), Vector::new(0.0, 2400.0))
        .unwrap();
    engine.run_for(SimDuration::from_secs(2));

    // 6. The beacons, as the monitoring server would receive them.
    println!("\nbeacons fired by Q-Tag:");
    for out in engine.drain_outbox() {
        let b = &out.beacon;
        println!(
            "  {:>9}  {:?}  visible={:>5.1}%  exposure={} ms",
            out.at.to_string(),
            b.event,
            f64::from(b.visible_fraction_milli) / 10.0,
            b.exposure_ms,
        );
    }
    println!("\nThe InView beacon confirms the impression met the IAB standard");
    println!("(≥50% of pixels visible for ≥1s) — measured without any geometry API.");
}
