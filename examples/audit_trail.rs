//! Audit trail: the transparency feature that motivates the paper.
//!
//! "The disclosure of the functional details of this technique makes it
//! reproducible and auditable" (§1). This example deploys Q-Tag, then
//! exports a [`qtag::core::TagSnapshot`] — the tag's complete per-pixel
//! evidence — at three moments of a session, verifies each snapshot's
//! self-consistency the way an external auditor would, and prints the
//! JSON an audit API would serve.
//!
//! Run with: `cargo run --example audit_trail`

use qtag::core::{QTag, QTagConfig};
use qtag::dom::{Origin, Page, Screen, Tab, TabId, WindowKind};
use qtag::geometry::{Rect, Size, Vector};
use qtag::render::{Engine, EngineConfig, ScriptCtx, SimDuration, TagScript};

/// Wraps Q-Tag so we can pull snapshots out mid-flight (the production
/// tag would expose this through a debug endpoint).
struct AuditedTag {
    inner: QTag,
    snapshots: Vec<qtag::core::TagSnapshot>,
    samples: u64,
}

impl TagScript for AuditedTag {
    fn on_attach(&mut self, ctx: &mut ScriptCtx<'_>) {
        self.inner.on_attach(ctx);
    }
    fn on_animation_frame(&mut self, ctx: &mut ScriptCtx<'_>) {
        self.inner.on_animation_frame(ctx);
    }
    fn on_timer(&mut self, ctx: &mut ScriptCtx<'_>) {
        self.inner.on_timer(ctx);
        self.samples += 1;
        // snapshot once per second (every 10th sample at 10 Hz)
        if self.samples.is_multiple_of(10) {
            self.snapshots.push(self.inner.snapshot(ctx.now()));
        }
    }
    fn on_click(&mut self, ctx: &mut ScriptCtx<'_>) {
        self.inner.on_click(ctx);
    }
}

fn main() {
    let mut page = Page::new(Origin::https("pub.example"), Size::new(1280.0, 3000.0));
    let frame = page.create_frame(Origin::https("dsp.example"), Size::MEDIUM_RECTANGLE);
    page.embed_iframe(page.root(), frame, Rect::new(300.0, 1000.0, 300.0, 250.0))
        .unwrap();
    let mut screen = Screen::desktop();
    let window = screen.add_window(
        WindowKind::Browser {
            tabs: vec![Tab::new(page)],
            active: TabId(0),
        },
        Rect::new(0.0, 0.0, 1280.0, 880.0),
        80.0,
    );
    let mut engine = Engine::new(EngineConfig::default_desktop(), screen);
    let tag = AuditedTag {
        inner: QTag::new(QTagConfig::new(1, 1, Rect::new(0.0, 0.0, 300.0, 250.0))),
        snapshots: Vec::new(),
        samples: 0,
    };
    // We need the snapshots back after the run: scripts are owned by the
    // engine, so park them in a shared cell.
    use std::cell::RefCell;
    use std::rc::Rc;
    struct Shared(Rc<RefCell<AuditedTag>>);
    impl TagScript for Shared {
        fn on_attach(&mut self, ctx: &mut ScriptCtx<'_>) {
            self.0.borrow_mut().on_attach(ctx)
        }
        fn on_animation_frame(&mut self, ctx: &mut ScriptCtx<'_>) {
            self.0.borrow_mut().on_animation_frame(ctx)
        }
        fn on_timer(&mut self, ctx: &mut ScriptCtx<'_>) {
            self.0.borrow_mut().on_timer(ctx)
        }
        fn on_click(&mut self, ctx: &mut ScriptCtx<'_>) {
            self.0.borrow_mut().on_click(ctx)
        }
    }
    let shared = Rc::new(RefCell::new(tag));
    engine
        .attach_script(
            window,
            Some(TabId(0)),
            frame,
            Origin::https("dsp.example"),
            Box::new(Shared(Rc::clone(&shared))),
        )
        .unwrap();

    // Below the fold for 1 s, half-visible for 1 s, fully visible for 1.5 s.
    engine.run_for(SimDuration::from_secs(1));
    engine
        .scroll_page_to(window, Some(TabId(0)), Vector::new(0.0, 325.0))
        .unwrap();
    engine.run_for(SimDuration::from_secs(1));
    engine
        .scroll_page_to(window, Some(TabId(0)), Vector::new(0.0, 900.0))
        .unwrap();
    engine.run_for(SimDuration::from_millis(1_500));

    let tag = shared.borrow();
    println!("collected {} audit snapshots:\n", tag.snapshots.len());
    for s in &tag.snapshots {
        let visible = s.pixels.iter().filter(|p| p.visible).count();
        println!(
            "t={:>5.1}s  visible pixels {:>2}/25  estimated fraction {:>5.1}%  viewed={}  self-consistent={}",
            s.at_us as f64 / 1e6,
            visible,
            s.estimated_fraction * 100.0,
            s.viewed,
            s.is_self_consistent(),
        );
        assert!(s.is_self_consistent(), "audit must verify");
    }

    let last = tag.snapshots.last().expect("snapshots collected");
    println!("\nfinal snapshot as the audit API would serve it (truncated):");
    let json = serde_json::to_string_pretty(&last).unwrap();
    for line in json.lines().take(24) {
        println!("  {line}");
    }
    println!("  …");
}
