//! Certification: run the seven ABC/JICWEBS viewability-certification
//! scenarios (Table 1 of the paper) against Q-Tag on one browser–OS
//! pair and print the grade sheet.
//!
//! Run with: `cargo run --release --example certification_run`

use qtag::certify::{
    run_certification, AutomationFaults, BrowserOsPair, CertificationMatrix, Scenario,
};

fn main() {
    let matrix = CertificationMatrix {
        pairs: vec![BrowserOsPair::ALL[1]], // Chrome / Windows 10
        formats: qtag::certify::AdFormatUnderTest::ALL.to_vec(),
        reps: 25,
        reps_test6: 5,
    };

    println!("certification sweep: Chrome/Windows 10, both ad formats, 25 reps\n");

    // A clean harness first (the paper's manual verification).
    let clean = run_certification(&matrix, AutomationFaults::none(), 1);
    println!("with a perfect harness:");
    for (num, grade) in &clean.by_scenario {
        let name = match num {
            1 => "ad within cross-domain iframes",
            2 => "browser is resized",
            3 => "out of focus",
            4 => "browser moved off-screen",
            5 => "page is scrolled",
            6 => "browser is obscured",
            _ => "tab is obscured",
        };
        println!(
            "  test {num} ({name:<32}) {:>3}/{:<3} correct",
            grade.correct, grade.runs
        );
    }
    println!("  overall accuracy: {:.1}%\n", clean.accuracy() * 100.0);

    // Then with the paper's Selenium-fault model.
    let faulty = run_certification(&matrix, AutomationFaults::paper(), 2);
    println!("with the paper's automation-fault model (faults only in tests 4–5):");
    for (num, grade) in &faulty.by_scenario {
        println!(
            "  test {num}: {:>3}/{:<3} correct, {} silent runs",
            grade.correct, grade.runs, grade.silent
        );
    }
    println!(
        "  overall accuracy: {:.1}%   (paper: 93.4% over ~36k runs)",
        faulty.accuracy() * 100.0
    );

    assert!(clean.accuracy() == 1.0, "clean harness must be perfect");
    let _ = Scenario::ALL; // (see qtag::certify::Scenario for the scripts)
}
