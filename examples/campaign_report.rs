//! Campaign reporting: a miniature production deployment.
//!
//! Serves a few hundred impressions of one campaign through the full
//! pipeline — auction, user session with Q-Tag and the commercial
//! verifier attached, lossy transport, the multi-threaded ingestion
//! service — then prints the campaign report a DSP operator would read:
//! measured rate and viewability rate per solution, sliced by site type
//! and OS.
//!
//! Run with: `cargo run --release --example campaign_report`

use qtag::adtech::{AdSlotRequest, Campaign, Dsp, Exchange, ExchangeKind, GeoRegion, Sector};
use qtag::geometry::Size;
use qtag::server::sync::Mutex;
use qtag::server::{ImpressionStore, IngestService, LossyLink, ReportBuilder, ServedImpression};
use qtag::user::{Population, PopulationConfig, SessionSim};
use qtag::wire::SiteType;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const IMPRESSIONS: u32 = 400;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let population = Population::new(PopulationConfig::default());
    let mut dsp = Dsp::new(vec![Campaign::display(
        1,
        "Solera Beverages",
        Sector::FoodAndDrink,
        Size::MEDIUM_RECTANGLE,
    )]);
    let mut exchange = Exchange::new(ExchangeKind::OpenX);

    // One store per measurement solution, each behind the threaded
    // ingestion service (as the DSP's collection endpoints would be).
    let qtag_store = Arc::new(Mutex::new(ImpressionStore::new()));
    let verifier_store = Arc::new(Mutex::new(ImpressionStore::new()));
    let qtag_ingest = IngestService::start(Arc::clone(&qtag_store), 2);
    let verifier_ingest = IngestService::start(Arc::clone(&verifier_store), 2);

    let sim = SessionSim::default();
    let mut served = 0u32;
    let mut request_id = 0u64;
    while served < IMPRESSIONS {
        request_id += 1;
        let env = population.sample(&mut rng);
        let req = AdSlotRequest {
            request_id,
            geo: GeoRegion::Spain,
            os: env.os,
            browser: qtag::wire::BrowserKind::Chrome,
            site_type: env.site_type,
            slot_size: Size::MEDIUM_RECTANGLE,
            floor_cpm_milli: 200,
        };
        let Some((ad, _)) = exchange.run(&req, &mut dsp) else {
            continue;
        };
        served += 1;

        let log_entry = ServedImpression {
            impression_id: ad.impression_id,
            campaign_id: ad.campaign_id.0,
            os: env.os,
            browser: req.browser,
            site_type: env.site_type,
            ad_format: ad.format,
        };
        qtag_store.lock().record_served(log_entry.clone());
        verifier_store.lock().record_served(log_entry);

        let out = sim.run(&ad, &env, 0xC0FFEE ^ ad.impression_id);

        // Fire-and-forget beacons over a lossy network into the
        // collectors.
        let mut link = LossyLink::new(env.beacon_loss, 0.002, ad.impression_id);
        qtag_ingest.submit(ad.impression_id, link.transmit(&out.qtag_beacons).unwrap());
        verifier_ingest.submit(
            ad.impression_id,
            link.transmit(&out.verifier_beacons).unwrap(),
        );
    }

    qtag_ingest.shutdown();
    verifier_ingest.shutdown();

    println!("campaign 'Solera Beverages' — {served} impressions served\n");
    for (name, store) in [
        ("Q-Tag", &qtag_store),
        ("Commercial verifier", &verifier_store),
    ] {
        let store = store.lock();
        let reports = ReportBuilder::per_campaign(&store);
        let r = &reports[0];
        println!("{name}:");
        println!(
            "  measured rate:    {:>5.1}%   viewability rate: {:>5.1}%",
            r.total.measured_rate() * 100.0,
            r.total.viewability_rate() * 100.0
        );
        let table = ReportBuilder::slice_table(&store);
        let mut keys: Vec<_> = table.keys().copied().collect();
        keys.sort_by_key(|k| (k.site_type.code(), k.os.code()));
        for key in keys {
            let s = table[&key];
            let site = match key.site_type {
                SiteType::App => "app",
                SiteType::Browser => "browser",
            };
            println!(
                "    {:>8} / {:<8}  served {:>4}  measured {:>5.1}%  viewed {:>5.1}%",
                site,
                format!("{:?}", key.os),
                s.served,
                s.measured_rate() * 100.0,
                s.viewability_rate() * 100.0
            );
        }
        println!();
    }
    println!("Note the commercial verifier's drop in in-app slices — the paper's Table 2.");
}
