//! Layout explorer: visualise the monitoring-pixel layouts of Figure 2
//! as ASCII art and compare their area-estimation quality on a sample
//! clip.
//!
//! Run with: `cargo run --example layout_explorer`

use qtag::core::{AreaEstimator, PixelLayout};
use qtag::geometry::{Rect, Size};

const AD: Size = Size {
    width: 300.0,
    height: 250.0,
};

fn render(layout: PixelLayout, n: usize) {
    let cols = 46usize;
    let rows = 16usize;
    let mut grid = vec![vec![b'.'; cols]; rows];
    for p in layout.positions(n, AD) {
        let c = ((p.x / AD.width) * (cols as f64 - 1.0)).round() as usize;
        let r = ((p.y / AD.height) * (rows as f64 - 1.0)).round() as usize;
        grid[r.min(rows - 1)][c.min(cols - 1)] = b'#';
    }
    println!("{} layout, {} monitoring pixels:", layout.name(), n);
    for row in grid {
        println!("  {}", String::from_utf8(row).unwrap());
    }
}

fn main() {
    for layout in PixelLayout::ALL {
        render(layout, 25);
        let est = AreaEstimator::new(layout.positions(25, AD), AD);

        // Sample clip: the top 40 % of the creative visible — just below
        // the 50 % display threshold, the case that matters.
        let clip = Rect::new(0.0, 0.0, AD.width, AD.height * 0.4);
        let estimate = est.estimate_for_clip(&clip);
        println!(
            "  top-40% clip: true visible fraction 40.0%, estimated {:>5.1}%  (error {:+.1} pp)\n",
            estimate * 100.0,
            (estimate - 0.4) * 100.0
        );
    }
    println!("The paper picks the 25-pixel X layout: lowest error on diagonal");
    println!("sliding with no more pixels than the error curve justifies (§4.1).");
}
